#!/bin/bash
cd /root/repo
python -m pytest tests/ 2>&1 | tee /root/repo/test_output.txt | tail -2
python -m pytest benchmarks/ --benchmark-only 2>&1 | tee /root/repo/bench_output.txt | tail -3
