"""Benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures and prints
the rows/series the paper reports (paper-reported values alongside, where
the text gives them).  ``pytest benchmarks/ --benchmark-only`` runs them.

Scale control: set ``REPRO_BENCH_SCALE=smoke`` for quick runs or
``=full`` for longer, lower-noise runs; the default is a balance sized for
a laptop (each figure takes tens of seconds to a few minutes).
"""

import os

import pytest

from repro.harness.experiments import DEFAULT, SMOKE, Scale

_SCALES = {
    "smoke": SMOKE,
    "default": DEFAULT,
    "full": Scale(duration=2000.0, warmup=400.0, clients_per_dc=10,
                  facebook_clients_per_dc=72, beam_width=10),
}


@pytest.fixture(scope="session")
def scale() -> Scale:
    name = os.environ.get("REPRO_BENCH_SCALE", "default")
    return _SCALES.get(name, DEFAULT)


def run_pedantic(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
