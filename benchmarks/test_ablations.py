"""Ablations of Saturn's design choices (DESIGN.md §4).

* label-sink batching period: metadata path latency vs batching efficiency;
* artificial propagation delays (§5.4): false-dependency damage when bulk
  data takes a slower path than metadata;
* §4.3 concurrency optimization: pipelined vs strictly serial remote apply;
* genuine partial replication: metadata traffic under partial vs full
  replication.
"""

from conftest import run_pedantic

from repro.harness.experiments import (ablation_artificial_delays,
                                       ablation_genuine_partial,
                                       ablation_parallel_apply,
                                       ablation_sink_batching)
from repro.harness.report import format_table


def test_sink_batching_period(benchmark, scale):
    result = run_pedantic(benchmark, ablation_sink_batching, scale)
    rows = [[r["sink_batch_period_ms"], r["throughput"],
             r["mean_visibility_ms"]] for r in result["rows"]]
    print()
    print(format_table(["batch ms", "throughput", "visibility ms"], rows,
                       title="Ablation — label-sink batching period"))
    first, last = result["rows"][0], result["rows"][-1]
    # batching longer delays label delivery, hence visibility
    assert last["mean_visibility_ms"] > first["mean_visibility_ms"]


def test_artificial_delays(benchmark, scale):
    result = run_pedantic(benchmark, ablation_artificial_delays, scale)
    rows = [[r["config"], r["visibility_B_to_C_ms"],
             r["visibility_A_to_C_ms"]] for r in result["rows"]]
    print()
    print(format_table(["config", "B->C ms", "A->C ms"], rows,
                       title="Ablation — artificial delays (§5.4): slow "
                             "bulk A->C creates false deps for B->C"))
    no_delay, with_delay = result["rows"]
    # premature A labels head-of-line block B's updates at C...
    assert no_delay["visibility_B_to_C_ms"] > 40.0
    # ...which the solver's artificial delay eliminates
    assert with_delay["visibility_B_to_C_ms"] < 25.0
    assert with_delay["delays"], "solver must have added delays"
    # data freshness of A->C is untouched (payload-bound either way)
    assert abs(with_delay["visibility_A_to_C_ms"]
               - no_delay["visibility_A_to_C_ms"]) < 15.0


def test_parallel_apply(benchmark, scale):
    result = run_pedantic(benchmark, ablation_parallel_apply, scale)
    rows = [[str(r["parallel_apply"]), r["throughput"],
             r["mean_visibility_ms"]] for r in result["rows"]]
    print()
    print(format_table(["parallel", "throughput", "visibility ms"], rows,
                       title="Ablation — §4.3 pipelined remote application"))
    parallel, serial = result["rows"]
    # strictly serial application inflates visibility under load
    assert serial["mean_visibility_ms"] >= parallel["mean_visibility_ms"]


def test_genuine_partial_replication(benchmark, scale):
    result = run_pedantic(benchmark, ablation_genuine_partial, scale)
    print()
    for row in result["rows"]:
        print(f"{row['replication']}: total labels processed = "
              f"{row['total_labels']}")
    full, partial = result["rows"]
    # partial replication slashes the metadata each datacenter processes
    assert partial["total_labels"] < 0.7 * full["total_labels"]
