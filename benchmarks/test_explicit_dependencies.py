"""§7.3.1 / Table 2 — why explicit dependency checking (COPS/Eiger) is
ruled out under partial geo-replication.

The paper: "their practicability depends on the capability of pruning
client's list of dependencies after update operations due to the
transitivity rule of causality.  Under partial geo-replication, this is
not possible, causing client's list of dependencies to potentially grow up
to the entire database."

Measured here: with the prune, dependency lists stay tiny (but the prune
is unsafe under partial replication — see
tests/baselines/test_explicit.py); without it, lists grow with the length
of the client session and throughput collapses under the metadata cost.
"""

from conftest import run_pedantic

from repro.harness.experiments import run_once
from repro.harness.report import format_table
from repro.workloads.synthetic import SyntheticWorkload


def test_dependency_list_growth(benchmark, scale):
    def experiment():
        rows = []
        for system in ("cops", "cops-noprune"):
            workload = SyntheticWorkload(read_ratio=0.7,
                                         correlation="degree", degree=2)
            results = run_once(system, workload, scale,
                               sites=("NV", "NC", "O", "I", "F", "T", "S"))
            cluster = results.cluster
            sizes = [dc.mean_dep_list_size()
                     for dc in cluster.datacenters.values()]
            rows.append({
                "system": system,
                "mean_deps_per_update": sum(sizes) / len(sizes),
                "throughput": results.throughput,
                "mean_visibility_ms": results.visibility.mean(),
            })
        return rows

    rows = run_pedantic(benchmark, experiment)
    print()
    print(format_table(
        ["system", "deps/update", "throughput", "visibility ms"],
        [[r["system"], r["mean_deps_per_update"], r["throughput"],
          r["mean_visibility_ms"]] for r in rows],
        title="Explicit dependency checking under partial replication "
              "(paper: lists grow 'up to the entire database')"))
    pruned, unpruned = rows
    assert pruned["mean_deps_per_update"] < 10
    assert unpruned["mean_deps_per_update"] > 5 * pruned["mean_deps_per_update"]
    assert unpruned["throughput"] < pruned["throughput"]
