"""Fig. 1 — the motivation experiments.

Fig. 1a: the throughput / data-freshness tradeoff of GentleRain vs Cure as
the number of datacenters grows (paper: GentleRain keeps throughput close
to eventual but staleness blows up; Cure keeps staleness low and constant
but loses up to ~20% throughput).

Fig. 1b: staleness overhead under partial geo-replication as the
replication degree shrinks 5 -> 2 (paper: up to ~800% for GentleRain —
it cannot take advantage of partial replication).
"""

from conftest import run_pedantic

from repro.harness.experiments import fig1a, fig1b
from repro.harness.report import format_table


def test_fig1a_tradeoff(benchmark, scale):
    result = run_pedantic(benchmark, fig1a, scale)
    rows = [[r["datacenters"],
             r["gentlerain_throughput_penalty_pct"],
             r["cure_throughput_penalty_pct"],
             r["gentlerain_staleness_overhead_pct"],
             r["cure_staleness_overhead_pct"]]
            for r in result["rows"]]
    print()
    print(format_table(
        ["#DCs", "GR thr pen %", "Cure thr pen %",
         "GR staleness %", "Cure staleness %"], rows,
        title="Fig. 1a — throughput penalty and staleness vs #datacenters "
              "(paper: GR pen ~-4%, Cure pen to ~-20%; GR staleness >> Cure)"))
    last = result["rows"][-1]
    # shape assertions: Cure hurts throughput more, GentleRain staleness more
    assert (last["cure_throughput_penalty_pct"]
            < last["gentlerain_throughput_penalty_pct"])
    assert (last["gentlerain_staleness_overhead_pct"]
            > last["cure_staleness_overhead_pct"])


def test_fig1b_partial_replication(benchmark, scale):
    result = run_pedantic(benchmark, fig1b, scale)
    rows = [[r["replication_degree"],
             r["optimal_visibility_ms"],
             r["gentlerain_visibility_ms"],
             r["gentlerain_staleness_overhead_pct"]]
            for r in result["rows"]]
    print()
    print(format_table(
        ["degree", "optimal ms", "GentleRain ms", "overhead %"], rows,
        title="Fig. 1b — staleness overhead vs replication degree "
              "(paper: grows to ~700-800% at degree 2)"))
    overheads = [r["gentlerain_staleness_overhead_pct"]
                 for r in result["rows"]]
    # overhead grows monotonically as replication becomes more partial
    assert overheads[-1] > overheads[0] * 1.5
