"""Fig. 4 — Saturn configuration matters.

Visibility CDFs under the single-serializer configuration (S, serializer in
Ireland), the Algorithm-3 multi-serializer configuration (M), and the
peer-to-peer timestamp-order configuration (P), for updates Ireland ->
Frankfurt (10 ms link) and Tokyo -> Sydney (52 ms link).

Paper: S and M comparable for I->F (the S serializer sits in Ireland); S is
terrible for T->S (labels detour Tokyo -> Ireland -> Sydney ≈ 261 ms); P
tends to the longest travel time (161 ms); M deviates only ~8 ms from
optimal on average.
"""

from conftest import run_pedantic

from repro.harness.experiments import fig4
from repro.harness.report import format_cdf_summary
from repro.metrics.stats import mean


def test_fig4_configurations(benchmark, scale):
    result = run_pedantic(benchmark, fig4, scale)
    print()
    for name, series in result["series"].items():
        for pair in result["pairs"]:
            print(format_cdf_summary(f"{name} {pair[0]}->{pair[1]}",
                                     series[pair]))
        print(f"{name} overall mean: {series['mean_overall']:.1f}ms "
              f"(optimal {result['optimal_mean_overall']:.1f}ms)")

    s_conf = result["series"]["S-conf"]
    m_conf = result["series"]["M-conf"]
    p_conf = result["series"]["P-conf"]
    pair_if, pair_ts = ("I", "F"), ("T", "S")

    # S and M comparable on Ireland->Frankfurt (serializer in Ireland)
    assert abs(mean(s_conf[pair_if]) - mean(m_conf[pair_if])) < 15.0
    # S-conf detours Tokyo->Sydney through Ireland (~261 ms)
    assert mean(s_conf[pair_ts]) > 200.0
    # M-conf keeps Tokyo->Sydney near the 52 ms optimum
    assert mean(m_conf[pair_ts]) < 90.0
    # P-conf pays the longest travel time everywhere
    assert mean(p_conf[pair_if]) > 120.0
    # M-conf is the best overall
    assert (m_conf["mean_overall"] < s_conf["mean_overall"]
            and m_conf["mean_overall"] < p_conf["mean_overall"])
