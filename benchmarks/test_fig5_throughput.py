"""Fig. 5 — dynamic-workload throughput experiments.

Four sweeps (value size, read:write ratio, correlation pattern, % remote
reads) over Eventual, Saturn, GentleRain, and Cure on the seven EC2
regions.

Paper headline (§7.3.2): Saturn within ~2.2% of eventual on average,
~4.8% above GentleRain, ~24.7% above Cure; large values mask the metadata
overheads; remote reads disrupt GentleRain (+15.7% for Saturn at 40%) and
Cure (+60.5%) far more than Saturn.
"""

from collections import defaultdict

from conftest import run_pedantic

from repro.harness.experiments import FIG5_SYSTEMS, fig5
from repro.harness.report import format_table


def _pivot(rows):
    table = defaultdict(dict)
    for row in rows:
        table[(row["panel"], row["value"])][row["system"]] = row["throughput"]
    return table


def test_fig5_all_panels(benchmark, scale):
    result = run_pedantic(benchmark, fig5, scale)
    table = _pivot(result["rows"])
    printable = []
    for (panel, value), per_system in sorted(table.items(),
                                             key=lambda kv: str(kv[0])):
        printable.append([
            panel, str(value),
            per_system.get("eventual", 0.0), per_system.get("saturn", 0.0),
            per_system.get("gentlerain", 0.0), per_system.get("cure", 0.0)])
    print()
    print(format_table(
        ["panel", "x", "eventual", "saturn", "gentlerain", "cure"],
        printable,
        title="Fig. 5 — throughput (ops/s) across workload sweeps"))

    # headline relative ordering at the default-like point (panel b, 90:10)
    base = table[("b", 0.9)]
    assert base["saturn"] > base["gentlerain"] > base["cure"]
    assert base["saturn"] >= 0.90 * base["eventual"]
    assert base["cure"] <= 0.85 * base["eventual"]

    # panel a: large values mask the differences
    small = table[("a", 8)]
    large = table[("a", 2048)]
    gap_small = (small["eventual"] - small["cure"]) / small["eventual"]
    gap_large = (large["eventual"] - large["cure"]) / large["eventual"]
    assert gap_large < gap_small

    # panel d: remote reads hurt everyone (clients block on WAN), but
    # GentleRain pays extra: its attaches wait for the furthest
    # datacenter's stabilization stream while Saturn's migration labels
    # travel origin->target directly.  (The paper's Cure collapse at 40%
    # is CPU-saturation-driven and is reproduced in the headline panel-b
    # gaps instead — see EXPERIMENTS.md.)
    for system in FIG5_SYSTEMS:
        assert table[("d", 0.4)][system] < table[("d", 0.0)][system]
    assert table[("d", 0.4)]["saturn"] > table[("d", 0.4)]["gentlerain"]
    assert table[("d", 0.1)]["saturn"] > table[("d", 0.1)]["gentlerain"]
