"""Fig. 6 — impact of latency variability on Saturn.

Three datacenters (NC, O, I); extra latency is injected on the NC-O link
(base 10 ms).  Two single-serializer configurations: T1 (Oregon — optimal
under normal conditions) and T2 (Ireland).

Paper: T1 beats T2 under normal conditions; T1 degrades only slightly with
injected delay (+25 ms injected => only ~14 ms extra visibility); T2
becomes the better configuration only past ~55 ms of injected delay —
far outside realistic EC2 variability.
"""

from conftest import run_pedantic

from repro.harness.experiments import fig6
from repro.harness.report import format_table


def test_fig6_latency_variability(benchmark, scale):
    result = run_pedantic(benchmark, fig6, scale)
    rows = [[r["injected_delay_ms"], r["T1_extra_visibility_ms"],
             r["T2_extra_visibility_ms"]] for r in result["rows"]]
    print()
    print(format_table(
        ["injected ms", "T1 extra ms", "T2 extra ms"], rows,
        title="Fig. 6 — extra visibility vs injected NC-O delay "
              "(paper: crossover ~55 ms)"))

    by_delay = {r["injected_delay_ms"]: r for r in result["rows"]}
    # under normal conditions the Oregon serializer (T1) wins clearly
    assert (by_delay[0]["T1_extra_visibility_ms"]
            < by_delay[0]["T2_extra_visibility_ms"])
    # at the largest injected delay the Ireland serializer (T2) wins
    last = result["rows"][-1]
    assert last["T2_extra_visibility_ms"] < last["T1_extra_visibility_ms"]
    # T1 degrades gracefully: even +25..50 ms injected stays moderate
    for injected, row in by_delay.items():
        if 0 < injected <= 50:
            assert row["T1_extra_visibility_ms"] <= injected
