"""Fig. 7 — remote-update visibility vs the state of the art.

CDFs for Ireland -> Frankfurt (Saturn's best case: no extra tree delay) and
Ireland -> Sydney (worst case: the label traverses the whole tree).

Paper: Saturn ~+7.3 ms over optimal on average (GentleRain +97.9 ms, Cure
+21.3 ms); I->F 90th percentile within ~7 ms of optimal; I->S adds ~20 ms;
GentleRain tends to the longest travel time (F-S: 161 ms); Cure close to
optimal but pays its stabilization delay.
"""

from conftest import run_pedantic

from repro.harness.experiments import fig7
from repro.harness.report import format_cdf_summary
from repro.metrics.stats import mean, percentile


def test_fig7_visibility(benchmark, scale):
    result = run_pedantic(benchmark, fig7, scale)
    print()
    for system, series in result["series"].items():
        for pair in result["pairs"]:
            print(format_cdf_summary(f"{system} {pair[0]}->{pair[1]}",
                                     series[pair]))
        print(f"{system} overall mean: {result['means'][system]:.1f}ms")

    pair_if, pair_is = ("I", "F"), ("I", "S")
    optimal = result["series"]["eventual"]
    saturn = result["series"]["saturn"]
    gentlerain = result["series"]["gentlerain"]
    cure = result["series"]["cure"]

    # best case: Saturn within a few ms of optimal at the 90th percentile
    assert (percentile(saturn[pair_if], 90)
            <= percentile(optimal[pair_if], 90) + 15.0)
    # worst case: Saturn pays a bounded tree detour, far below GentleRain
    assert mean(saturn[pair_is]) <= mean(optimal[pair_is]) + 45.0
    assert mean(gentlerain[pair_if]) >= 120.0  # ~longest travel time
    # Cure near optimal on the short pair but above eventual
    assert mean(cure[pair_if]) <= 45.0
    # overall ordering of average visibility
    means = result["means"]
    assert (means["eventual"] <= means["saturn"] < means["cure"] + 60.0)
    assert means["saturn"] < means["gentlerain"]
