"""Fig. 8 — the Facebook-based benchmark.

8a: throughput as the maximum number of replicas per user varies 2 -> 5
(indirectly varying remote reads).  8b: visibility CDFs for Ireland ->
Frankfurt (best case) and Ireland -> Tokyo (worst case).

Paper: Saturn ~1.8% below eventual, 10.9% above GentleRain, 41.9% above
Cure on average; visibility +16.1 ms over optimal on average (GentleRain
+79.2 ms, Cure +23.7 ms); worst case adds ~47 ms at the 90th percentile
but stays comparable to both baselines.
"""

from collections import defaultdict

from conftest import run_pedantic

from repro.harness.experiments import fig8
from repro.harness.report import format_cdf_summary, format_table
from repro.metrics.stats import mean


def test_fig8_facebook(benchmark, scale):
    result = run_pedantic(benchmark, fig8, scale)
    table = defaultdict(dict)
    for row in result["rows"]:
        table[row["max_replicas"]][row["system"]] = row["throughput"]
    printable = [[k, v.get("eventual", 0.0), v.get("saturn", 0.0),
                  v.get("gentlerain", 0.0), v.get("cure", 0.0)]
                 for k, v in sorted(table.items())]
    print()
    print(format_table(
        ["max replicas", "eventual", "saturn", "gentlerain", "cure"],
        printable, title="Fig. 8a — Facebook benchmark throughput (ops/s)"))
    for system, series in result["series"].items():
        for pair in result["pairs"]:
            print(format_cdf_summary(f"{system} {pair[0]}->{pair[1]}",
                                     series[pair]))

    # throughput ordering holds across the replication sweep
    for per_system in table.values():
        assert per_system["saturn"] > per_system["cure"]
        assert per_system["saturn"] >= 0.85 * per_system["eventual"]
    # saturn beats gentlerain on average across the sweep
    saturn_total = sum(v["saturn"] for v in table.values())
    gentlerain_total = sum(v["gentlerain"] for v in table.values())
    assert saturn_total > gentlerain_total

    # 8b: best case near optimal; GentleRain pays the furthest DC
    pair_if = ("I", "F")
    assert (mean(result["series"]["saturn"][pair_if])
            <= mean(result["series"]["eventual"][pair_if]) + 25.0)
    assert mean(result["series"]["gentlerain"][pair_if]) >= 100.0
