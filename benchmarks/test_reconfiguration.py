"""§6.2 — online reconfiguration timing.

Paper: the fast-path switch completes within the largest metadata-path
latency of the old tree — always under 200 ms in their experiments.  The
failure path is bounded by timestamp-order stabilization instead.
"""

from conftest import run_pedantic

from repro.harness.experiments import reconfiguration
from repro.harness.report import format_table


def test_fast_path_reconfiguration(benchmark, scale):
    result = run_pedantic(benchmark, reconfiguration, scale)
    rows = [[dc, max(times) if times else float("nan")]
            for dc, times in sorted(result["per_dc_ms"].items())]
    print()
    print(format_table(["datacenter", "switch time ms"], rows,
                       title="§6.2 fast-path reconfiguration "
                             "(paper: < 200 ms)"))
    assert result["completed"]
    assert result["max_ms"] is not None
    assert result["max_ms"] < 300.0
    assert result["throughput"] > 0


def test_failure_path_reconfiguration(benchmark, scale):
    result = run_pedantic(benchmark, reconfiguration, scale, emergency=True)
    print()
    print(f"failure-path reconfiguration: completed={result['completed']} "
          f"max={result['max_ms']}ms")
    assert result["completed"]
    assert result["throughput"] > 0
