"""Table 1 and the configuration generator.

Table 1 is an *input* (measured EC2 latencies); this bench validates that
the Algorithm-3 configuration generator consumes it and produces a tree
whose weighted mismatch beats the naive configurations — the quantitative
backbone of Fig. 4.
"""

from conftest import run_pedantic

from repro.config.latencies import EC2_REGIONS, ec2_latency
from repro.config.objective import weighted_mismatch
from repro.config.placement import find_configuration, fuse_topology
from repro.core.tree import TreeTopology
from repro.harness.report import format_table


def test_configuration_generator(benchmark, scale):
    dc_sites = {r: r for r in EC2_REGIONS}

    def generate():
        return find_configuration(EC2_REGIONS, dc_sites, ec2_latency,
                                  beam_width=scale.beam_width)

    solved = run_pedantic(benchmark, generate)
    star_ireland = TreeTopology.star("I", dc_sites)
    star_virginia = TreeTopology.star("NV", dc_sites)
    rows = [
        ["M-configuration (Alg. 3)",
         weighted_mismatch(solved.topology, dc_sites, ec2_latency)],
        ["star @ Ireland (S-conf)",
         weighted_mismatch(star_ireland, dc_sites, ec2_latency)],
        ["star @ N. Virginia",
         weighted_mismatch(star_virginia, dc_sites, ec2_latency)],
    ]
    print()
    print(format_table(["configuration", "weighted mismatch (ms)"], rows,
                       title="Configuration generator vs naive stars "
                             "(Definition 2 objective, Table 1 latencies)"))
    assert solved.score < weighted_mismatch(star_ireland, dc_sites,
                                            ec2_latency)
    assert solved.score < weighted_mismatch(star_virginia, dc_sites,
                                            ec2_latency)
    # fusion preserves the objective
    fused = fuse_topology(solved.topology)
    assert weighted_mismatch(fused, dc_sites, ec2_latency) == (
        solved.score) or len(fused.serializer_sites) <= len(
        solved.topology.serializer_sites)
