#!/usr/bin/env python
"""Configuring Saturn with Algorithm 3 (§5.4-§5.5).

Runs the full configuration pipeline over the paper's seven EC2 regions:

1. build pair weights from a partial-replication placement (paths that
   carry more shared data matter more);
2. search tree shapes with the Algorithm-3 beam search, solving each shape
   for serializer placement (coordinate descent) and artificial delays
   (exact linear program);
3. fuse co-located serializers (§5.5) and print the resulting tree with
   its per-pair metadata-path latencies vs the bulk-transfer optimum.

Run:  python examples/configuration_generator.py
"""

from repro.config.latencies import EC2_REGIONS, ec2_latency
from repro.config.objective import (pair_weights_from_replication,
                                    weighted_mismatch)
from repro.config.placement import find_configuration, fuse_topology
from repro.core.tree import TreeTopology
from repro.harness.report import format_table
from repro.sim.rng import RngRegistry
from repro.workloads.correlation import build_replication


def main() -> None:
    dc_sites = {region: region for region in EC2_REGIONS}
    replication = build_replication(EC2_REGIONS, "exponential", ec2_latency,
                                    RngRegistry(seed=1), groups_per_dc=8)
    weights = pair_weights_from_replication(replication)

    solved = find_configuration(EC2_REGIONS, dc_sites, ec2_latency,
                                weights=weights, beam_width=8)
    topology = fuse_topology(solved.topology)

    print(f"Algorithm 3 output (score {solved.score:.0f} weighted-ms, "
          f"{len(topology.serializer_sites)} serializers after fusion):")
    for serializer, site in sorted(topology.serializer_sites.items()):
        attached = [dc for dc, s in topology.attachments.items()
                    if s == serializer]
        print(f"  {serializer} @ {site}  <- datacenters {sorted(attached)}")
    print(f"  edges: {topology.edges}")
    if topology.delays:
        print(f"  artificial delays: "
              f"{ {k: round(v, 1) for k, v in topology.delays.items()} }")

    rows = []
    for i in EC2_REGIONS:
        for j in EC2_REGIONS:
            if i >= j:
                continue
            achieved = topology.path_latency(i, j, ec2_latency, dc_sites)
            optimal = ec2_latency(i, j)
            rows.append([f"{i}->{j}", optimal, achieved,
                         achieved - optimal])
    print()
    print(format_table(["pair", "bulk ms (optimal)", "metadata path ms",
                        "mismatch"], rows,
                       title="Per-pair label propagation vs optimal"))

    for name, naive in (("star @ Ireland", TreeTopology.star("I", dc_sites)),
                        ("star @ Tokyo", TreeTopology.star("T", dc_sites))):
        score = weighted_mismatch(naive, dc_sites, ec2_latency, weights)
        print(f"naive {name}: weighted mismatch {score:.0f} "
              f"(Algorithm 3: {solved.score:.0f})")


if __name__ == "__main__":
    main()
