#!/usr/bin/env python
"""Fault tolerance and online reconfiguration (§6).

Timeline of one run:

* 0 ms      — Saturn runs on a star tree rooted in Ireland (C1);
* 600 ms    — every serializer of C1 fail-stops; ping-based detectors
              notice and the datacenters fall back to timestamp order
              (visibility degrades, but availability is preserved);
* 1600 ms   — operators install a freshly computed Algorithm-3 tree (C2)
              through the failure-path epoch change; visibility recovers.

The example prints visibility latency per phase and verifies causal
consistency held throughout.

Run:  python examples/fault_tolerance.py
"""

from repro.core.reconfig import ReconfigurationManager
from repro.core.tree import TreeTopology
from repro.harness.runner import Cluster, ClusterConfig
from repro.harness.report import format_table
from repro.metrics.stats import mean
from repro.verify.checker import ExecutionLog
from repro.workloads.synthetic import SyntheticWorkload

SITES = ("I", "F", "T")
OUTAGE_AT = 600.0
RECONFIGURE_AT = 1600.0
END_AT = 2600.0


def main() -> None:
    workload = SyntheticWorkload(correlation="full", read_ratio=0.8)
    c1 = TreeTopology.star("I", {s: s for s in SITES})
    c2 = TreeTopology(
        serializer_sites={"s0": "I", "s1": "F", "s2": "T"},
        edges=[("s0", "s1"), ("s1", "s2")],
        attachments={"I": "s0", "F": "s1", "T": "s2"})
    cluster = Cluster(
        ClusterConfig(system="saturn", sites=SITES, clients_per_dc=6,
                      saturn_topology=c1, ping_period=5.0), workload)
    log = ExecutionLog(cluster.replication)
    cluster.attach_execution_log(log)
    manager = ReconfigurationManager(cluster.service,
                                     list(cluster.datacenters.values()))

    phases = []  # (phase name, [latency samples])
    samples = []
    original_hook = cluster.metrics.record_visibility

    def record(origin, dest, latency):
        samples.append((cluster.sim.now, latency))
        original_hook(origin, dest, latency)

    cluster.metrics.record_visibility = record
    for dc in cluster.datacenters.values():
        dc.metrics = cluster.metrics

    cluster.sim.schedule(OUTAGE_AT, lambda: cluster.service.fail_tree(epoch=0))
    cluster.sim.schedule(RECONFIGURE_AT,
                         lambda: manager.reconfigure(c2, emergency=True))
    cluster.run(duration=END_AT, warmup=100.0)

    windows = [("healthy (C1 tree)", 100.0, OUTAGE_AT),
               ("outage (ts fallback)", OUTAGE_AT + 200.0, RECONFIGURE_AT),
               ("recovered (C2 tree)", RECONFIGURE_AT + 400.0, END_AT)]
    rows = []
    for name, start, end in windows:
        window = [lat for at, lat in samples if start <= at < end]
        rows.append([name, len(window),
                     f"{mean(window):.1f}" if window else "-"])
    print(format_table(["phase", "updates made visible",
                        "mean visibility ms"], rows,
                       title="Saturn outage and recovery timeline"))
    print()
    violations = log.check()
    print(f"reconfiguration complete: {manager.complete()}")
    print(f"causal violations across the whole run: {len(violations)}")
    assert not violations


if __name__ == "__main__":
    main()
