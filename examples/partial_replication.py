#!/usr/bin/env python
"""Genuine partial replication and client migration.

Seven EC2 regions, data placed with the exponential correlation pattern
(nearby datacenters share a lot, distant ones almost nothing).  The example
shows the two properties §2 promises:

1. **Genuine partial replication** — each datacenter's remote proxy only
   ever processes labels for items it replicates (plus tiny heartbeats);
   compare the per-datacenter label counts against full replication.
2. **Cheap migration** — a client reading data its datacenter does not
   replicate migrates with a migration label instead of waiting for global
   stabilization; remote reads stay within a few WAN round trips.

Run:  python examples/partial_replication.py
"""

from repro.config.latencies import EC2_REGIONS
from repro.harness.experiments import DEFAULT, Scale, m_configuration, run_once
from repro.harness.report import format_table
from repro.workloads.synthetic import SyntheticWorkload

SCALE = Scale(duration=800.0, warmup=200.0, clients_per_dc=6)


def main() -> None:
    rows = []
    clusters = {}
    for name, workload in (
            ("full", SyntheticWorkload(correlation="full",
                                       remote_read_fraction=0.1)),
            ("exponential", SyntheticWorkload(correlation="exponential",
                                              remote_read_fraction=0.1))):
        results = run_once("saturn", workload, SCALE)
        clusters[name] = results.cluster
        degree = results.cluster.replication.average_replication_degree()
        remote_reads = results.ops.counts().get("remote_read", 0)
        rows.append([
            name, f"{degree:.2f}", f"{results.throughput:.0f}",
            remote_reads,
            f"{results.ops.mean_latency('remote_read'):.0f}"
            if remote_reads else "-",
        ])
    print(format_table(
        ["placement", "avg replicas", "throughput ops/s",
         "remote reads", "remote read ms"], rows,
        title="Saturn under full vs partial geo-replication (7 regions)"))

    print()
    print("Labels processed per datacenter (genuine partial replication:")
    print("metadata volume follows the data each site replicates):")
    header = ["placement"] + list(EC2_REGIONS)
    label_rows = []
    for name, cluster in clusters.items():
        label_rows.append([name] + [
            cluster.datacenters[dc].proxy.labels_processed
            for dc in EC2_REGIONS])
    print(format_table(header, label_rows))


if __name__ == "__main__":
    main()
