#!/usr/bin/env python
"""Quickstart: attach Saturn to a geo-replicated store and watch causal
consistency cost (almost) nothing.

Builds a three-datacenter deployment (Ireland, Frankfurt, Tokyo — Table 1
latencies), runs the same synthetic workload against the eventually
consistent baseline and against Saturn, and prints throughput and
remote-update visibility side by side.

Run:  python examples/quickstart.py
"""

from repro.core.tree import TreeTopology
from repro.harness.runner import Cluster, ClusterConfig
from repro.harness.report import format_table
from repro.verify.checker import ExecutionLog
from repro.workloads.synthetic import SyntheticWorkload

SITES = ("I", "F", "T")


def run(system: str):
    """One run: returns (results, causal-consistency violations)."""
    workload = SyntheticWorkload(correlation="full", read_ratio=0.9,
                                 value_size=64)
    # a sensible hand-built tree: Ireland - Frankfurt - Tokyo chain
    tree = TreeTopology(
        serializer_sites={"s0": "I", "s1": "F", "s2": "T"},
        edges=[("s0", "s1"), ("s1", "s2")],
        attachments={"I": "s0", "F": "s1", "T": "s2"})
    config = ClusterConfig(system=system, sites=SITES, clients_per_dc=8,
                           saturn_topology=tree if system == "saturn" else None)
    cluster = Cluster(config, workload)
    log = ExecutionLog(cluster.replication)
    cluster.attach_execution_log(log)
    results = cluster.run(duration=1000.0, warmup=200.0)
    return results, log.check()


def main() -> None:
    rows = []
    for system in ("eventual", "saturn"):
        results, violations = run(system)
        rows.append([
            system,
            f"{results.throughput:.0f}",
            f"{results.visibility.mean('I', 'F'):.1f}",
            f"{results.visibility.mean('I', 'T'):.1f}",
            len(violations),
        ])
    print(format_table(
        ["system", "throughput ops/s", "I->F visibility ms",
         "I->T visibility ms", "causal violations"],
        rows,
        title="Saturn vs eventual consistency (3 datacenters, Table 1 "
              "latencies)"))
    print()
    print("Saturn upgrades the store to causal consistency (0 violations)")
    print("at a few percent of throughput and a few ms of visibility.")


if __name__ == "__main__":
    main()
