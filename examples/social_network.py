#!/usr/bin/env python
"""Social-network scenario (the paper's §7.4 motivation).

A synthetic scale-free friendship graph is partitioned across the seven
EC2 regions with the bounded SPAR partitioner, and clients replay a
Benevenuto-style operation mix (browsing-dominated, friend-biased).  The
example compares Saturn against GentleRain and Cure and shows why bounded
partial replication favours Saturn: fewer replicas mean more client
migrations, which Saturn serves with migration labels instead of global
stabilization waits.

Run:  python examples/social_network.py
"""

from repro.config.latencies import EC2_REGIONS
from repro.harness.experiments import DEFAULT, Scale, m_configuration, run_once
from repro.harness.report import format_table
from repro.workloads.facebook import FacebookWorkload

SCALE = Scale(duration=800.0, warmup=200.0, facebook_clients_per_dc=24)


def main() -> None:
    rows = []
    for max_replicas in (2, 4):
        for system in ("eventual", "saturn", "gentlerain", "cure"):
            workload = FacebookWorkload(num_users=1000,
                                        max_replicas=max_replicas)
            results = run_once(system, workload, SCALE,
                               clients_per_dc=SCALE.facebook_clients_per_dc)
            counts = results.ops.counts()
            rows.append([
                max_replicas, system, f"{results.throughput:.0f}",
                counts.get("remote_read", 0),
                f"{results.visibility.mean():.1f}",
            ])
    print(format_table(
        ["max replicas", "system", "throughput ops/s", "remote reads",
         "mean visibility ms"],
        rows,
        title="Facebook-style workload across 7 EC2 regions "
              "(SPAR-partitioned, bounded replication)"))
    print()
    print("Lower replica bounds force more cross-datacenter reads; Saturn's")
    print("migration labels keep them cheap while GentleRain/Cure block on")
    print("their stabilization frontiers.")


if __name__ == "__main__":
    main()
