"""Reproduction of *Saturn: a Distributed Metadata Service for Causal
Consistency* (Bravo, Rodrigues & Van Roy, EuroSys 2017).

The package is organised bottom-up:

* :mod:`repro.sim` — deterministic discrete-event substrate (engine,
  network, clocks, CPU cost model);
* :mod:`repro.datacenter` — the paper's per-datacenter decomposition
  (frontends, gears, label sink, remote proxy, client library);
* :mod:`repro.core` — Saturn itself: labels, serializer trees, the
  metadata service, chain replication, online reconfiguration;
* :mod:`repro.config` — the configuration generator (Definition 1/2
  objective, per-tree solver, Algorithm 3 search, Table 1 latencies);
* :mod:`repro.baselines` — GentleRain and Cure;
* :mod:`repro.workloads` — synthetic and Facebook-style generators;
* :mod:`repro.harness` — cluster runner and one function per paper figure;
* :mod:`repro.verify` — offline causal-consistency checker;
* :mod:`repro.metrics` — visibility/throughput recorders.

Quickstart::

    from repro.harness.runner import Cluster, ClusterConfig
    from repro.workloads.synthetic import SyntheticWorkload

    cluster = Cluster(ClusterConfig(system="saturn"), SyntheticWorkload())
    results = cluster.run(duration=1000.0, warmup=200.0)
    print(results.throughput, results.visibility.mean())
"""

from repro.core.label import Label, LabelType, label_max
from repro.core.replication import ReplicationMap
from repro.core.service import SaturnService
from repro.core.tree import TreeTopology
from repro.harness.runner import Cluster, ClusterConfig, RunResults

__version__ = "1.0.0"

__all__ = [
    "Label", "LabelType", "label_max", "ReplicationMap", "SaturnService",
    "TreeTopology", "Cluster", "ClusterConfig", "RunResults", "__version__",
]
