"""Correctness tooling for the Saturn reproduction.

Two halves, both specific to this repository:

* :mod:`repro.analysis.lint` — a custom AST lint (rules SAT001–SAT006)
  that statically rejects the classes of bugs which would silently break
  the deterministic simulator: wall-clock reads, unseeded randomness,
  unordered set/dict iteration on scheduling or label-emission paths,
  float-timestamp equality, mutable default arguments, and cross-process
  state mutation.  Run it with ``python -m repro.analysis src/repro``.

* :mod:`repro.analysis.runtime` — an opt-in dynamic checker that
  instruments the simulation kernel and the network to assert per-link
  FIFO delivery (Saturn's serializer channels *must* be FIFO, §5.3),
  surface same-timestamp event ties, and cross-check label delivery
  order against the offline causality checker.

Determinism is load-bearing here: the paper's visibility-time claims are
only testable if a seed reproduces the exact same execution, and the
causal-order guarantee of the serializer tree collapses if any edge can
reorder labels.
"""

from repro.analysis.lint import Finding, LintReport, lint_paths, lint_source
from repro.analysis.rules import ALL_RULES, Rule
from repro.analysis.runtime import (FifoViolation, HazardMonitor,
                                    HazardReport, TieHazard)

__all__ = [
    "ALL_RULES",
    "Rule",
    "Finding",
    "LintReport",
    "lint_paths",
    "lint_source",
    "HazardMonitor",
    "HazardReport",
    "FifoViolation",
    "TieHazard",
]
