"""CLI for the Saturn determinism lint.

Examples::

    python -m repro.analysis src/repro
    python -m repro.analysis src/repro --json
    python -m repro.analysis src/repro --select SAT001,SAT003
    python -m repro.analysis --list-rules

Exit status: 0 when no findings (or ``--list-rules``), 1 otherwise.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Set

from repro.analysis.lint import lint_paths
from repro.analysis.rules import ALL_RULES


def _codes(value: str) -> Set[str]:
    return {code.strip().upper() for code in value.split(",") if code.strip()}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism & causality lint for the Saturn reproduction")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--json", action="store_true",
                        help="emit a machine-readable JSON report")
    parser.add_argument("--select", type=_codes, default=None,
                        metavar="CODES",
                        help="comma-separated rule codes to enable")
    parser.add_argument("--ignore", type=_codes, default=None,
                        metavar="CODES",
                        help="comma-separated rule codes to disable")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.title}")
            print(f"        {rule.rationale}")
        return 0

    paths = args.paths or ["src/repro"]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        parser.error(f"no such file or directory: {missing}")
    try:
        report = lint_paths(paths, select=args.select, ignore=args.ignore)
    except ValueError as exc:
        parser.error(str(exc))
    print(report.to_json() if args.json else report.format_human())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
