"""Transport-readiness architecture audit (the ARCHxxx rules).

Three static passes over the source tree, checked against the committed
``arch_contract.toml``:

1. **layers** — the import graph honors the layer order (sim kernel <-
   core protocol <- datacenter <- services <- tools), has no cycles, and
   protocol code touches the kernel only through sanctioned seams
   (ARCH001–ARCH004);
2. **purity** — no protocol entry point transitively reaches a wall clock,
   global RNG, entropy source, thread/event-loop primitive, or file/socket
   I/O; findings carry the full witness call chain (ARCH101);
3. **wire** — every message is an immutable plain-data dataclass, every
   constructed message has a handler, and handler sites only touch fields
   that exist (ARCH201–ARCH204).

CLI: ``python -m repro.analysis.arch`` or ``saturn-repro arch``.
"""

from repro.analysis.arch.audit import PASS_NAMES, find_contract, run_audit
from repro.analysis.arch.contract import (
    ArchContract, ContractError, Layer, load_contract)
from repro.analysis.arch.report import ArchFinding, ArchReport
from repro.analysis.arch.rules import ALL_ARCH_RULES, ARCH_RULES_BY_CODE, \
    ArchRule

__all__ = [
    "ALL_ARCH_RULES", "ARCH_RULES_BY_CODE", "ArchContract", "ArchFinding",
    "ArchReport", "ArchRule", "ContractError", "Layer", "PASS_NAMES",
    "find_contract", "load_contract", "run_audit",
]
