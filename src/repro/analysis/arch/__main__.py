"""CLI for the architecture audit.

Usage::

    python -m repro.analysis.arch                 # audit the repo tree
    python -m repro.analysis.arch --json
    python -m repro.analysis.arch --passes layers,wire
    python -m repro.analysis.arch path/to/pkg --contract my_contract.toml

Exit status: 0 when the audited tree is clean, 1 when there are findings,
2 on usage/contract errors.  With no explicit root, the tree is located
from the contract: ``<contract dir>/src/<root_package>``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.arch.audit import PASS_NAMES, find_contract, run_audit
from repro.analysis.arch.contract import ContractError, load_contract
from repro.analysis.arch.rules import ALL_ARCH_RULES

__all__ = ["main"]


def _default_root(contract_path: Path, root_package: str) -> Optional[Path]:
    base = contract_path.parent
    for candidate in (base / "src" / Path(*root_package.split(".")),
                      base / Path(*root_package.split("."))):
        if candidate.is_dir():
            return candidate
    return None


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.arch",
        description="Transport-readiness architecture audit (ARCHxxx).")
    parser.add_argument(
        "root", nargs="?", default=None,
        help="package directory to audit (default: located from the "
             "contract's root_package)")
    parser.add_argument(
        "--contract", default=None,
        help="path to arch_contract.toml (default: search upward from "
             "the audited root, then the working directory)")
    parser.add_argument(
        "--passes", default=",".join(PASS_NAMES),
        help=f"comma-separated subset of {'/'.join(PASS_NAMES)} "
             "(default: all)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable JSON report")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the ARCH rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_ARCH_RULES:
            print(f"{rule.code}  {rule.title}")
            print(f"    {rule.rationale}")
        return 0

    if args.contract is not None:
        contract_path: Optional[Path] = Path(args.contract)
    else:
        start = Path(args.root) if args.root else Path.cwd()
        contract_path = find_contract(start)
    if contract_path is None:
        print("error: no arch_contract.toml found (use --contract)",
              file=sys.stderr)
        return 2

    try:
        contract = load_contract(contract_path)
    except ContractError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.root is not None:
        root = Path(args.root)
    else:
        maybe_root = _default_root(contract_path, contract.root_package)
        if maybe_root is None:
            print(f"error: cannot locate package "
                  f"{contract.root_package!r} near {contract_path}; pass "
                  "the root explicitly", file=sys.stderr)
            return 2
        root = maybe_root
    if not root.is_dir():
        print(f"error: audit root {root} is not a directory",
              file=sys.stderr)
        return 2

    passes = tuple(p.strip() for p in args.passes.split(",") if p.strip())
    try:
        report = run_audit(root, contract, passes=passes)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(report.to_json() if args.json else report.format_human())
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
