"""Audit orchestrator: discover -> parse -> run the three passes -> filter.

:func:`run_audit` is the single programmatic entry point used by the CLI,
the CI job, and the tests.  It never imports the audited code — everything
is AST-level — so it is safe to point at fixture trees containing
deliberate violations.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.arch.callgraph import build_callgraph
from repro.analysis.arch.contract import (
    DEFAULT_CONTRACT_NAME, ArchContract, load_contract)
from repro.analysis.arch.imports import build_graph, discover_modules
from repro.analysis.arch.layers import check_layers
from repro.analysis.arch.purity import check_purity
from repro.analysis.arch.report import ArchFinding, ArchReport, filter_noqa
from repro.analysis.arch.wire import check_wire

__all__ = ["run_audit", "find_contract", "PASS_NAMES"]

PASS_NAMES = ("layers", "purity", "wire")


def find_contract(start: Path) -> Optional[Path]:
    """Walk up from *start* looking for ``arch_contract.toml``."""
    current = start if start.is_dir() else start.parent
    current = current.resolve()
    for candidate in [current, *current.parents]:
        path = candidate / DEFAULT_CONTRACT_NAME
        if path.is_file():
            return path
    return None


def run_audit(root: Path, contract: ArchContract,
              passes: Sequence[str] = PASS_NAMES) -> ArchReport:
    """Audit the package tree rooted at *root* against *contract*.

    *root* is the package directory itself (e.g. ``src/repro``); its dotted
    name comes from the contract's ``root_package``.
    """
    unknown = set(passes) - set(PASS_NAMES)
    if unknown:
        raise ValueError(f"unknown pass(es): {sorted(unknown)}")
    files = discover_modules(root, contract.root_package)
    graph = build_graph(files)

    findings: list = []
    for path, msg in graph.parse_errors:
        findings.append(ArchFinding(
            file=str(path), line=1, code="ARCH000",
            message=f"file could not be parsed: {msg}"))

    if "layers" in passes:
        findings.extend(check_layers(graph, contract))
    if "purity" in passes:
        callgraph = build_callgraph(graph)
        findings.extend(check_purity(graph, callgraph, contract))
    if "wire" in passes:
        findings.extend(check_wire(graph, contract))

    # several import edges (one per imported name) or call paths can land
    # on the same (file, line, code, message) — report each defect once
    unique: dict = {}
    for finding in findings:
        key = (finding.file, finding.line, finding.code, finding.message)
        unique.setdefault(key, finding)

    sources = {str(m.path): m.source for m in graph.modules.values()}
    report = ArchReport(
        findings=filter_noqa(list(unique.values()), sources),
        modules_checked=len(graph.modules),
        passes_run=tuple(p for p in PASS_NAMES if p in passes),
    )
    return report.sorted()
