"""Whole-program call graph over the parsed module universe.

Upgrade path from the SAT001/002 lints: those flag a forbidden call *where
it happens*; the arch audit must flag a protocol entry point that reaches
one *transitively*.  That needs call edges, so this module builds a
best-effort static call graph:

* exact resolution for module-level functions, imported names, ``self``
  methods (with base-class lookup), and attribute chains whose types are
  recoverable from ``__init__`` assignments and annotations (including
  element types of ``List[X]`` / ``Dict[K, V]`` containers);
* function *references* passed as call arguments (callbacks) become edges
  too — the receiver will invoke them;
* nested ``def``/``lambda`` closures are folded into their enclosing
  function, since that is the scope whose purity they inherit;
* a bounded fallback: an unresolved ``x.m(...)`` resolves to ``m`` if
  exactly one class in the universe defines it and ``m`` is not a common
  container/builtin method name.

Alongside edges, each function records its *direct forbidden uses* (wall
clock, global RNG, entropy, threading/asyncio, sockets, files, environment)
so the purity pass is a pure reachability query.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.arch.imports import Module, ModuleGraph

__all__ = ["CallGraph", "FunctionInfo", "ClassInfo", "ForbiddenUse",
           "CallSite", "build_callgraph"]


# -- forbidden-source tables ------------------------------------------------

_FORBIDDEN_EXACT: Dict[str, str] = {
    "time.time": "wall clock", "time.time_ns": "wall clock",
    "time.monotonic": "wall clock", "time.monotonic_ns": "wall clock",
    "time.perf_counter": "wall clock", "time.perf_counter_ns": "wall clock",
    "time.clock": "wall clock", "time.sleep": "host sleep",
    "datetime.datetime.now": "wall clock",
    "datetime.datetime.utcnow": "wall clock",
    "datetime.datetime.today": "wall clock",
    "datetime.date.today": "wall clock",
    "os.urandom": "entropy", "uuid.uuid1": "entropy", "uuid.uuid4": "entropy",
    "os.system": "subprocess I/O", "os.popen": "subprocess I/O",
    "os.getenv": "environment", "os.environ": "environment",
    "io.open": "file I/O",
}

_FORBIDDEN_PREFIX: Dict[str, str] = {
    "random.": "global RNG", "secrets.": "entropy",
    "threading.": "host threads", "_thread.": "host threads",
    "multiprocessing.": "host processes", "concurrent.": "host concurrency",
    "asyncio.": "event loop", "socket.": "socket I/O",
    "subprocess.": "subprocess I/O",
}

#: exact dotted names exempt from the prefix families above
_FORBIDDEN_EXEMPT: Set[str] = {"random.Random", "random.SystemRandom"}

_FORBIDDEN_BUILTINS: Dict[str, str] = {
    "open": "file I/O", "input": "console input",
}

#: method names too generic for the unique-name fallback (container and
#: string methods would otherwise alias into repo classes)
_FALLBACK_STOPLIST: Set[str] = {
    "append", "appendleft", "add", "extend", "pop", "popleft", "remove",
    "discard", "clear", "get", "items", "keys", "values", "setdefault",
    "update", "sort", "index", "count", "insert", "join", "split", "strip",
    "startswith", "endswith", "format", "encode", "decode", "copy", "close",
    "read", "write", "cancel", "now", "timestamp", "send", "receive",
    "register", "run", "reset", "next", "put", "union", "intersection",
}

#: containers whose subscript / iteration yields the first type parameter
_ELEMENT_CONTAINERS: Set[str] = {
    "List", "list", "Tuple", "tuple", "Deque", "deque", "Sequence",
    "Iterable", "Iterator", "FrozenSet", "frozenset", "Set", "set",
}

#: mappings: subscript yields the *second* type parameter
_VALUE_CONTAINERS: Set[str] = {"Dict", "dict", "Mapping", "MutableMapping",
                               "DefaultDict", "OrderedDict"}


@dataclass(frozen=True)
class ForbiddenUse:
    line: int
    dotted: str
    reason: str


@dataclass(frozen=True)
class CallSite:
    callee: str     # function key "module:Qual.name"
    line: int


@dataclass
class FunctionInfo:
    key: str
    module: str
    qualname: str
    line: int
    node: ast.AST
    calls: List[CallSite] = field(default_factory=list)
    forbidden: List[ForbiddenUse] = field(default_factory=list)


@dataclass
class ClassInfo:
    module: str
    name: str
    node: ast.ClassDef
    base_exprs: List[ast.expr] = field(default_factory=list)
    resolved_bases: List[Tuple[str, str]] = field(default_factory=list)
    methods: Dict[str, str] = field(default_factory=dict)  # name -> func key
    attr_types: Dict[str, "TypeRef"] = field(default_factory=dict)


@dataclass(frozen=True)
class TypeRef:
    """A recovered static type: a universe class, possibly inside a
    container (so subscripting / iterating yields the class)."""

    cls: Tuple[str, str]        # (module, ClassName)
    container: bool = False


# symbol kinds: ("mod", module) | ("cls", (mod, name)) | ("func", key)
#             | ("extmod", dotted) | ("ext", dotted)
Sym = Tuple[str, object]


class CallGraph:
    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[Tuple[str, str], ClassInfo] = {}
        self.symbols: Dict[str, Dict[str, Sym]] = {}
        self.module_names: Set[str] = set()
        self._methods_by_name: Dict[str, List[str]] = {}
        self._module_funcs_by_name: Dict[str, List[str]] = {}

    # -- method resolution -------------------------------------------------

    def lookup_method(self, cls: Tuple[str, str],
                      name: str) -> Optional[str]:
        """BFS over the in-universe base-class graph, own class first."""
        seen: Set[Tuple[str, str]] = set()
        queue = [cls]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            hit = info.methods.get(name)
            if hit is not None:
                return hit
            queue.extend(info.resolved_bases)
        return None

    def lookup_attr_type(self, cls: Tuple[str, str],
                         attr: str) -> Optional[TypeRef]:
        seen: Set[Tuple[str, str]] = set()
        queue = [cls]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            hit = info.attr_types.get(attr)
            if hit is not None:
                return hit
            queue.extend(info.resolved_bases)
        return None

    def unique_method(self, name: str) -> Optional[str]:
        if name in _FALLBACK_STOPLIST:
            return None
        hits = self._methods_by_name.get(name, [])
        return hits[0] if len(hits) == 1 else None

    def unique_module_function(self, name: str) -> Optional[str]:
        if name in _FALLBACK_STOPLIST:
            return None
        hits = self._module_funcs_by_name.get(name, [])
        return hits[0] if len(hits) == 1 else None


def build_callgraph(graph: ModuleGraph) -> CallGraph:
    cg = CallGraph()
    cg.module_names = set(graph.modules)
    for name, module in sorted(graph.modules.items()):
        _register_module(cg, module)
    for name, module in sorted(graph.modules.items()):
        cg.symbols[name] = _build_symbols(cg, module)
    for key in sorted(cg.classes):
        _resolve_bases(cg, cg.classes[key])
    for key in sorted(cg.classes):
        _collect_attr_types(cg, cg.classes[key])
    for name, module in sorted(graph.modules.items()):
        _scan_bodies(cg, module)
    return cg


# -- registration -----------------------------------------------------------

def _register_module(cg: CallGraph, module: Module) -> None:
    for stmt in module.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            key = f"{module.name}:{stmt.name}"
            cg.functions[key] = FunctionInfo(
                key=key, module=module.name, qualname=stmt.name,
                line=stmt.lineno, node=stmt)
            cg._module_funcs_by_name.setdefault(stmt.name, []).append(key)
        elif isinstance(stmt, ast.ClassDef):
            info = ClassInfo(module=module.name, name=stmt.name, node=stmt,
                             base_exprs=list(stmt.bases))
            cg.classes[(module.name, stmt.name)] = info
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    key = f"{module.name}:{stmt.name}.{sub.name}"
                    cg.functions[key] = FunctionInfo(
                        key=key, module=module.name,
                        qualname=f"{stmt.name}.{sub.name}",
                        line=sub.lineno, node=sub)
                    info.methods[sub.name] = key
                    cg._methods_by_name.setdefault(sub.name, []).append(key)


def _build_symbols(cg: CallGraph, module: Module) -> Dict[str, Sym]:
    symbols: Dict[str, Sym] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                top = alias.name if alias.asname else alias.name.split(".")[0]
                if _in_universe(cg, top):
                    symbols[bound] = ("mod", top)
                else:
                    symbols[bound] = ("extmod", top)
        elif isinstance(node, ast.ImportFrom):
            base = node.module
            if base is None or node.level:
                base = _absolute_base(module, node)
                if base is None:
                    continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                target_mod = f"{base}.{alias.name}"
                if _in_universe(cg, target_mod):
                    symbols[bound] = ("mod", target_mod)
                elif (base, alias.name) in cg.classes:
                    symbols[bound] = ("cls", (base, alias.name))
                elif f"{base}:{alias.name}" in cg.functions:
                    symbols[bound] = ("func", f"{base}:{alias.name}")
                elif _in_universe(cg, base):
                    # re-exported or data name from a universe module: try
                    # to chase one re-export hop via that module's symbols
                    symbols[bound] = ("reexport", (base, alias.name))
                else:
                    symbols[bound] = ("ext", f"{base}.{alias.name}")

    # locally defined names shadow imports
    for (mod, name), info in cg.classes.items():
        if mod == module.name:
            symbols[name] = ("cls", (mod, name))
    for key, fn in cg.functions.items():
        if fn.module == module.name and "." not in fn.qualname:
            symbols[fn.qualname] = ("func", key)
    return symbols


def _in_universe(cg: CallGraph, module_name: str) -> bool:
    return module_name in cg.module_names


def _absolute_base(module: Module, node: ast.ImportFrom) -> Optional[str]:
    parts = module.name.split(".")
    if module.path.name != "__init__.py":
        parts = parts[:-1]
    drop = node.level - 1
    if drop > len(parts):
        return None
    base = parts[:len(parts) - drop] if drop else parts
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None


def _resolve_symbol(cg: CallGraph, module: str, name: str,
                    depth: int = 0) -> Optional[Sym]:
    sym = cg.symbols.get(module, {}).get(name)
    if sym is None:
        return None
    if sym[0] == "reexport" and depth < 3:
        base, target = sym[1]  # type: ignore[misc]
        return _resolve_symbol(cg, base, target, depth + 1)
    return sym


def _resolve_bases(cg: CallGraph, info: ClassInfo) -> None:
    for base in info.base_exprs:
        resolved = _resolve_class_expr(cg, info.module, base)
        if resolved is not None:
            info.resolved_bases.append(resolved)


def _resolve_class_expr(cg: CallGraph, module: str,
                        expr: ast.expr) -> Optional[Tuple[str, str]]:
    if isinstance(expr, ast.Name):
        sym = _resolve_symbol(cg, module, expr.id)
        if sym and sym[0] == "cls":
            return sym[1]  # type: ignore[return-value]
        if (module, expr.id) in cg.classes:
            return (module, expr.id)
        return None
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        sym = _resolve_symbol(cg, module, expr.value.id)
        if sym and sym[0] == "mod":
            candidate = (sym[1], expr.attr)
            if candidate in cg.classes:
                return candidate  # type: ignore[return-value]
    return None


# -- annotations and attribute types ---------------------------------------

def _annotation_class(cg: CallGraph, module: str,
                      node: Optional[ast.expr]) -> Optional[TypeRef]:
    """Recover a TypeRef from an annotation expression (best effort)."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        head = node.value
        head_name = None
        if isinstance(head, ast.Name):
            head_name = head.id
        elif isinstance(head, ast.Attribute):
            head_name = head.attr
        args = node.slice
        elements = args.elts if isinstance(args, ast.Tuple) else [args]
        if head_name == "Optional" and elements:
            return _annotation_class(cg, module, elements[0])
        if head_name == "Union":
            for element in elements:
                ref = _annotation_class(cg, module, element)
                if ref is not None:
                    return ref
            return None
        if head_name in _ELEMENT_CONTAINERS and elements:
            inner = _annotation_class(cg, module, elements[0])
            if inner is not None:
                return TypeRef(cls=inner.cls, container=True)
            return None
        if head_name in _VALUE_CONTAINERS and len(elements) >= 2:
            inner = _annotation_class(cg, module, elements[1])
            if inner is not None:
                return TypeRef(cls=inner.cls, container=True)
            return None
        return None
    resolved = _resolve_class_expr(cg, module, node)
    if resolved is not None:
        return TypeRef(cls=resolved)
    return None


def _collect_attr_types(cg: CallGraph, info: ClassInfo) -> None:
    module = info.module
    # class-level annotations: "x: T" / "x: T = ..."
    for stmt in info.node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name):
            ref = _annotation_class(cg, module, stmt.annotation)
            if ref is not None:
                info.attr_types[stmt.target.id] = ref
    init_key = info.methods.get("__init__")
    if init_key is None:
        return
    init = cg.functions[init_key].node
    assert isinstance(init, (ast.FunctionDef, ast.AsyncFunctionDef))
    params: Dict[str, Optional[TypeRef]] = {}
    for arg in list(init.args.args) + list(init.args.kwonlyargs):
        params[arg.arg] = _annotation_class(cg, module, arg.annotation)
    selfname = init.args.args[0].arg if init.args.args else "self"
    for node in ast.walk(init):
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        annotation: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value, annotation = node.target, node.value, \
                node.annotation
        if not (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == selfname):
            continue
        attr = target.attr
        if attr in info.attr_types:
            continue
        ref = _annotation_class(cg, module, annotation)
        if ref is None and isinstance(value, ast.Name):
            ref = params.get(value.id)
        if ref is None and isinstance(value, ast.Call):
            resolved = _resolve_class_expr(cg, module, value.func)
            if resolved is not None:
                ref = TypeRef(cls=resolved)
        if ref is not None:
            info.attr_types[attr] = ref


# -- body scanning ----------------------------------------------------------

def _scan_bodies(cg: CallGraph, module: Module) -> None:
    for stmt in module.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _scan_function(cg, module, stmt, owner=None)
        elif isinstance(stmt, ast.ClassDef):
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    _scan_function(cg, module, sub, owner=stmt.name)


def _scan_function(cg: CallGraph, module: Module, node: ast.AST,
                   owner: Optional[str]) -> None:
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    qual = f"{owner}.{node.name}" if owner else node.name
    fn = cg.functions[f"{module.name}:{qual}"]
    self_cls = (module.name, owner) if owner else None
    selfname = None
    if owner and node.args.args:
        selfname = node.args.args[0].arg

    locals_: Dict[str, TypeRef] = {}
    for arg in list(node.args.args) + list(node.args.kwonlyargs):
        ref = _annotation_class(cg, module.name, arg.annotation)
        if ref is not None:
            locals_[arg.arg] = ref

    resolver = _Resolver(cg, module.name, self_cls, selfname, locals_)

    # pass 1: infer local variable types (flow-insensitive)
    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign) and len(sub.targets) == 1 and \
                isinstance(sub.targets[0], ast.Name):
            ref = resolver.infer_type(sub.value)
            if ref is not None:
                locals_[sub.targets[0].id] = ref
        elif isinstance(sub, ast.For) and isinstance(sub.target, ast.Name):
            ref = resolver.infer_type(sub.iter)
            if ref is not None and ref.container:
                locals_[sub.target.id] = TypeRef(cls=ref.cls)

    # pass 2: calls, callback references, forbidden uses
    seen_calls: Set[Tuple[str, int]] = set()

    def add_call(key: Optional[str], line: int) -> None:
        if key is not None and key in cg.functions and \
                (key, line) not in seen_calls:
            seen_calls.add((key, line))
            fn.calls.append(CallSite(callee=key, line=line))

    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            for key in resolver.resolve_call(sub):
                add_call(key, sub.lineno)
            dotted = resolver.external_dotted(sub.func)
            if dotted is not None:
                reason = _forbidden_reason(dotted)
                if reason is not None:
                    fn.forbidden.append(ForbiddenUse(
                        line=sub.lineno, dotted=dotted, reason=reason))
            for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
                for key in resolver.resolve_reference(arg):
                    add_call(key, sub.lineno)
        elif isinstance(sub, ast.Attribute):
            dotted = resolver.external_dotted(sub)
            if dotted is not None and dotted in ("os.environ",):
                fn.forbidden.append(ForbiddenUse(
                    line=sub.lineno, dotted=dotted,
                    reason=_FORBIDDEN_EXACT["os.environ"]))
        elif isinstance(sub, ast.Assign):
            for key in resolver.resolve_reference(sub.value):
                add_call(key, sub.lineno)


def _forbidden_reason(dotted: str) -> Optional[str]:
    if dotted in _FORBIDDEN_EXEMPT:
        return None
    if dotted in _FORBIDDEN_EXACT:
        return _FORBIDDEN_EXACT[dotted]
    if dotted in _FORBIDDEN_BUILTINS:
        return _FORBIDDEN_BUILTINS[dotted]
    for prefix, reason in _FORBIDDEN_PREFIX.items():
        if dotted.startswith(prefix):
            return reason
    return None


class _Resolver:
    """Resolves expressions to types / callees inside one function body."""

    def __init__(self, cg: CallGraph, module: str,
                 self_cls: Optional[Tuple[str, str]],
                 selfname: Optional[str],
                 locals_: Dict[str, TypeRef]) -> None:
        self.cg = cg
        self.module = module
        self.self_cls = self_cls
        self.selfname = selfname
        self.locals = locals_

    # -- types -------------------------------------------------------------

    def infer_type(self, expr: ast.expr) -> Optional[TypeRef]:
        if isinstance(expr, ast.Name):
            if expr.id == self.selfname and self.self_cls:
                return TypeRef(cls=self.self_cls)
            return self.locals.get(expr.id)
        if isinstance(expr, ast.Attribute):
            if expr.attr == "values" or expr.attr == "items":
                return None
            base = self.infer_type(expr.value)
            if base is not None and not base.container:
                return self.cg.lookup_attr_type(base.cls, expr.attr)
            return None
        if isinstance(expr, ast.Subscript):
            base = self.infer_type(expr.value)
            if base is not None and base.container:
                return TypeRef(cls=base.cls)
            return None
        if isinstance(expr, ast.Call):
            func = expr.func
            # x.values() on a container attr yields elements when iterated
            if isinstance(func, ast.Attribute) and func.attr == "values":
                base = self.infer_type(func.value)
                if base is not None and base.container:
                    return base
                return None
            resolved = _resolve_class_expr(self.cg, self.module, func)
            if resolved is not None:
                return TypeRef(cls=resolved)
            return None
        return None

    # -- callees -----------------------------------------------------------

    def resolve_call(self, call: ast.Call) -> List[str]:
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name_call(func.id)
        if isinstance(func, ast.Attribute):
            return self._resolve_attr_call(func)
        return []

    def _resolve_name_call(self, name: str) -> List[str]:
        local = self.locals.get(name)
        if local is not None and not local.container:
            init = self.cg.lookup_method(local.cls, "__call__")
            return [init] if init else []
        sym = _resolve_symbol(self.cg, self.module, name)
        if sym is not None:
            if sym[0] == "func":
                return [sym[1]]  # type: ignore[list-item]
            if sym[0] == "cls":
                init = self.cg.lookup_method(
                    sym[1], "__init__")  # type: ignore[arg-type]
                return [init] if init else []
            return []
        fallback = self.cg.unique_module_function(name)
        return [fallback] if fallback else []

    def _resolve_attr_call(self, func: ast.Attribute) -> List[str]:
        # module-qualified call: m.f(...)
        if isinstance(func.value, ast.Name):
            sym = _resolve_symbol(self.cg, self.module, func.value.id)
            if sym is not None and sym[0] == "mod":
                key = f"{sym[1]}:{func.attr}"
                if key in self.cg.functions:
                    return [key]
                candidate = (sym[1], func.attr)
                if candidate in self.cg.classes:
                    init = self.cg.lookup_method(
                        candidate, "__init__")  # type: ignore[arg-type]
                    return [init] if init else []
                return []
            if sym is not None and sym[0] == "cls":
                hit = self.cg.lookup_method(
                    sym[1], func.attr)  # type: ignore[arg-type]
                return [hit] if hit else []
            if sym is not None and sym[0] in ("extmod", "ext"):
                return []
        receiver = self.infer_type(func.value)
        if receiver is not None and not receiver.container:
            hit = self.cg.lookup_method(receiver.cls, func.attr)
            if hit:
                return [hit]
            return []
        fallback = self.cg.unique_method(func.attr)
        return [fallback] if fallback else []

    def resolve_reference(self, expr: ast.expr) -> List[str]:
        """A bare function/method reference (callback) becomes an edge."""
        if isinstance(expr, ast.Name):
            sym = _resolve_symbol(self.cg, self.module, expr.id)
            if sym is not None and sym[0] == "func":
                return [sym[1]]  # type: ignore[list-item]
            return []
        if isinstance(expr, ast.Attribute) and not isinstance(
                expr.value, ast.Call):
            if isinstance(expr.value, ast.Name):
                sym = _resolve_symbol(self.cg, self.module, expr.value.id)
                if sym is not None:
                    if sym[0] == "mod":
                        key = f"{sym[1]}:{expr.attr}"
                        return [key] if key in self.cg.functions else []
                    if sym[0] in ("extmod", "ext", "cls"):
                        return []
            receiver = self.infer_type(expr.value)
            if receiver is not None and not receiver.container:
                hit = self.cg.lookup_method(receiver.cls, expr.attr)
                return [hit] if hit else []
        return []

    # -- external dotted names (forbidden-source detection) -----------------

    def external_dotted(self, expr: ast.expr) -> Optional[str]:
        """Dotted name of an expression rooted at an external module or an
        imported external name; None if it is not external."""
        if isinstance(expr, ast.Name):
            if expr.id in _FORBIDDEN_BUILTINS and \
                    _resolve_symbol(self.cg, self.module, expr.id) is None \
                    and expr.id not in self.locals:
                return expr.id
            sym = _resolve_symbol(self.cg, self.module, expr.id)
            if sym is not None and sym[0] in ("extmod", "ext"):
                return sym[1]  # type: ignore[return-value]
            return None
        if isinstance(expr, ast.Attribute):
            base = self.external_dotted(expr.value)
            if base is not None:
                return f"{base}.{expr.attr}"
        return None
