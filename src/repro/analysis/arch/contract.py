"""Load and validate ``arch_contract.toml``.

The contract is the checked-in, human-reviewed declaration of the
architecture: the layer order, which kernel seams protocol code may touch,
which methods are purity entry points, and which modules define wire
messages.  The auditor never invents policy — it only checks the tree
against this file, so a deliberate architectural change is a one-line diff
here rather than a lint suppression.

Parsing uses :mod:`tomllib` (Python >= 3.11).  On older interpreters a
minimal line-oriented fallback handles the restricted TOML subset the
contract actually uses (tables, arrays of tables, string/array values).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["ArchContract", "Layer", "ContractError", "load_contract"]

DEFAULT_CONTRACT_NAME = "arch_contract.toml"


class ContractError(ValueError):
    """Raised when the contract file is missing, malformed, or inconsistent."""


@dataclass(frozen=True)
class Layer:
    """One layer: its name, rank (0 = bottom), and member packages/modules."""

    name: str
    rank: int
    packages: Tuple[str, ...]
    modules: Tuple[str, ...] = ()


@dataclass(frozen=True)
class ArchContract:
    """Parsed, validated architecture contract."""

    path: Path
    root_package: str
    layers: Tuple[Layer, ...]
    # -- kernel seams ------------------------------------------------------
    kernel_layer: str
    seam_modules: Tuple[str, ...]
    seam_names: Tuple[str, ...]          # "module:Name" entries
    unrestricted_layers: Tuple[str, ...]
    scheduler_methods: Tuple[str, ...]
    # -- purity ------------------------------------------------------------
    purity_entry_points: Tuple[str, ...]  # "module:Class.method" fnmatch pats
    purity_boundary_modules: Tuple[str, ...]
    # -- wire --------------------------------------------------------------
    message_modules: Tuple[str, ...]
    extra_messages: Tuple[str, ...]       # "module:ClassName"
    #: wire components: plain-data checked like messages, but they ride
    #: inside message fields and are never dispatched to a handler, so
    #: ARCH201 (missing handler) does not apply to them
    components: Tuple[str, ...]           # "module:ClassName"
    plain_classes: Tuple[str, ...]
    handler_methods: Tuple[str, ...]
    #: modules whose top-level ``register(Name)`` calls declare the wire
    #: codec vocabulary; when non-empty, ARCH205 cross-checks it against
    #: the handled message set
    codec_modules: Tuple[str, ...] = ()

    _layer_of_module: Dict[str, Layer] = field(
        default_factory=dict, compare=False, repr=False)
    _layer_of_package: Dict[str, Layer] = field(
        default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        for layer in self.layers:
            for mod in layer.modules:
                self._layer_of_module[mod] = layer
            for pkg in layer.packages:
                self._layer_of_package[pkg] = layer

    def layer_of(self, module: str) -> Optional[Layer]:
        """Layer owning *module*: exact module override wins, then the
        longest declared package prefix; ``None`` if unassigned."""
        hit = self._layer_of_module.get(module)
        if hit is not None:
            return hit
        best: Optional[Layer] = None
        best_len = -1
        for pkg, layer in self._layer_of_package.items():
            if module == pkg or module.startswith(pkg + "."):
                if len(pkg) > best_len:
                    best, best_len = layer, len(pkg)
        return best

    def is_restricted(self, layer: Layer) -> bool:
        """Restricted layers may only touch the kernel via sanctioned seams."""
        return layer.name not in self.unrestricted_layers

    def kernel_packages(self) -> Tuple[str, ...]:
        for layer in self.layers:
            if layer.name == self.kernel_layer:
                return layer.packages + layer.modules
        return ()


def _parse_toml(path: Path) -> Dict[str, Any]:
    try:
        import tomllib
    except ModuleNotFoundError:  # Python < 3.11
        return _parse_toml_minimal(path.read_text(encoding="utf-8"))
    with path.open("rb") as fh:
        return tomllib.load(fh)


def _parse_toml_minimal(text: str) -> Dict[str, Any]:
    """Tiny TOML-subset parser: [table], [[array-of-tables]], key = value
    with string / array-of-string values.  Enough for the contract file."""
    root: Dict[str, Any] = {}
    current: Dict[str, Any] = root
    pending = ""
    for raw in text.splitlines():
        line = raw.strip()
        if pending:
            line = pending + " " + line
            pending = ""
        if not line or line.startswith("#"):
            continue
        if line.startswith("[[") and line.endswith("]]"):
            name = line[2:-2].strip()
            current = {}
            root.setdefault(name, []).append(current)
            continue
        if line.startswith("[") and line.endswith("]"):
            name = line[1:-1].strip()
            current = root.setdefault(name, {})
            continue
        if "=" not in line:
            raise ContractError(f"unparseable contract line: {raw!r}")
        key, _, value = line.partition("=")
        value = value.strip()
        if value.startswith("[") and not value.endswith("]"):
            pending = line  # multi-line array: accumulate
            continue
        current[key.strip()] = _parse_value(value)
    if pending:
        raise ContractError(f"unterminated array in contract: {pending!r}")
    return root


def _parse_value(value: str) -> Any:
    value = value.strip()
    if value.startswith("[") and value.endswith("]"):
        inner = value[1:-1].strip()
        if not inner:
            return []
        items = []
        for part in _split_top_level(inner):
            items.append(_parse_value(part))
        return items
    if (value.startswith('"') and value.endswith('"')) or (
            value.startswith("'") and value.endswith("'")):
        return value[1:-1]
    if value in ("true", "false"):
        return value == "true"
    raise ContractError(f"unsupported contract value: {value!r}")


def _split_top_level(inner: str) -> List[str]:
    parts: List[str] = []
    depth = 0
    quote = ""
    buf = ""
    for ch in inner:
        if quote:
            buf += ch
            if ch == quote:
                quote = ""
            continue
        if ch in "\"'":
            quote = ch
            buf += ch
        elif ch == "[":
            depth += 1
            buf += ch
        elif ch == "]":
            depth -= 1
            buf += ch
        elif ch == "," and depth == 0:
            if buf.strip():
                parts.append(buf.strip())
            buf = ""
        else:
            buf += ch
    if buf.strip():
        parts.append(buf.strip())
    return parts


def _strings(table: Dict[str, Any], key: str,
             default: Sequence[str] = ()) -> Tuple[str, ...]:
    value = table.get(key)
    if value is None:
        return tuple(default)
    if not isinstance(value, list) or not all(
            isinstance(v, str) for v in value):
        raise ContractError(f"contract key {key!r} must be a list of strings")
    return tuple(value)


def load_contract(path: Path) -> ArchContract:
    """Parse and validate the contract at *path*."""
    if not path.is_file():
        raise ContractError(f"contract file not found: {path}")
    data = _parse_toml(path)

    meta = data.get("meta", {})
    root_package = meta.get("root_package")
    if not isinstance(root_package, str) or not root_package:
        raise ContractError("contract [meta] must set root_package")

    raw_layers = data.get("layers")
    if not isinstance(raw_layers, list) or not raw_layers:
        raise ContractError("contract must declare at least one [[layers]]")
    layers: List[Layer] = []
    seen_names = set()
    for rank, table in enumerate(raw_layers):
        name = table.get("name")
        if not isinstance(name, str) or not name:
            raise ContractError("every [[layers]] entry needs a name")
        if name in seen_names:
            raise ContractError(f"duplicate layer name: {name}")
        seen_names.add(name)
        layers.append(Layer(
            name=name, rank=rank,
            packages=_strings(table, "packages"),
            modules=_strings(table, "modules")))

    seams = data.get("kernel_seams", {})
    kernel_layer = seams.get("kernel_layer", layers[0].name)
    if kernel_layer not in seen_names:
        raise ContractError(f"kernel_layer {kernel_layer!r} is not a layer")
    unrestricted = _strings(seams, "unrestricted_layers")
    for name in unrestricted:
        if name not in seen_names:
            raise ContractError(
                f"unrestricted layer {name!r} is not a declared layer")

    purity = data.get("purity", {})
    wire = data.get("wire", {})

    return ArchContract(
        path=path,
        root_package=root_package,
        layers=tuple(layers),
        kernel_layer=kernel_layer,
        seam_modules=_strings(seams, "protocol_modules"),
        seam_names=_strings(seams, "protocol_names"),
        unrestricted_layers=unrestricted,
        scheduler_methods=_strings(
            seams, "scheduler_methods", ("schedule", "schedule_at")),
        purity_entry_points=_strings(purity, "entry_points"),
        purity_boundary_modules=_strings(purity, "boundary_modules"),
        message_modules=_strings(wire, "message_modules"),
        extra_messages=_strings(wire, "extra_messages"),
        components=_strings(wire, "components"),
        plain_classes=_strings(wire, "plain_classes"),
        handler_methods=_strings(wire, "handler_methods", ("receive",)),
        codec_modules=_strings(wire, "codec_modules"),
    )
