"""Module discovery, parsing, and runtime-import-graph extraction.

This is the shared substrate for all three audit passes: it walks a source
tree, maps files to dotted module names, parses each one once, and records
every import edge with enough context (line, TYPE_CHECKING-ness, function
scope) for the layer pass to classify it.

Edge semantics:

* ``type_checking`` imports (inside ``if TYPE_CHECKING:``) are *not* runtime
  edges — they exist only for annotations and are excluded from both the
  layering and cycle checks.
* ``deferred`` imports (function/method scope) *are* runtime edges for
  layering (the dependency is real) but are excluded from cycle detection,
  because a lazy import is the sanctioned way to break a module cycle.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["ImportEdge", "Module", "ModuleGraph", "discover_modules",
           "build_graph"]


@dataclass(frozen=True)
class ImportEdge:
    """One import statement resolved against the module universe."""

    importer: str          # dotted module doing the import
    target: str            # dotted module being imported (inside universe)
    name: Optional[str]    # the specific name, for from-imports of names
    line: int
    type_checking: bool    # inside "if TYPE_CHECKING:"
    deferred: bool         # inside a function / method body

    @property
    def runtime(self) -> bool:
        return not self.type_checking


@dataclass
class Module:
    """A parsed source module plus its raw text (for noqa scanning)."""

    name: str
    path: Path
    source: str
    tree: ast.Module


class ModuleGraph:
    """The parsed universe plus all resolved in-universe import edges."""

    def __init__(self, modules: Dict[str, Module],
                 edges: List[ImportEdge],
                 parse_errors: List[Tuple[Path, str]]) -> None:
        self.modules = modules
        self.edges = edges
        self.parse_errors = parse_errors

    def runtime_edges(self) -> List[ImportEdge]:
        return [e for e in self.edges if e.runtime]

    def cycle_edges(self) -> List[ImportEdge]:
        """Edges participating in import-time evaluation (cycle check)."""
        return [e for e in self.edges if e.runtime and not e.deferred]


def discover_modules(root: Path, package: str) -> Dict[str, Path]:
    """Map dotted module names to files for the package rooted at *root*.

    *root* is the directory of the package itself (e.g. ``src/repro`` for
    package ``repro``).  Non-package stray directories (no ``__init__.py``)
    are still walked — fixture trees rely on that — but ``__pycache__`` is
    skipped.
    """
    out: Dict[str, Path] = {}
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        rel = path.relative_to(root)
        parts = list(rel.parts)
        parts[-1] = parts[-1][:-3]  # strip .py
        if parts[-1] == "__init__":
            parts.pop()
        name = ".".join([package] + parts) if parts else package
        out[name] = path
    return out


def _parse_modules(files: Dict[str, Path]) -> Tuple[
        Dict[str, Module], List[Tuple[Path, str]]]:
    modules: Dict[str, Module] = {}
    errors: List[Tuple[Path, str]] = []
    for name, path in sorted(files.items()):
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            errors.append((path, exc.msg or "syntax error"))
            continue
        modules[name] = Module(name=name, path=path, source=source, tree=tree)
    return modules, errors


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name) and test.id == "TYPE_CHECKING":
        return True
    if isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING":
        return True
    return False


def _walk_imports(module: Module) -> Iterator[
        Tuple[ast.stmt, bool, bool]]:
    """Yield (import-node, type_checking, deferred) for the whole module."""

    def walk(node: ast.AST, type_checking: bool, deferred: bool) -> Iterator[
            Tuple[ast.stmt, bool, bool]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.Import, ast.ImportFrom)):
                yield child, type_checking, deferred
            elif isinstance(child, ast.If):
                guarded = type_checking or _is_type_checking_test(child.test)
                for stmt in child.body:
                    yield from walk_stmt(stmt, guarded, deferred)
                for stmt in child.orelse:
                    yield from walk_stmt(stmt, type_checking, deferred)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.Lambda)):
                yield from walk(child, type_checking, True)
            else:
                yield from walk(child, type_checking, deferred)

    def walk_stmt(stmt: ast.stmt, type_checking: bool,
                  deferred: bool) -> Iterator[Tuple[ast.stmt, bool, bool]]:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            yield stmt, type_checking, deferred
        else:
            yield from walk(stmt, type_checking, deferred)

    yield from walk(module.tree, False, False)


def _resolve_relative(importer: str, is_package: bool, level: int,
                      module: Optional[str]) -> Optional[str]:
    """Resolve a relative import to an absolute dotted name."""
    parts = importer.split(".")
    if not is_package:
        parts = parts[:-1]
    # level 1 = current package, each extra level pops one more
    drop = level - 1
    if drop > len(parts):
        return None
    base = parts[:len(parts) - drop] if drop else parts
    if module:
        base = base + module.split(".")
    return ".".join(base) if base else None


def build_graph(files: Dict[str, Path]) -> ModuleGraph:
    """Parse all *files* and extract in-universe import edges."""
    modules, errors = _parse_modules(files)
    universe = set(modules)
    edges: List[ImportEdge] = []
    for name, module in sorted(modules.items()):
        is_package = module.path.name == "__init__.py"
        for node, type_checking, deferred in _walk_imports(module):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    target = _best_prefix(alias.name, universe)
                    if target:
                        edges.append(ImportEdge(
                            importer=name, target=target, name=None,
                            line=node.lineno, type_checking=type_checking,
                            deferred=deferred))
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = _resolve_relative(
                        name, is_package, node.level, node.module)
                else:
                    base = node.module
                if base is None:
                    continue
                for alias in node.names:
                    # "from pkg import sub" may name a module or an object
                    as_module = f"{base}.{alias.name}"
                    if alias.name != "*" and as_module in universe:
                        edges.append(ImportEdge(
                            importer=name, target=as_module, name=None,
                            line=node.lineno, type_checking=type_checking,
                            deferred=deferred))
                        continue
                    target = _best_prefix(base, universe)
                    if target:
                        edges.append(ImportEdge(
                            importer=name, target=target,
                            name=None if alias.name == "*" else alias.name,
                            line=node.lineno, type_checking=type_checking,
                            deferred=deferred))
    return ModuleGraph(modules=modules, edges=edges, parse_errors=errors)


def _best_prefix(dotted: str, universe: set) -> Optional[str]:
    """Longest prefix of *dotted* that names a module in the universe."""
    parts = dotted.split(".")
    for cut in range(len(parts), 0, -1):
        candidate = ".".join(parts[:cut])
        if candidate in universe:
            return candidate
    return None


def strongly_connected_components(
        nodes: List[str],
        adjacency: Dict[str, List[str]]) -> List[List[str]]:
    """Tarjan SCC, iterative.  Returns components in discovery order."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Dict[str, bool] = {}
    stack: List[str] = []
    components: List[List[str]] = []
    counter = [0]

    for start in nodes:
        if start in index:
            continue
        work: List[Tuple[str, int]] = [(start, 0)]
        while work:
            node, child_idx = work.pop()
            if child_idx == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack[node] = True
            children = adjacency.get(node, [])
            advanced = False
            for i in range(child_idx, len(children)):
                child = children[i]
                if child not in index:
                    work.append((node, i + 1))
                    work.append((child, 0))
                    advanced = True
                    break
                if on_stack.get(child):
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components
