"""Pass 1 — layer contract: ARCH001 upward imports, ARCH002 cycles,
ARCH003 unsanctioned kernel seams, ARCH004 kernel-scheduler bypass.

Inputs are the parsed :class:`~repro.analysis.arch.imports.ModuleGraph` and
the :class:`~repro.analysis.arch.contract.ArchContract`.  The pass is pure
graph/AST inspection — no imports of the audited code are executed.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from repro.analysis.arch.contract import ArchContract
from repro.analysis.arch.imports import (
    ImportEdge, Module, ModuleGraph, strongly_connected_components)
from repro.analysis.arch.report import ArchFinding

__all__ = ["check_layers"]


def check_layers(graph: ModuleGraph,
                 contract: ArchContract) -> List[ArchFinding]:
    findings: List[ArchFinding] = []
    findings.extend(_check_upward_imports(graph, contract))
    findings.extend(_check_cycles(graph))
    findings.extend(_check_kernel_seams(graph, contract))
    findings.extend(_check_scheduler_bypass(graph, contract))
    return findings


# -- ARCH001: upward imports ------------------------------------------------

def _check_upward_imports(graph: ModuleGraph,
                          contract: ArchContract) -> List[ArchFinding]:
    findings = []
    for edge in graph.runtime_edges():
        src_layer = contract.layer_of(edge.importer)
        dst_layer = contract.layer_of(edge.target)
        if src_layer is None or dst_layer is None:
            continue  # modules outside the declared layering are exempt
        if dst_layer.rank > src_layer.rank:
            module = graph.modules[edge.importer]
            findings.append(ArchFinding(
                file=str(module.path), line=edge.line, code="ARCH001",
                message=(
                    f"{edge.importer} (layer '{src_layer.name}') imports "
                    f"{edge.target} (layer '{dst_layer.name}'): upward "
                    "dependency violates the layer contract"),
            ))
    return findings


# -- ARCH002: import cycles -------------------------------------------------

def _check_cycles(graph: ModuleGraph) -> List[ArchFinding]:
    adjacency: Dict[str, List[str]] = {}
    first_line: Dict[tuple, int] = {}
    self_loops: Set[str] = set()
    for edge in graph.cycle_edges():
        if edge.importer == edge.target:
            self_loops.add(edge.importer)
            continue
        adjacency.setdefault(edge.importer, [])
        if edge.target not in adjacency[edge.importer]:
            adjacency[edge.importer].append(edge.target)
        first_line.setdefault((edge.importer, edge.target), edge.line)
    nodes = sorted(graph.modules)
    findings = []
    for component in strongly_connected_components(nodes, adjacency):
        if len(component) < 2:
            continue
        members = sorted(component)
        anchor = members[0]
        line = min((first_line.get((a, b), 1)
                    for a in members for b in members if a != b
                    and (a, b) in first_line), default=1)
        module = graph.modules[anchor]
        findings.append(ArchFinding(
            file=str(module.path), line=line, code="ARCH002",
            message=("import cycle between modules: "
                     + " <-> ".join(members)),
        ))
    for name in sorted(self_loops):
        module = graph.modules[name]
        findings.append(ArchFinding(
            file=str(module.path), line=1, code="ARCH002",
            message=f"module {name} imports itself",
        ))
    return findings


# -- ARCH003: kernel seams --------------------------------------------------

def _kernel_module(target: str, contract: ArchContract) -> bool:
    layer = contract.layer_of(target)
    return layer is not None and layer.name == contract.kernel_layer


def _edge_sanctioned(edge: ImportEdge, contract: ArchContract) -> bool:
    if edge.target in contract.seam_modules:
        return True
    if edge.name is not None and f"{edge.target}:{edge.name}" in \
            contract.seam_names:
        return True
    return False


def _check_kernel_seams(graph: ModuleGraph,
                        contract: ArchContract) -> List[ArchFinding]:
    findings = []
    for edge in graph.runtime_edges():
        src_layer = contract.layer_of(edge.importer)
        if src_layer is None or not contract.is_restricted(src_layer):
            continue
        if src_layer.name == contract.kernel_layer:
            continue  # the kernel may use itself freely
        if not _kernel_module(edge.target, contract):
            continue
        if _edge_sanctioned(edge, contract):
            continue
        module = graph.modules[edge.importer]
        what = (f"{edge.target}:{edge.name}" if edge.name else edge.target)
        findings.append(ArchFinding(
            file=str(module.path), line=edge.line, code="ARCH003",
            message=(
                f"{edge.importer} (restricted layer '{src_layer.name}') "
                f"imports kernel internal {what}; only the sanctioned "
                "seams in arch_contract.toml are allowed"),
        ))
    return findings


# -- ARCH004: kernel-scheduler bypass --------------------------------------

#: receiver names treated as the simulator handle in protocol code
_SIM_HANDLE_NAMES = {"sim", "simulator"}


def _check_scheduler_bypass(graph: ModuleGraph,
                            contract: ArchContract) -> List[ArchFinding]:
    findings = []
    methods = set(contract.scheduler_methods)
    for name in sorted(graph.modules):
        layer = contract.layer_of(name)
        if layer is None or not contract.is_restricted(layer):
            continue
        if layer.name == contract.kernel_layer:
            continue
        module = graph.modules[name]
        findings.extend(_scan_scheduler_calls(module, methods))
    return findings


def _scan_scheduler_calls(module: Module,
                          methods: Set[str]) -> List[ArchFinding]:
    findings = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in methods:
            continue
        owner = func.value
        owner_name = None
        if isinstance(owner, ast.Name):
            owner_name = owner.id
        elif isinstance(owner, ast.Attribute):
            owner_name = owner.attr
        if owner_name not in _SIM_HANDLE_NAMES:
            continue
        findings.append(ArchFinding(
            file=str(module.path), line=node.lineno, code="ARCH004",
            message=(
                f"protocol code calls {owner_name}.{func.attr}(...) on the "
                "kernel scheduler directly; use Process.set_timer / "
                "Process.every (relative delays a Transport can honor)"),
        ))
    return findings
