"""Pass 2 — interprocedural sim-purity (ARCH101).

BFS over the call graph from each contract-declared protocol entry point.
If any reachable function directly uses a forbidden source (wall clock,
global RNG, entropy, threading/asyncio, sockets, files, environment), one
finding is emitted per (entry point, forbidden call site) with the full
witness chain from the entry point to the offending line.

Traversal does not descend *into* functions whose module matches a
``boundary_modules`` prefix (the sanctioned kernel seams): the kernel is
audited by its own tests, and protocol code is only responsible for what it
reaches outside those seams.
"""

from __future__ import annotations

import fnmatch
from typing import Dict, List, Optional, Tuple

from repro.analysis.arch.callgraph import CallGraph, FunctionInfo
from repro.analysis.arch.contract import ArchContract
from repro.analysis.arch.imports import ModuleGraph
from repro.analysis.arch.report import ArchFinding

__all__ = ["check_purity"]


def _match_entry_points(cg: CallGraph,
                        patterns: Tuple[str, ...]) -> List[FunctionInfo]:
    entries: List[FunctionInfo] = []
    for key in sorted(cg.functions):
        # keys look like "repro.datacenter.gear:Gear.update"
        if any(fnmatch.fnmatchcase(key, pattern) for pattern in patterns):
            entries.append(cg.functions[key])
    return entries


def _in_boundary(module: str, boundaries: Tuple[str, ...]) -> bool:
    return any(module == b or module.startswith(b + ".")
               for b in boundaries)


def check_purity(graph: ModuleGraph, cg: CallGraph,
                 contract: ArchContract) -> List[ArchFinding]:
    entries = _match_entry_points(cg, contract.purity_entry_points)
    boundaries = contract.purity_boundary_modules
    findings: List[ArchFinding] = []
    for entry in entries:
        findings.extend(_audit_entry(graph, cg, entry, boundaries))
    return findings


def _audit_entry(graph: ModuleGraph, cg: CallGraph, entry: FunctionInfo,
                 boundaries: Tuple[str, ...]) -> List[ArchFinding]:
    # BFS with parent pointers so each finding carries a shortest witness
    parent: Dict[str, Optional[Tuple[str, int]]] = {entry.key: None}
    queue: List[str] = [entry.key]
    findings: List[ArchFinding] = []
    reported: set = set()
    while queue:
        key = queue.pop(0)
        fn = cg.functions[key]
        for use in fn.forbidden:
            signature = (fn.key, use.line, use.dotted)
            if signature in reported:
                continue
            reported.add(signature)
            witness = _witness(graph, cg, parent, fn.key)
            witness.append(
                f"{_locate(graph, fn, use.line)} calls {use.dotted} "
                f"[{use.reason}]")
            entry_module = graph.modules.get(entry.module)
            findings.append(ArchFinding(
                file=str(entry_module.path) if entry_module else entry.module,
                line=entry.line, code="ARCH101",
                message=(
                    f"protocol entry point {entry.key} transitively "
                    f"reaches forbidden source {use.dotted} "
                    f"({use.reason}) at "
                    f"{_locate(graph, fn, use.line)}"),
                witness=tuple(witness),
            ))
        for site in fn.calls:
            callee = cg.functions.get(site.callee)
            if callee is None or site.callee in parent:
                continue
            if _in_boundary(callee.module, boundaries):
                continue
            parent[site.callee] = (key, site.line)
            queue.append(site.callee)
    return findings


def _witness(graph: ModuleGraph, cg: CallGraph,
             parent: Dict[str, Optional[Tuple[str, int]]],
             key: str) -> List[str]:
    """Chain of "module:qualname (file:line)" from the entry to *key*."""
    chain: List[Tuple[str, Optional[int]]] = []
    cursor: Optional[str] = key
    call_line: Optional[int] = None
    while cursor is not None:
        chain.append((cursor, call_line))
        step = parent[cursor]
        if step is None:
            cursor = None
        else:
            cursor, call_line = step
    chain.reverse()
    out = []
    for func_key, line in chain:
        fn = cg.functions[func_key]
        at = _locate(graph, fn, line if line is not None else fn.line)
        out.append(f"{func_key} ({at})")
    return out


def _locate(graph: ModuleGraph, fn: FunctionInfo, line: int) -> str:
    module = graph.modules.get(fn.module)
    path = module.path if module else fn.module
    return f"{path}:{line}"
