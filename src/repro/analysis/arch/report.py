"""Findings, noqa filtering, and the JSON/human report for the arch audit.

Mirrors :mod:`repro.analysis.lint` so tooling that consumes SAT lint output
can consume ARCH output unchanged, but adds an optional *witness*: the
purity pass attaches the full call chain from entry point to forbidden
source, and layer findings can attach the cycle path.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = ["ArchFinding", "ArchReport", "filter_noqa"]

_NOQA_RE = re.compile(
    r"#\s*noqa\b(?::\s*(?P<codes>[A-Z]{3,4}\d{3}"
    r"(?:\s*,\s*[A-Z]{3,4}\d{3})*))?",
    re.IGNORECASE,
)


@dataclass(frozen=True)
class ArchFinding:
    """One architecture violation, optionally with a witness path."""

    file: str
    line: int
    code: str
    message: str
    witness: Tuple[str, ...] = ()

    def format(self) -> str:
        head = f"{self.file}:{self.line} {self.code} {self.message}"
        if not self.witness:
            return head
        chain = "\n".join(f"    {'-> ' if i else '   '}{step}"
                          for i, step in enumerate(self.witness))
        return f"{head}\n  witness:\n{chain}"


@dataclass
class ArchReport:
    """Aggregate audit result across all passes."""

    findings: List[ArchFinding] = field(default_factory=list)
    modules_checked: int = 0
    passes_run: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.findings

    def sorted(self) -> "ArchReport":
        self.findings.sort(key=lambda f: (f.file, f.line, f.code, f.message))
        return self

    def format_human(self) -> str:
        lines = [finding.format() for finding in self.findings]
        noun = "module" if self.modules_checked == 1 else "modules"
        lines.append(
            f"{len(self.findings)} finding(s) in {self.modules_checked} "
            f"{noun} ({', '.join(self.passes_run)})")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps({
            "ok": self.ok,
            "modules_checked": self.modules_checked,
            "passes": list(self.passes_run),
            "findings": [
                {"file": f.file, "line": f.line, "code": f.code,
                 "message": f.message, "witness": list(f.witness)}
                for f in self.findings
            ],
        }, indent=2)


def _suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """line -> None (suppress all) or the set of suppressed codes."""
    table: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if not match:
            continue
        codes = match.group("codes")
        if codes is None:
            table[lineno] = None
        else:
            table[lineno] = {c.strip().upper() for c in codes.split(",")}
    return table


def filter_noqa(findings: Sequence[ArchFinding],
                sources: Dict[str, str]) -> List[ArchFinding]:
    """Drop findings suppressed by a ``# noqa`` / ``# noqa: ARCHxxx`` on
    their line.  *sources* maps file path -> source text; files not in the
    map are read lazily (and treated as unsuppressable if unreadable)."""
    tables: Dict[str, Dict[int, Optional[Set[str]]]] = {}
    kept: List[ArchFinding] = []
    for finding in findings:
        table = tables.get(finding.file)
        if table is None:
            source = sources.get(finding.file)
            if source is None:
                try:
                    source = Path(finding.file).read_text(encoding="utf-8")
                except OSError:
                    source = ""
            table = _suppressions(source)
            tables[finding.file] = table
        suppressed = table.get(finding.line, ...)
        if suppressed is None:
            continue
        if suppressed is not ... and finding.code in suppressed:
            continue
        kept.append(finding)
    return kept
