"""Catalogue of the architecture-audit rules (ARCHxxx).

The auditor (:mod:`repro.analysis.arch`) is the static gate for ROADMAP
item 1 — refactoring message passing behind a ``Transport`` interface so the
same protocol code runs on the deterministic sim kernel or on asyncio TCP
across real processes.  Each rule names one way the tree can silently grow a
dependency that would make that refactor unsound:

* the 0xx rules police the *layer contract* (who may import whom, and which
  kernel seams protocol code may touch);
* the 1xx rules police *sim-purity* (no protocol entry point may transitively
  reach a nondeterministic or environment-coupled source);
* the 2xx rules police *wire-safety* (every message is plain data with a
  registered handler, so payloads survive real serialization).

Codes follow the SATxxx convention: suppress a deliberate exception with
``# noqa: ARCH001`` on the offending line.  The detection logic lives in the
sibling pass modules; this module only defines codes and rationale so
reports, suppressions, and docs stay in sync.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["ArchRule", "ALL_ARCH_RULES", "ARCH_RULES_BY_CODE"]


@dataclass(frozen=True)
class ArchRule:
    """One architecture rule: a stable code plus human-facing explanation."""

    code: str
    title: str
    rationale: str


ALL_ARCH_RULES: Tuple[ArchRule, ...] = (
    ArchRule(
        code="ARCH001",
        title="layer-contract violation (upward import)",
        rationale=(
            "arch_contract.toml orders the layers (sim kernel <- core "
            "protocol <- datacenter <- services <- tools); a module may "
            "import its own layer or lower ones.  An upward import couples "
            "protocol code to machinery above it and blocks moving the "
            "lower layer behind the Transport interface."
        ),
    ),
    ArchRule(
        code="ARCH002",
        title="module import cycle",
        rationale=(
            "A cycle in the runtime import graph means no participating "
            "module can be extracted, tested, or deployed without the "
            "others; deferred (function-scope) imports are the sanctioned "
            "way to break one and are excluded from the check."
        ),
    ),
    ArchRule(
        code="ARCH003",
        title="unsanctioned sim-kernel import from protocol code",
        rationale=(
            "Protocol layers may touch the kernel only through the "
            "sanctioned seams listed in arch_contract.toml (the Process "
            "actor API, PhysicalClock, Network.send, the CPU cost model, "
            "and the Simulator handle).  Anything else — Event internals, "
            "RngRegistry, heap state — is kernel-private and will not "
            "exist under a real transport."
        ),
    ),
    ArchRule(
        code="ARCH004",
        title="kernel-scheduler bypass in protocol code",
        rationale=(
            "Protocol code must create timers via Process.set_timer / "
            "Process.every (relative delays a Transport can implement); "
            "calling sim.schedule / sim.schedule_at directly binds the "
            "code to the discrete-event kernel's absolute clock."
        ),
    ),
    ArchRule(
        code="ARCH101",
        title="protocol entry point reaches a forbidden source",
        rationale=(
            "A serializer/sink/proxy/gear handler transitively calls a "
            "wall clock, the global RNG, threading/asyncio primitives, "
            "entropy, file/socket I/O, or the process environment.  Such "
            "a path makes the execution depend on the host instead of the "
            "simulated schedule; the finding reports the full call chain "
            "from entry point to the forbidden call site."
        ),
    ),
    ArchRule(
        code="ARCH201",
        title="constructed message type has no registered handler",
        rationale=(
            "Every message type that is constructed somewhere must appear "
            "in an isinstance dispatch of some receive handler; an "
            "unhandled message either crashes the defensive TypeError arm "
            "or is dropped silently, and a real transport cannot route it."
        ),
    ),
    ArchRule(
        code="ARCH202",
        title="handler accesses a field the message does not define",
        rationale=(
            "Inside an isinstance(message, T) branch, every attribute read "
            "on the message must be a field (or method/property) of T; a "
            "typo here only explodes when that branch executes, which for "
            "rare messages can be deep into a long run."
        ),
    ),
    ArchRule(
        code="ARCH203",
        title="message field is not plain data",
        rationale=(
            "Message payloads must be built from None/bool/int/float/str/"
            "bytes, enums, tuples/frozensets of plain data, and frozen "
            "plain dataclasses.  object/Any annotations, mutable "
            "containers (list/dict/set), callables, and sim objects "
            "cannot survive real serialization — and a mutable field "
            "shipped by reference aliases state across processes, which "
            "the in-process simulator hides."
        ),
    ),
    ArchRule(
        code="ARCH204",
        title="message constructed with unknown or excess arguments",
        rationale=(
            "A construction site passing a keyword that is not a field, or "
            "more positional arguments than the dataclass defines, raises "
            "only when that code path runs; the audit catches it tree-wide "
            "at review time."
        ),
    ),
    ArchRule(
        code="ARCH205",
        title="wire codec and handler sets disagree",
        rationale=(
            "When the contract names codec_modules, the set of messages "
            "registered there (top-level register(Name) calls) must match "
            "the set some handler dispatches on: a dispatched-but-"
            "unregistered message cannot cross a real TCP link (the codec "
            "raises at send), and a registered-but-undispatched message "
            "crashes the receiver's defensive TypeError arm when a frame "
            "arrives.  The sim transport hides both, so only the audit "
            "catches them before a real deployment."
        ),
    ),
)

ARCH_RULES_BY_CODE: Dict[str, ArchRule] = {
    rule.code: rule for rule in ALL_ARCH_RULES}
