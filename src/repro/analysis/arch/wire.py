"""Pass 3 — wire-safety (ARCH201–ARCH205).

Enumerates the message dataclasses in the contract's ``message_modules``
(plus ``extra_messages``) and checks, tree-wide:

* ARCH201 — every message type that is *constructed* somewhere has a
  registered handler: an ``isinstance(x, T)`` (or tuple-of-types) test
  inside some contract-named handler method.  Messages that are never
  constructed need no handler; contract ``components`` (plain-data types
  that ride *inside* message fields, e.g. a dependency context) are
  plain-checked like messages but exempt from handler registration.
* ARCH202 — inside an ``isinstance(message, T)`` branch of a handler,
  every attribute read on the narrowed variable exists on ``T`` (fields,
  methods, or properties).
* ARCH203 — every field annotation is plain data: ``None/bool/int/float/
  str/bytes``, enums and frozen plain dataclasses named in the contract's
  ``plain_classes``, and ``Optional/Union/Tuple/FrozenSet`` thereof.
  ``object``/``Any``, mutable containers, callables, and unknown classes
  are rejected — they either cannot be serialized or would ship a shared
  mutable reference between processes.
* ARCH204 — every construction site passes only known field names and no
  more positionals than the dataclass defines.
* ARCH205 — codec/handler conformance (only when the contract names
  ``codec_modules``): every message some handler dispatches on must be
  registered with the wire codec (or it cannot cross a real TCP link),
  and every *message* registered with the codec must have a handler (or
  a decoded frame would crash the dispatch arm).  Contract
  ``components`` and non-message plain classes may be registered freely
  — they ride inside message fields and are never dispatched.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.arch.contract import ArchContract
from repro.analysis.arch.imports import Module, ModuleGraph
from repro.analysis.arch.report import ArchFinding

__all__ = ["check_wire", "MessageType"]


_PLAIN_ATOMS: Set[str] = {"None", "bool", "int", "float", "str", "bytes"}

_PLAIN_CONTAINERS: Set[str] = {"Tuple", "tuple", "FrozenSet", "frozenset"}

_WRAPPERS: Set[str] = {"Optional", "Union"}

_REJECT_CONTAINERS: Set[str] = {
    "List", "list", "Dict", "dict", "Set", "set", "Deque", "deque",
    "MutableMapping", "MutableSequence", "MutableSet", "DefaultDict",
    "OrderedDict", "bytearray", "Counter",
}


@dataclass
class MessageType:
    """One message dataclass: its fields and non-field attributes."""

    module: str
    name: str
    node: ast.ClassDef
    fields: Dict[str, Optional[ast.expr]] = field(default_factory=dict)
    methods: Set[str] = field(default_factory=set)
    positional_max: int = 0


def check_wire(graph: ModuleGraph,
               contract: ArchContract) -> List[ArchFinding]:
    messages = _collect_messages(graph, contract)
    if not messages:
        return []
    component_names = {entry.partition(":")[2]
                       for entry in contract.components}
    aliases = _collect_aliases(graph, messages)
    findings: List[ArchFinding] = []
    findings.extend(_check_plain_fields(graph, contract, messages, aliases))
    handlers = _collect_handlers(graph, contract, messages)
    constructed = _collect_constructions(graph, messages, findings)
    findings.extend(_check_missing_handlers(
        graph, messages, handlers, constructed - component_names))
    findings.extend(_check_handler_field_access(graph, contract, messages))
    findings.extend(_check_codec_conformance(
        graph, contract, messages, handlers, component_names))
    return findings


# -- message enumeration ----------------------------------------------------

def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name == "dataclass":
            return True
    return False


def _collect_messages(graph: ModuleGraph,
                      contract: ArchContract) -> Dict[str, MessageType]:
    """name -> MessageType.  Message names are treated as globally unique
    across the declared message modules (they are the wire vocabulary)."""
    wanted_extra: Dict[str, Set[str]] = {}
    for entry in contract.extra_messages + contract.components:
        mod, _, cls = entry.partition(":")
        wanted_extra.setdefault(mod, set()).add(cls)
    messages: Dict[str, MessageType] = {}
    for mod_name in sorted(graph.modules):
        module = graph.modules[mod_name]
        take_all = mod_name in contract.message_modules
        take_some = wanted_extra.get(mod_name, set())
        if not take_all and not take_some:
            continue
        for stmt in module.tree.body:
            if not isinstance(stmt, ast.ClassDef):
                continue
            if not take_all and stmt.name not in take_some:
                continue
            if not _is_dataclass_decorated(stmt):
                continue
            if stmt.name.startswith("_") and not take_all and \
                    stmt.name not in take_some:
                continue
            messages[stmt.name] = _parse_message(mod_name, stmt)
    return messages


def _parse_message(module: str, node: ast.ClassDef) -> MessageType:
    msg = MessageType(module=module, name=node.name, node=node)
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name):
            annotation = stmt.annotation
            if _is_classvar(annotation):
                continue
            msg.fields[stmt.target.id] = annotation
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            msg.methods.add(stmt.name)
    msg.positional_max = len(msg.fields)
    return msg


def _is_classvar(annotation: ast.expr) -> bool:
    if isinstance(annotation, ast.Subscript):
        head = annotation.value
        name = head.id if isinstance(head, ast.Name) else (
            head.attr if isinstance(head, ast.Attribute) else None)
        return name == "ClassVar"
    return False


# -- ARCH203: plain-data fields ---------------------------------------------

def _collect_aliases(graph: ModuleGraph,
                     messages: Dict[str, MessageType]
                     ) -> Dict[str, Dict[str, ast.expr]]:
    """Module-level type aliases (``Stamp = Union[...]``) per message
    module, so annotations may name them and still be checked
    structurally."""
    out: Dict[str, Dict[str, ast.expr]] = {}
    for mod_name in sorted({m.module for m in messages.values()}):
        module = graph.modules[mod_name]
        table: Dict[str, ast.expr] = {}
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                    isinstance(stmt.targets[0], ast.Name) and \
                    isinstance(stmt.value, (ast.Subscript, ast.Name,
                                            ast.Attribute, ast.BinOp)):
                table[stmt.targets[0].id] = stmt.value
        out[mod_name] = table
    return out


def _check_plain_fields(graph: ModuleGraph, contract: ArchContract,
                        messages: Dict[str, MessageType],
                        aliases: Dict[str, Dict[str, ast.expr]]
                        ) -> List[ArchFinding]:
    plain_classes = set(contract.plain_classes) | set(messages)
    findings = []
    for name in sorted(messages):
        msg = messages[name]
        module = graph.modules[msg.module]
        for field_name in msg.fields:
            annotation = msg.fields[field_name]
            bad = _non_plain(annotation, plain_classes,
                             aliases.get(msg.module, {}))
            if bad is not None:
                findings.append(ArchFinding(
                    file=str(module.path),
                    line=annotation.lineno if annotation else msg.node.lineno,
                    code="ARCH203",
                    message=(
                        f"message {name}.{field_name} has non-plain-data "
                        f"annotation ({bad}); wire payloads must be "
                        "immutable plain data"),
                ))
    return findings


def _non_plain(annotation: Optional[ast.expr], plain_classes: Set[str],
               aliases: Dict[str, ast.expr],
               depth: int = 0) -> Optional[str]:
    """None if plain; otherwise a short description of the offending part."""
    if depth > 8:
        return "alias expansion too deep (cyclic alias?)"
    if annotation is None:
        return "missing annotation"
    if isinstance(annotation, ast.Constant):
        if annotation.value is None:
            return None
        if isinstance(annotation.value, str):
            try:
                parsed = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return f"unparseable annotation {annotation.value!r}"
            return _non_plain(parsed, plain_classes, aliases, depth + 1)
        if annotation.value is Ellipsis:
            return None
        return f"unsupported constant {annotation.value!r}"
    if isinstance(annotation, ast.Name):
        name = annotation.id
        if name in _PLAIN_ATOMS or name in plain_classes:
            return None
        if name in _REJECT_CONTAINERS:
            return f"mutable container {name}"
        if name in ("object", "Any"):
            return f"opaque type {name}"
        if name in _PLAIN_CONTAINERS:
            return None  # bare tuple/frozenset
        if name in aliases:
            return _non_plain(aliases[name], plain_classes, aliases,
                              depth + 1)
        return f"unknown type {name}"
    if isinstance(annotation, ast.Attribute):
        # typing.Any / module-qualified names: judge by the terminal name
        return _non_plain(ast.Name(id=annotation.attr), plain_classes,
                          aliases, depth + 1)
    if isinstance(annotation, ast.Subscript):
        head = annotation.value
        head_name = head.id if isinstance(head, ast.Name) else (
            head.attr if isinstance(head, ast.Attribute) else None)
        args = annotation.slice
        elements = list(args.elts) if isinstance(args, ast.Tuple) else [args]
        if head_name in _WRAPPERS or head_name in _PLAIN_CONTAINERS:
            for element in elements:
                bad = _non_plain(element, plain_classes, aliases, depth + 1)
                if bad is not None:
                    return bad
            return None
        if head_name in _REJECT_CONTAINERS:
            return f"mutable container {head_name}"
        return f"unknown generic {head_name}"
    if isinstance(annotation, ast.BinOp) and isinstance(
            annotation.op, ast.BitOr):  # X | Y unions
        return (_non_plain(annotation.left, plain_classes, aliases, depth + 1)
                or _non_plain(annotation.right, plain_classes, aliases,
                              depth + 1))
    return "unsupported annotation form"


# -- handler discovery ------------------------------------------------------

def _handler_methods(graph: ModuleGraph,
                     contract: ArchContract) -> List[Tuple[Module, ast.AST]]:
    """All (module, method-node) whose name is a contract handler method."""
    out = []
    for mod_name in sorted(graph.modules):
        module = graph.modules[mod_name]
        for stmt in module.tree.body:
            if not isinstance(stmt, ast.ClassDef):
                continue
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                        and sub.name in contract.handler_methods:
                    out.append((module, sub))
    return out


def _isinstance_targets(call: ast.Call,
                        messages: Dict[str, MessageType]) -> List[str]:
    """Message names tested by an isinstance(x, T) / isinstance(x, (T, U))."""
    if not (isinstance(call.func, ast.Name)
            and call.func.id == "isinstance" and len(call.args) == 2):
        return []
    spec = call.args[1]
    candidates = spec.elts if isinstance(spec, ast.Tuple) else [spec]
    names = []
    for candidate in candidates:
        name = None
        if isinstance(candidate, ast.Name):
            name = candidate.id
        elif isinstance(candidate, ast.Attribute):
            name = candidate.attr
        if name in messages:
            names.append(name)
    return names


def _collect_handlers(graph: ModuleGraph, contract: ArchContract,
                      messages: Dict[str, MessageType]) -> Set[str]:
    handled: Set[str] = set()
    for module, method in _handler_methods(graph, contract):
        for node in ast.walk(method):
            if isinstance(node, ast.Call):
                handled.update(_isinstance_targets(node, messages))
    return handled


# -- construction sites (ARCH201 input + ARCH204) ---------------------------

def _collect_constructions(graph: ModuleGraph,
                           messages: Dict[str, MessageType],
                           findings: List[ArchFinding]) -> Set[str]:
    constructed: Set[str] = set()
    for mod_name in sorted(graph.modules):
        module = graph.modules[mod_name]
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            msg = messages.get(name) if name else None
            if msg is None:
                continue
            constructed.add(msg.name)
            findings.extend(_check_construction(module, node, msg))
    return constructed


def _check_construction(module: Module, node: ast.Call,
                        msg: MessageType) -> List[ArchFinding]:
    findings = []
    if len(node.args) > msg.positional_max:
        findings.append(ArchFinding(
            file=str(module.path), line=node.lineno, code="ARCH204",
            message=(
                f"{msg.name}(...) called with {len(node.args)} positional "
                f"arguments but the message defines "
                f"{msg.positional_max} field(s)"),
        ))
    for kw in node.keywords:
        if kw.arg is None:
            continue  # **kwargs: opaque, let runtime police it
        if kw.arg not in msg.fields:
            findings.append(ArchFinding(
                file=str(module.path), line=node.lineno, code="ARCH204",
                message=(
                    f"{msg.name}(...) called with unknown keyword "
                    f"{kw.arg!r}; fields are "
                    f"{sorted(msg.fields)}"),
            ))
    return findings


def _check_missing_handlers(graph: ModuleGraph,
                            messages: Dict[str, MessageType],
                            handled: Set[str],
                            constructed: Set[str]) -> List[ArchFinding]:
    findings = []
    for name in sorted(constructed - handled):
        msg = messages[name]
        module = graph.modules[msg.module]
        findings.append(ArchFinding(
            file=str(module.path), line=msg.node.lineno, code="ARCH201",
            message=(
                f"message {name} is constructed but no handler method "
                f"tests isinstance(..., {name}); it would be dropped or "
                "crash the dispatch arm"),
        ))
    return findings


# -- ARCH202: field access inside narrowed branches -------------------------

#: attributes that exist on every dataclass instance
_UNIVERSAL_ATTRS: Set[str] = {
    "__class__", "__dict__", "__doc__", "__module__", "__dataclass_fields__",
}


def _check_handler_field_access(
        graph: ModuleGraph, contract: ArchContract,
        messages: Dict[str, MessageType]) -> List[ArchFinding]:
    findings: List[ArchFinding] = []
    for module, method in _handler_methods(graph, contract):
        _scan_branches(module, method, messages, findings)
    return findings


def _scan_branches(module: Module, node: ast.AST,
                   messages: Dict[str, MessageType],
                   findings: List[ArchFinding]) -> None:
    """Walk the handler body; inside each `if isinstance(v, T)` branch,
    check attribute reads on `v` against T's fields (single-type tests
    only: tuple tests narrow to a union, which we skip)."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, ast.If):
            narrowed = _narrowing(child.test, messages)
            if narrowed is not None:
                var, msg = narrowed
                for stmt in child.body:
                    _check_access(module, stmt, var, msg, findings)
                    _scan_branches(module, stmt, messages, findings)
            else:
                for stmt in child.body:
                    _scan_branches(module, stmt, messages, findings)
            for stmt in child.orelse:
                _scan_branches(module, stmt, messages, findings)
        else:
            _scan_branches(module, child, messages, findings)


def _narrowing(test: ast.expr, messages: Dict[str, MessageType]
               ) -> Optional[Tuple[str, MessageType]]:
    """(variable name, message) if test is isinstance(v, SingleMessage)."""
    call = test
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And) and \
            test.values:
        call = test.values[0]
    if not isinstance(call, ast.Call):
        return None
    targets = _isinstance_targets(call, messages)
    if len(targets) != 1:
        return None
    var = call.args[0]
    if not isinstance(var, ast.Name):
        return None
    return var.id, messages[targets[0]]


def _check_access(module: Module, node: ast.AST, var: str,
                  msg: MessageType, findings: List[ArchFinding]) -> None:
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Attribute):
            continue
        if not (isinstance(sub.value, ast.Name) and sub.value.id == var):
            continue
        attr = sub.attr
        if attr in msg.fields or attr in msg.methods or \
                attr in _UNIVERSAL_ATTRS or attr.startswith("__"):
            continue
        findings.append(ArchFinding(
            file=str(module.path), line=sub.lineno, code="ARCH202",
            message=(
                f"handler accesses {var}.{attr} inside an "
                f"isinstance(..., {msg.name}) branch, but {msg.name} has "
                f"no such field (fields: {sorted(msg.fields)})"),
        ))


# -- ARCH205: codec/handler conformance --------------------------------------

def _collect_codec_registrations(
        graph: ModuleGraph, contract: ArchContract
        ) -> Dict[str, Tuple[Module, int]]:
    """Class name -> (codec module, line) for every top-level
    ``register(Name)`` / ``codec.register(Name)`` call in the contract's
    codec modules."""
    registered: Dict[str, Tuple[Module, int]] = {}
    for mod_name in contract.codec_modules:
        module = graph.modules.get(mod_name)
        if module is None:
            continue
        for stmt in module.tree.body:
            if not (isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Call)):
                continue
            call = stmt.value
            func = call.func
            func_name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None)
            if func_name != "register" or len(call.args) != 1:
                continue
            arg = call.args[0]
            name = arg.id if isinstance(arg, ast.Name) else (
                arg.attr if isinstance(arg, ast.Attribute) else None)
            if name is not None:
                registered[name] = (module, call.lineno)
    return registered


def _check_codec_conformance(graph: ModuleGraph, contract: ArchContract,
                             messages: Dict[str, MessageType],
                             handled: Set[str],
                             component_names: Set[str]) -> List[ArchFinding]:
    if not contract.codec_modules:
        return []
    registered = _collect_codec_registrations(graph, contract)
    findings: List[ArchFinding] = []
    # every dispatched message must be encodable
    for name in sorted(handled - set(registered)):
        msg = messages[name]
        module = graph.modules[msg.module]
        findings.append(ArchFinding(
            file=str(module.path), line=msg.node.lineno, code="ARCH205",
            message=(
                f"message {name} is dispatched by a handler but never "
                f"registered with the wire codec "
                f"({', '.join(contract.codec_modules)}); it cannot cross "
                "a real transport link"),
        ))
    # every registered *message* must be dispatchable (components and
    # plain field classes ride inside messages and are exempt)
    for name in sorted(set(registered) & set(messages)
                       - handled - component_names):
        module, line = registered[name]
        findings.append(ArchFinding(
            file=str(module.path), line=line, code="ARCH205",
            message=(
                f"message {name} is registered with the wire codec but no "
                f"handler method tests isinstance(..., {name}); a decoded "
                "frame would crash the dispatch arm"),
        ))
    return findings
