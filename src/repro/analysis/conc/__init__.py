"""repro.analysis.conc — whole-program async-concurrency audit.

Static companion to the runtime sanitizers in
:mod:`repro.net.sanitizers`: six CONCxxx rules over the arch call graph
that catch the asyncio bugs the SAT determinism lint and the ARCH layer
audit cannot see — event-loop stalls, dropped coroutines, await-point
lost updates, lock-order deadlocks, swallowed cancellation, and leaked
tasks.  Run as ``python -m repro.analysis.conc`` or
``saturn-repro conc``.
"""

from repro.analysis.conc.audit import RULE_NAMES, run_conc_audit
from repro.analysis.conc.report import ConcReport
from repro.analysis.conc.rules import (
    ALL_CONC_RULES, CONC_RULES_BY_CODE, ConcRule)

__all__ = [
    "run_conc_audit", "RULE_NAMES", "ConcReport",
    "ALL_CONC_RULES", "CONC_RULES_BY_CODE", "ConcRule",
]
