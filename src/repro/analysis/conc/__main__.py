"""CLI for the async-concurrency audit.

Usage::

    python -m repro.analysis.conc                 # audit the repro tree
    python -m repro.analysis.conc --json
    python -m repro.analysis.conc --rules CONC001,CONC005
    python -m repro.analysis.conc path/to/pkg --package pkg

Exit status: 0 when the audited tree is clean, 1 when there are findings,
2 on usage errors.  With no explicit root, the installed ``repro``
package tree is audited.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.conc.audit import RULE_NAMES, run_conc_audit
from repro.analysis.conc.rules import ALL_CONC_RULES

__all__ = ["main"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.conc",
        description="Async-concurrency audit for the realtime transport "
                    "path (CONCxxx).")
    parser.add_argument(
        "root", nargs="?", default=None,
        help="package directory to audit (default: the installed repro "
             "package tree)")
    parser.add_argument(
        "--package", default=None,
        help="dotted package name of the root (default: the root "
             "directory's name)")
    parser.add_argument(
        "--rules", default=",".join(RULE_NAMES),
        help=f"comma-separated subset of {'/'.join(RULE_NAMES)} "
             "(default: all)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable JSON report")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the CONC rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_CONC_RULES:
            print(f"{rule.code}  {rule.title}")
            print(f"    {rule.rationale}")
        return 0

    if args.root is not None:
        root = Path(args.root)
    else:
        import repro
        root = Path(repro.__file__).resolve().parent
    if not root.is_dir():
        print(f"error: audit root {root} is not a directory",
              file=sys.stderr)
        return 2

    rules = tuple(r.strip().upper() for r in args.rules.split(",")
                  if r.strip())
    try:
        report = run_conc_audit(root, package=args.package, rules=rules)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(report.to_json() if args.json else report.format_human())
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
