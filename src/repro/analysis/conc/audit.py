"""Audit orchestrator: discover -> callgraph -> run the six rules -> filter.

:func:`run_conc_audit` is the single programmatic entry point used by the
CLI, the CI job, and the tests.  Unlike the arch audit it needs no
contract file — the rules are universal asyncio hygiene, not
project-specific layering — so pointing it at any package directory
works.  Everything is AST-level; the audited code is never imported, so
fixture trees full of deliberate bugs are safe to scan.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.arch.callgraph import build_callgraph
from repro.analysis.arch.imports import build_graph, discover_modules
from repro.analysis.arch.report import ArchFinding, filter_noqa
from repro.analysis.conc.blocking import check_blocking
from repro.analysis.conc.lifecycle import (
    check_cancellation, check_fire_and_forget, check_task_lifecycle)
from repro.analysis.conc.report import ConcReport
from repro.analysis.conc.shared_state import (
    check_await_atomicity, check_lock_order)

__all__ = ["run_conc_audit", "RULE_NAMES"]

_CHECKS = (
    ("CONC001", check_blocking),
    ("CONC002", check_fire_and_forget),
    ("CONC003", check_await_atomicity),
    ("CONC004", check_lock_order),
    ("CONC005", check_cancellation),
    ("CONC006", check_task_lifecycle),
)

RULE_NAMES: Tuple[str, ...] = tuple(code for code, _ in _CHECKS)


def run_conc_audit(root: Path, package: Optional[str] = None,
                   rules: Sequence[str] = RULE_NAMES) -> ConcReport:
    """Audit the package tree rooted at *root*.

    *root* is the package directory itself (e.g. ``src/repro``);
    *package* is its dotted name, defaulting to ``root.name``.
    """
    unknown = set(rules) - set(RULE_NAMES)
    if unknown:
        raise ValueError(f"unknown rule(s): {sorted(unknown)}")
    if package is None:
        package = root.name
    files = discover_modules(root, package)
    graph = build_graph(files)

    findings: List[ArchFinding] = []
    for path, msg in graph.parse_errors:
        findings.append(ArchFinding(
            file=str(path), line=1, code="CONC000",
            message=f"file could not be parsed: {msg}"))

    callgraph = build_callgraph(graph)
    for code, check in _CHECKS:
        if code in rules:
            findings.extend(check(graph, callgraph))

    # the blocking BFS can reach one site from many entries and the
    # lifecycle walks can revisit nodes — report each defect once
    unique: Dict[Tuple[str, int, str, str], ArchFinding] = {}
    for finding in findings:
        key = (finding.file, finding.line, finding.code, finding.message)
        unique.setdefault(key, finding)

    sources = {str(m.path): m.source for m in graph.modules.values()}
    report = ConcReport(
        findings=filter_noqa(list(unique.values()), sources),
        modules_checked=len(graph.modules),
        async_functions=sum(
            isinstance(fn.node, ast.AsyncFunctionDef)
            for fn in callgraph.functions.values()),
        rules_run=tuple(code for code in RULE_NAMES if code in rules),
    )
    return report.sorted()
