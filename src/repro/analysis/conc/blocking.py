"""CONC001 — blocking calls interprocedurally reachable from coroutines.

BFS over the arch call graph from every ``async def`` in the universe.
The callgraph already records each function's *direct forbidden uses*
with a reason; the subset that actually blocks the host thread (host
sleep, synchronous socket/file/subprocess I/O, console input) is what a
coroutine must never reach — ``asyncio.*`` and wall-clock *reads* are
fine on the realtime path and are excluded.

Unlike the arch purity pass (which reports at the entry point, because
the entry point owns the contract), findings here land on the **blocking
call site**: that is the line that must change — or carry the
``# noqa: CONC001`` — regardless of how many coroutines reach it.  Each
site is reported once, with the witness chain from the first (sorted)
coroutine that reaches it.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.arch.callgraph import CallGraph
from repro.analysis.arch.imports import ModuleGraph
from repro.analysis.arch.report import ArchFinding
from repro.analysis.conc.helpers import locate, witness_chain

__all__ = ["check_blocking", "BLOCKING_REASONS"]

#: forbidden-use reasons (see arch.callgraph) that block the event loop
BLOCKING_REASONS: Set[str] = {
    "host sleep", "socket I/O", "file I/O", "subprocess I/O",
    "console input",
}


def check_blocking(graph: ModuleGraph, cg: CallGraph) -> List[ArchFinding]:
    entries = [cg.functions[key] for key in sorted(cg.functions)
               if isinstance(cg.functions[key].node, ast.AsyncFunctionDef)]
    findings: List[ArchFinding] = []
    claimed: Set[Tuple[str, int, str]] = set()
    for entry in entries:
        parent: Dict[str, Optional[Tuple[str, int]]] = {entry.key: None}
        queue: List[str] = [entry.key]
        while queue:
            key = queue.pop(0)
            fn = cg.functions[key]
            for use in fn.forbidden:
                if use.reason not in BLOCKING_REASONS:
                    continue
                signature = (fn.key, use.line, use.dotted)
                if signature in claimed:
                    continue
                claimed.add(signature)
                witness = witness_chain(graph, cg, parent, fn.key)
                witness.append(
                    f"{locate(graph, fn, use.line)} calls {use.dotted} "
                    f"[{use.reason}]")
                module = graph.modules.get(fn.module)
                findings.append(ArchFinding(
                    file=str(module.path) if module else fn.module,
                    line=use.line, code="CONC001",
                    message=(
                        f"blocking call {use.dotted} ({use.reason}) is "
                        f"reachable from async def {entry.key}; it stalls "
                        "the event loop for every coroutine on it"),
                    witness=tuple(witness),
                ))
            for site in fn.calls:
                callee = cg.functions.get(site.callee)
                if callee is None or site.callee in parent:
                    continue
                parent[site.callee] = (key, site.line)
                queue.append(site.callee)
    return findings
