"""Shared AST utilities for the concurrency passes.

Everything here is position- and name-based: the passes trade flow
sensitivity for whole-tree coverage (same bargain the arch purity pass
makes), so these helpers answer small questions — "is this expression a
lock?", "where is this node?", "which self attribute does this target
write?" — that the rule modules compose.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Tuple

from repro.analysis.arch.callgraph import CallGraph, FunctionInfo
from repro.analysis.arch.imports import ModuleGraph

__all__ = [
    "Pos", "terminal_name", "pos", "contains_await", "lockish",
    "method_selfname", "self_attr_target", "locate", "witness_chain",
]

Pos = Tuple[int, int]

#: context-manager expressions treated as mutual-exclusion locks (CONC003
#: exemption, CONC004 tracking) by terminal identifier
_LOCKISH_RE = re.compile(r"lock|mutex|sem", re.IGNORECASE)


def terminal_name(node: ast.expr) -> Optional[str]:
    """Last identifier of a Name / dotted-attribute / call expression."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def pos(node: ast.AST) -> Pos:
    return (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))


def contains_await(node: ast.AST) -> bool:
    """Does this subtree suspend (await / async for / async with)?"""
    return any(isinstance(sub, (ast.Await, ast.AsyncFor, ast.AsyncWith))
               for sub in ast.walk(node))


def lockish(expr: ast.expr) -> bool:
    """Does this context-manager expression look like a lock?"""
    name = terminal_name(expr)
    return name is not None and bool(_LOCKISH_RE.search(name))


def method_selfname(fn: FunctionInfo) -> Optional[str]:
    """First parameter name if *fn* is an instance method, else None."""
    if "." not in fn.qualname:
        return None
    node = fn.node
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    if not node.args.args:
        return None
    return node.args.args[0].arg


def self_attr_target(target: ast.expr, selfname: str) -> Optional[str]:
    """``self.X`` / ``self.X[...]`` assignment target -> attribute name."""
    if isinstance(target, ast.Subscript):
        target = target.value
    if (isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == selfname):
        return target.attr
    return None


def locate(graph: ModuleGraph, fn: FunctionInfo, line: int) -> str:
    module = graph.modules.get(fn.module)
    path = module.path if module else fn.module
    return f"{path}:{line}"


def witness_chain(graph: ModuleGraph, cg: CallGraph,
                  parent: Dict[str, Optional[Tuple[str, int]]],
                  key: str) -> List[str]:
    """Chain of "module:qualname (file:line)" from a BFS entry to *key*.

    Same shape as the arch purity witness so tooling that renders one
    renders both.
    """
    chain: List[Tuple[str, Optional[int]]] = []
    cursor: Optional[str] = key
    call_line: Optional[int] = None
    while cursor is not None:
        chain.append((cursor, call_line))
        step = parent[cursor]
        if step is None:
            cursor = None
        else:
            cursor, call_line = step
    chain.reverse()
    out = []
    for func_key, line in chain:
        fn = cg.functions[func_key]
        at = locate(graph, fn, line if line is not None else fn.line)
        out.append(f"{func_key} ({at})")
    return out
