"""CONC002 / CONC005 / CONC006 — coroutine and task lifecycle hygiene.

Three rules about the *lifetime* of asynchronous work:

* **CONC002** (fire-and-forget): a statement-position call to an
  in-universe ``async def`` that is never awaited, or a
  ``create_task()`` / ``ensure_future()`` whose result is discarded (the
  loop keeps only a weak reference, so the GC can kill the task
  mid-flight).
* **CONC005** (swallowed cancellation): a ``try`` whose body suspends,
  with a handler that catches ``CancelledError`` (bare ``except:``,
  ``except BaseException:``, or an explicit clause) and never re-raises.
  ``except Exception`` is exempt — since Python 3.8 ``CancelledError``
  derives from ``BaseException`` and sails past it.
* **CONC006** (unowned task): ``self.X = create_task(...)`` /
  ``await start_server(...)`` in a class none of whose
  close/stop/shutdown-shaped methods (own or inherited) ever touch
  ``self.X`` again — nothing can cancel or await the work on the way
  down.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from repro.analysis.arch.callgraph import CallGraph, FunctionInfo
from repro.analysis.arch.imports import ModuleGraph
from repro.analysis.arch.report import ArchFinding
from repro.analysis.conc.helpers import (
    contains_await, method_selfname, self_attr_target, terminal_name)

__all__ = ["check_fire_and_forget", "check_cancellation",
           "check_task_lifecycle"]

#: call names that spawn a task whose handle must be retained (CONC002)
_SPAWN_NAMES = {"create_task", "ensure_future"}

#: exception names that (also) catch asyncio.CancelledError (CONC005)
_CANCELLED_NAMES = {"CancelledError", "BaseException"}

#: call names whose result on ``self`` needs a closer (CONC006)
_TASK_SOURCES = {"create_task", "ensure_future", "start_server"}

#: method names recognised as a component's teardown path (CONC006)
_CLOSER_NAMES = {"close", "stop", "shutdown", "aclose", "cancel",
                 "terminate", "__aexit__", "__exit__", "__del__"}


def _module_file(graph: ModuleGraph, fn: FunctionInfo) -> str:
    module = graph.modules.get(fn.module)
    return str(module.path) if module else fn.module


# -- CONC002 -----------------------------------------------------------------

def check_fire_and_forget(graph: ModuleGraph,
                          cg: CallGraph) -> List[ArchFinding]:
    async_keys = {key for key, fn in cg.functions.items()
                  if isinstance(fn.node, ast.AsyncFunctionDef)}
    findings: List[ArchFinding] = []
    for key in sorted(cg.functions):
        fn = cg.functions[key]
        callees_by_line: Dict[int, Set[str]] = {}
        for site in fn.calls:
            callees_by_line.setdefault(site.line, set()).add(site.callee)
        for node in ast.walk(fn.node):
            if not (isinstance(node, ast.Expr)
                    and isinstance(node.value, ast.Call)):
                continue
            call = node.value
            name = terminal_name(call.func)
            if name in _SPAWN_NAMES:
                findings.append(ArchFinding(
                    file=_module_file(graph, fn), line=call.lineno,
                    code="CONC002",
                    message=(
                        f"the task returned by {name}() is discarded in "
                        f"{fn.key}; the event loop holds only a weak "
                        "reference, so the task can be garbage-collected "
                        "mid-flight — retain it and cancel it on close"),
                ))
                continue
            # call-edge lines are shared by every call on the line, so an
            # argument that is itself a call would alias the outer one
            # (asyncio.run(main()) must not flag main); skip those.
            arg_exprs = list(call.args) + [kw.value for kw in call.keywords]
            if any(isinstance(sub, ast.Call) for arg in arg_exprs
                   for sub in ast.walk(arg)):
                continue
            matches = sorted(
                callee for callee in callees_by_line.get(call.lineno, ())
                if callee in async_keys
                and cg.functions[callee].qualname.rsplit(".", 1)[-1] == name)
            if matches:
                findings.append(ArchFinding(
                    file=_module_file(graph, fn), line=call.lineno,
                    code="CONC002",
                    message=(
                        f"coroutine {matches[0]} is called but never "
                        f"awaited in {fn.key}; the coroutine object is "
                        "created and dropped, so its body never runs"),
                ))
    return findings


# -- CONC005 -----------------------------------------------------------------

def _swallows_cancelled(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    exprs = (handler.type.elts if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    return any(terminal_name(expr) in _CANCELLED_NAMES for expr in exprs)


def check_cancellation(graph: ModuleGraph,
                       cg: CallGraph) -> List[ArchFinding]:
    findings: List[ArchFinding] = []
    for key in sorted(cg.functions):
        fn = cg.functions[key]
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Try):
                continue
            if not any(contains_await(stmt) for stmt in node.body):
                continue
            for handler in node.handlers:
                if not _swallows_cancelled(handler):
                    continue
                if any(isinstance(sub, ast.Raise) for stmt in handler.body
                       for sub in ast.walk(stmt)):
                    continue
                clause = ("bare except:" if handler.type is None
                          else f"except {ast.unparse(handler.type)}")
                findings.append(ArchFinding(
                    file=_module_file(graph, fn), line=handler.lineno,
                    code="CONC005",
                    message=(
                        f"{clause} around an await in {fn.key} swallows "
                        "asyncio.CancelledError, so cancellation (and "
                        "graceful shutdown) never completes; re-raise it "
                        "after cleanup or let it propagate"),
                ))
    return findings


# -- CONC006 -----------------------------------------------------------------

def _closer_keys(cg: CallGraph, cls: Tuple[str, str]) -> List[str]:
    """Function keys of close/stop-shaped methods, own class and bases."""
    keys: List[str] = []
    seen: Set[Tuple[str, str]] = set()
    queue = [cls]
    while queue:
        current = queue.pop(0)
        if current in seen:
            continue
        seen.add(current)
        info = cg.classes.get(current)
        if info is None:
            continue
        for name in sorted(info.methods):
            if name in _CLOSER_NAMES:
                keys.append(info.methods[name])
        queue.extend(info.resolved_bases)
    return keys


def _touches_attr(fn: FunctionInfo, attr: str) -> bool:
    selfname = method_selfname(fn) or "self"
    return any(
        isinstance(sub, ast.Attribute) and sub.attr == attr
        and isinstance(sub.value, ast.Name) and sub.value.id == selfname
        for sub in ast.walk(fn.node))


def check_task_lifecycle(graph: ModuleGraph,
                         cg: CallGraph) -> List[ArchFinding]:
    findings: List[ArchFinding] = []
    for cls_key in sorted(cg.classes):
        info = cg.classes[cls_key]
        spawns: List[Tuple[str, int, str, FunctionInfo]] = []
        for mname in sorted(info.methods):
            fn = cg.functions[info.methods[mname]]
            selfname = method_selfname(fn)
            if selfname is None:
                continue
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and \
                        node.value is not None:
                    targets, value = [node.target], node.value
                else:
                    continue
                if isinstance(value, ast.Await):
                    value = value.value
                if not (isinstance(value, ast.Call)
                        and terminal_name(value.func) in _TASK_SOURCES):
                    continue
                source = terminal_name(value.func) or ""
                for target in targets:
                    attr = self_attr_target(target, selfname)
                    if attr is not None:
                        spawns.append((attr, node.lineno, source, fn))
        if not spawns:
            continue
        closers = _closer_keys(cg, cls_key)
        for attr, line, source, fn in spawns:
            if any(_touches_attr(cg.functions[closer], attr)
                   for closer in closers):
                continue
            findings.append(ArchFinding(
                file=_module_file(graph, fn), line=line, code="CONC006",
                message=(
                    f"{info.name}.{attr} holds the result of {source}() "
                    f"but no close/stop/shutdown method of {info.name} "
                    "cancels or awaits it; the task outlives (or silently "
                    "dies with) its owner"),
            ))
    return findings
