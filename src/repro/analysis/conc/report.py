"""Aggregate report for the concurrency audit.

Findings reuse :class:`repro.analysis.arch.report.ArchFinding` (same
file/line/code/message/witness shape, same ``# noqa`` filtering), so any
tooling that renders SAT or ARCH output renders CONC output unchanged.
This module only adds the CONC-specific aggregate: which rules ran and
how many ``async def`` entry points the blocking pass walked from.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.analysis.arch.report import ArchFinding

__all__ = ["ConcReport"]


@dataclass
class ConcReport:
    """Result of one :func:`repro.analysis.conc.run_conc_audit` run."""

    findings: List[ArchFinding] = field(default_factory=list)
    modules_checked: int = 0
    async_functions: int = 0
    rules_run: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.findings

    def sorted(self) -> "ConcReport":
        self.findings.sort(key=lambda f: (f.file, f.line, f.code, f.message))
        return self

    def format_human(self) -> str:
        lines = [finding.format() for finding in self.findings]
        noun = "module" if self.modules_checked == 1 else "modules"
        lines.append(
            f"{len(self.findings)} finding(s) in {self.modules_checked} "
            f"{noun}, {self.async_functions} async def(s) "
            f"({', '.join(self.rules_run)})")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps({
            "ok": self.ok,
            "modules_checked": self.modules_checked,
            "async_functions": self.async_functions,
            "rules": list(self.rules_run),
            "findings": [
                {"file": f.file, "line": f.line, "code": f.code,
                 "message": f.message, "witness": list(f.witness)}
                for f in self.findings
            ],
        }, indent=2)
