"""Catalogue of the async-concurrency audit rules (CONCxxx).

The auditor (:mod:`repro.analysis.conc`) is the static gate for the
realtime transport path: PR 7's ``repro.net`` (asyncio TCP transport,
``RealtimeKernel``, node directory) reintroduces genuine concurrency that
neither the SAT determinism lint nor the ARCH layer audit inspects.
Saturn's correctness argument leans on per-link FIFO delivery and
serializers that never interleave label handling; each rule here names
one way asyncio code can silently break that model — by stalling the
event loop, dropping a coroutine on the floor, interleaving at an await
point, ordering locks inconsistently, eating cancellation, or leaking
tasks past shutdown.

Codes follow the SAT/ARCH convention: suppress a deliberate exception
with ``# noqa: CONC001`` on the offending line.  Detection logic lives in
the sibling pass modules (:mod:`~repro.analysis.conc.blocking`,
:mod:`~repro.analysis.conc.lifecycle`,
:mod:`~repro.analysis.conc.shared_state`); this module only defines codes
and rationale so reports, suppressions, and docs stay in sync.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["ConcRule", "ALL_CONC_RULES", "CONC_RULES_BY_CODE"]


@dataclass(frozen=True)
class ConcRule:
    """One concurrency rule: a stable code plus human-facing explanation."""

    code: str
    title: str
    rationale: str


ALL_CONC_RULES: Tuple[ConcRule, ...] = (
    ConcRule(
        code="CONC001",
        title="blocking call reachable from a coroutine",
        rationale=(
            "time.sleep, synchronous socket/file/subprocess I/O, or "
            "console input reached (transitively) from an async def stalls "
            "the whole event loop: every peer connection, timer, and "
            "heartbeat on the node freezes for the duration.  The finding "
            "reports the full witness call chain from the coroutine to "
            "the blocking call site.  Do the work before the loop starts, "
            "or hand it to a thread via loop.run_in_executor."
        ),
    ),
    ConcRule(
        code="CONC002",
        title="fire-and-forget coroutine or discarded task",
        rationale=(
            "Calling a coroutine function without awaiting it creates a "
            "coroutine object that never runs; discarding the result of "
            "create_task()/ensure_future() is subtler — the event loop "
            "holds only a weak reference, so the garbage collector can "
            "destroy the task mid-flight.  Either way the work silently "
            "does not happen.  Await the call, or retain the task on an "
            "attribute and cancel it on the close/stop path."
        ),
    ),
    ConcRule(
        code="CONC003",
        title="read-modify-write of shared state across an await point",
        rationale=(
            "Between reading self-attached state and writing it back, an "
            "await suspends the coroutine and any other coroutine of the "
            "same object may run: the write clobbers whatever the "
            "interleaved coroutine did (a lost update — the exact bug "
            "class cooperative scheduling is supposed to prevent, "
            "reintroduced by the await).  Hold an asyncio.Lock across the "
            "read-modify-write, or restructure so the update is computed "
            "and stored without suspending."
        ),
    ),
    ConcRule(
        code="CONC004",
        title="inconsistent lock-acquisition order",
        rationale=(
            "If one coroutine acquires lock A then B while another "
            "acquires B then A, a deadlock is one unlucky interleaving "
            "away — each holds the lock the other awaits, forever, with "
            "no thread preemption to break the tie.  Pick one global "
            "order for every pair of locks and acquire in that order "
            "everywhere."
        ),
    ),
    ConcRule(
        code="CONC005",
        title="swallowed CancelledError around an await",
        rationale=(
            "A bare except:, except BaseException:, or except "
            "CancelledError: that does not re-raise eats the cancellation "
            "signal asyncio delivers at await points: task.cancel() "
            "appears to succeed but the coroutine keeps running, and "
            "graceful shutdown hangs on a task that can no longer be "
            "stopped.  Re-raise after cleanup (a bare raise), or let the "
            "exception propagate and clean up in a finally block."
        ),
    ),
    ConcRule(
        code="CONC006",
        title="task or server is never cancelled on the close/stop path",
        rationale=(
            "A component that stores the result of create_task()/"
            "start_server() on self but whose close/stop/shutdown methods "
            "never touch that attribute leaks the task past its owner's "
            "lifetime: shutdown leaves it running against torn-down "
            "state, or the process exits with 'Task was destroyed but it "
            "is pending!'.  Every spawned task needs an owner that "
            "cancels and awaits it on the way down."
        ),
    ),
)

CONC_RULES_BY_CODE: Dict[str, ConcRule] = {
    rule.code: rule for rule in ALL_CONC_RULES}
