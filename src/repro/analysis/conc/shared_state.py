"""CONC003 / CONC004 — shared state across awaits, and lock ordering.

* **CONC003** (await-point atomicity): inside an ``async def`` method, a
  read of ``self.X`` followed by an ``await`` followed by a write of
  ``self.X`` — with no lock-shaped ``with``/``async with`` held — is a
  lost-update window: another coroutine of the same object runs at the
  suspension point and the write clobbers its effect.  Positions are
  compared lexically (read < await < write), the same bargain the arch
  purity pass strikes: flow-insensitive, whole-tree, cheap.
* **CONC004** (lock order): every ``with``/``async with`` whose context
  expression looks like a lock (identifier matching lock/mutex/sem)
  contributes acquisition-order edges while lexically nested; two
  functions acquiring the same pair in opposite orders is a deadlock one
  interleaving away.  Lock identity is name-based
  (``module:owner:expr``), so aliasing a lock under two names evades the
  pass — don't.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.arch.callgraph import CallGraph, FunctionInfo
from repro.analysis.arch.imports import ModuleGraph
from repro.analysis.arch.report import ArchFinding
from repro.analysis.conc.helpers import (
    Pos, locate, lockish, method_selfname, pos, self_attr_target)

__all__ = ["check_await_atomicity", "check_lock_order"]


def _module_file(graph: ModuleGraph, fn: FunctionInfo) -> str:
    module = graph.modules.get(fn.module)
    return str(module.path) if module else fn.module


# -- CONC003 -----------------------------------------------------------------

class _AtomicityVisitor(ast.NodeVisitor):
    """Collect unlocked self-attr reads/writes and await positions.

    ``self.X += ...`` reads *and* writes, but flagging it would punish
    the common monotonic-counter idiom that is only racy against an
    await *between* two accesses — so AugAssign targets count as writes
    only, and the read that pairs with a later write must be explicit.
    """

    def __init__(self, selfname: str) -> None:
        self.selfname = selfname
        self.reads: Dict[str, List[Pos]] = {}
        self.writes: Dict[str, List[Pos]] = {}
        self.awaits: List[Pos] = []
        self._locked = 0

    # nested definitions have their own frames (and their own findings)
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def _visit_with(self, node: "ast.With | ast.AsyncWith",
                    is_async: bool) -> None:
        if is_async:
            self.awaits.append(pos(node))
        locked = any(lockish(item.context_expr) for item in node.items)
        for item in node.items:
            self.visit(item)
        if locked:
            self._locked += 1
        for stmt in node.body:
            self.visit(stmt)
        if locked:
            self._locked -= 1

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node, is_async=False)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node, is_async=True)

    def visit_Await(self, node: ast.Await) -> None:
        self.awaits.append(pos(node))
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self.awaits.append(pos(node))
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        attr = self_attr_target(node.target, self.selfname)
        if attr is not None:
            if self._locked == 0:
                self.writes.setdefault(attr, []).append(pos(node))
            self.visit(node.value)
            return
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (isinstance(node.value, ast.Name)
                and node.value.id == self.selfname and self._locked == 0):
            bucket = (self.reads if isinstance(node.ctx, ast.Load)
                      else self.writes)
            bucket.setdefault(node.attr, []).append(pos(node))
        self.generic_visit(node)


def check_await_atomicity(graph: ModuleGraph,
                          cg: CallGraph) -> List[ArchFinding]:
    findings: List[ArchFinding] = []
    for key in sorted(cg.functions):
        fn = cg.functions[key]
        if not isinstance(fn.node, ast.AsyncFunctionDef):
            continue
        selfname = method_selfname(fn)
        if selfname is None:
            continue
        visitor = _AtomicityVisitor(selfname)
        for stmt in fn.node.body:
            visitor.visit(stmt)
        if not visitor.awaits:
            continue
        awaits = sorted(visitor.awaits)
        for attr in sorted(visitor.writes):
            reads = visitor.reads.get(attr)
            if not reads:
                continue
            first_read = min(reads)
            hit: Optional[Tuple[Pos, Pos]] = None
            for write in sorted(visitor.writes[attr]):
                between = [a for a in awaits if first_read < a < write]
                if first_read < write and between:
                    hit = (between[0], write)
                    break
            if hit is None:
                continue
            await_pos, write_pos = hit
            findings.append(ArchFinding(
                file=_module_file(graph, fn), line=write_pos[0],
                code="CONC003",
                message=(
                    f"self.{attr} is read (line {first_read[0]}) before "
                    f"and written (line {write_pos[0]}) after an await "
                    f"(line {await_pos[0]}) in {fn.key} with no lock held; "
                    "an interleaved coroutine's update is lost"),
                witness=(
                    f"{locate(graph, fn, first_read[0])} reads self.{attr}",
                    f"{locate(graph, fn, await_pos[0])} suspends",
                    f"{locate(graph, fn, write_pos[0])} writes self.{attr}",
                ),
            ))
    return findings


# -- CONC004 -----------------------------------------------------------------

class _LockOrderVisitor(ast.NodeVisitor):
    """Record (held, acquired) edges from lexically nested lock withs."""

    def __init__(self, lock_owner: str) -> None:
        self.lock_owner = lock_owner
        self.edges: List[Tuple[str, str, int]] = []
        self._held: List[str] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        acquired: List[str] = []
        for item in node.items:
            self.visit(item)
            if lockish(item.context_expr):
                lock_id = (f"{self.lock_owner}:"
                           f"{ast.unparse(item.context_expr)}")
                for held in self._held:
                    if held != lock_id:
                        self.edges.append((held, lock_id, node.lineno))
                self._held.append(lock_id)
                acquired.append(lock_id)
        for stmt in node.body:
            self.visit(stmt)
        for _ in acquired:
            self._held.pop()

    visit_With = _visit_with
    visit_AsyncWith = _visit_with


def check_lock_order(graph: ModuleGraph, cg: CallGraph) -> List[ArchFinding]:
    # first witness per ordered (held, acquired) pair
    sightings: Dict[Tuple[str, str], Tuple[FunctionInfo, int]] = {}
    for key in sorted(cg.functions):
        fn = cg.functions[key]
        owner = fn.module + ":" + (
            fn.qualname.rsplit(".", 1)[0] if "." in fn.qualname else "")
        visitor = _LockOrderVisitor(owner)
        for stmt in fn.node.body:
            visitor.visit(stmt)
        for held, acquired, line in visitor.edges:
            sightings.setdefault((held, acquired), (fn, line))
    findings: List[ArchFinding] = []
    reported: Set[Tuple[str, str]] = set()
    for (a, b) in sorted(sightings):
        if (b, a) not in sightings or (b, a) in reported:
            continue
        reported.add((a, b))
        fn_ab, line_ab = sightings[(a, b)]
        fn_ba, line_ba = sightings[(b, a)]
        short_a = a.rsplit(":", 1)[-1]
        short_b = b.rsplit(":", 1)[-1]
        findings.append(ArchFinding(
            file=_module_file(graph, fn_ab), line=line_ab, code="CONC004",
            message=(
                f"locks {short_a} and {short_b} are acquired in opposite "
                f"orders ({fn_ab.key} takes {short_a} then {short_b}; "
                f"{fn_ba.key} takes {short_b} then {short_a}); one unlucky "
                "interleaving deadlocks both coroutines"),
            witness=(
                f"{locate(graph, fn_ab, line_ab)} acquires {short_b} "
                f"while holding {short_a}",
                f"{locate(graph, fn_ba, line_ba)} acquires {short_a} "
                f"while holding {short_b}",
            ),
        ))
    return findings
