"""AST lint enforcing the simulator's determinism contract (SAT001–SAT009).

The checks are deliberately repository-specific: they know that simulation
code must read time from the simulated clock, draw randomness from
:class:`repro.sim.rng.RngRegistry` streams, and never let hash-ordered
iteration decide the order in which events are scheduled or labels are
emitted.  See :mod:`repro.analysis.rules` for the catalogue.

Suppression: append ``# noqa`` (all rules) or ``# noqa: SAT003`` /
``# noqa: SAT001, SAT004`` (specific rules) to the offending line.

Use :func:`lint_paths` programmatically, or the CLI::

    python -m repro.analysis src/repro [--json]
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.rules import RULES_BY_CODE

__all__ = ["Finding", "LintReport", "lint_source", "lint_file", "lint_paths"]


# -- what the rules pattern-match on ---------------------------------------

#: wall-clock functions of the ``time`` module (SAT001)
_WALL_CLOCK_TIME_FUNCS = {
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "clock",
}

#: wall-clock constructors of ``datetime`` / ``date`` (SAT001)
_WALL_CLOCK_DATETIME_FUNCS = {"now", "utcnow", "today"}

#: ``random`` module attributes that are *not* global-state draws (SAT002)
_RANDOM_SAFE_ATTRS = {"Random", "SystemRandom"}

#: repo functions/methods known to return sets (SAT003); iterating their
#: result without sorted(...) is hash-order dependent
_SET_RETURNING_NAMES = {
    "interest_of",          # core.serializer
    "replicas",             # core.replication.ReplicationMap
    "replicas_of_group",    # core.replication.ReplicationMap
    "reachable_dcs",        # core.tree.TreeTopology
    "sites",                # sim.network.LatencyModel
}

#: consumers for which iteration order cannot affect the result (SAT003)
_ORDER_INSENSITIVE_CONSUMERS = {
    "sorted", "min", "max", "sum", "any", "all", "len", "set", "frozenset",
}

#: order-preserving materializers: list(a_set) bakes hash order in (SAT003)
_ORDER_PRESERVING_MATERIALIZERS = {"list", "tuple"}

#: identifiers that smell like float timestamps (SAT004)
_TIMESTAMP_NAME_RE = re.compile(
    r"(?:^|_)(?:ts|time|timestamp|now|deadline|arrival|at|watermark|"
    r"visible|created|expiry)(?:_|$)"
)

#: constructors whose call as a default argument is still mutable (SAT005)
_MUTABLE_FACTORIES = {
    "list", "dict", "set", "defaultdict", "deque", "Counter",
    "OrderedDict", "bytearray",
}

#: base classes that make a class an actor for SAT006
_PROCESS_BASE_NAMES = {"Process"}

#: heapq functions that insert an entry (SAT007)
_HEAP_PUSH_FUNCS = {"heappush", "heappushpop"}

#: identifiers accepted as a deterministic tie-breaker in a heap entry's
#: second slot (SAT007): monotonic counters and total, hash-free keys
_TIEBREAK_NAME_RE = re.compile(
    r"(?:^|_)(?:seq|seqno|src|key|keys|id|idx|index|count|counter|tie|"
    r"order|pos|position|name|uid)(?:_|$)"
)

#: wire-message heuristics for SAT008: any dataclass in a module with one
#: of these filenames, or whose class name carries one of these suffixes
_MESSAGE_MODULE_FILENAMES = {"messages.py"}
_MESSAGE_CLASS_SUFFIXES = ("Payload", "Msg")

#: asyncio functions banned outside the kernel seam (SAT009):
#: get_event_loop silently binds an ambient loop, ensure_future drops the
#: strong task reference
_LOOP_MISUSE_FUNCS = {"get_event_loop", "ensure_future"}

#: annotation identifiers that disqualify a field as wire plain data
#: (SAT008): mutable containers, escape-hatch types, callables
_NON_PLAIN_ANNOTATION_NAMES = {
    "list", "dict", "set", "List", "Dict", "Set", "DefaultDict",
    "defaultdict", "OrderedDict", "Counter", "Deque", "deque", "bytearray",
    "MutableMapping", "MutableSequence", "MutableSet",
    "object", "Any", "Callable", "callable",
}

# four-letter codes (ARCHxxx, from repro.analysis.arch) share the noqa
# syntax, so the regex must not split them into a bogus 3-letter match
_NOQA_RE = re.compile(
    r"#\s*noqa\b(?::\s*(?P<codes>[A-Z]{3,4}\d{3}(?:\s*,\s*[A-Z]{3,4}\d{3})*))?",
    re.IGNORECASE,
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    file: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.file}:{self.line}:{self.col + 1} {self.code} {self.message}"


@dataclass
class LintReport:
    """Aggregate result of linting a set of files."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def format_human(self) -> str:
        lines = [finding.format() for finding in self.findings]
        noun = "file" if self.files_checked == 1 else "files"
        lines.append(
            f"{len(self.findings)} finding(s) in {self.files_checked} {noun}")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps({
            "ok": self.ok,
            "files_checked": self.files_checked,
            "findings": [
                {"file": f.file, "line": f.line, "col": f.col,
                 "code": f.code, "message": f.message}
                for f in self.findings
            ],
        }, indent=2)


def _terminal_name(node: ast.expr) -> Optional[str]:
    """Last identifier of a Name / dotted-attribute expression."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_set_producing(node: ast.expr) -> bool:
    """Conservatively: does this expression evaluate to a set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = _terminal_name(func)
        if isinstance(func, ast.Name) and name in {"set", "frozenset"}:
            return True
        if isinstance(func, ast.Attribute) and func.attr == "keys":
            return True
        if name in _SET_RETURNING_NAMES:
            return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
        return _is_set_producing(node.left) or _is_set_producing(node.right)
    return False


def _is_timestampish(node: ast.expr) -> bool:
    name = _terminal_name(node)
    return name is not None and bool(_TIMESTAMP_NAME_RE.search(name))


def _is_float_constant(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


class _Visitor(ast.NodeVisitor):
    """Single-pass collector for all the rules."""

    def __init__(self, filename: str) -> None:
        self.filename = filename
        self.findings: List[Finding] = []
        #: classes considered actors (SAT006), grown to an in-file fixpoint
        self.process_classes: Set[str] = set()
        #: stack of (class-or-None) so methods know their owner
        self._class_stack: List[Optional[str]] = []
        #: stack of parameter-name sets for enclosing *actor methods*
        self._actor_params: List[Tuple[str, Set[str]]] = []
        #: GeneratorExp nodes already blessed by an order-insensitive consumer
        self._safe_generators: Set[int] = set()

    # -- reporting ---------------------------------------------------------

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(Finding(
            file=self.filename,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
        ))

    # -- SAT001 / SAT002: calls and imports --------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._check_wall_clock(node)
        self._check_global_random(node)
        self._check_call_materializes_set(node)
        self._check_heap_push(node)
        self._check_event_loop_misuse(node)
        self._bless_safe_generators(node)
        self.generic_visit(node)

    def _check_event_loop_misuse(self, node: ast.Call) -> None:
        func = node.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "asyncio"
                and func.attr in _LOOP_MISUSE_FUNCS):
            self._report(node, "SAT009",
                         f"asyncio.{func.attr}() outside the kernel seam; "
                         "take the loop from RealtimeKernel "
                         "(kernel.loop / kernel.create_task) or use "
                         "asyncio.get_running_loop() in a coroutine")

    def _check_wall_clock(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        owner = _terminal_name(func.value)
        if owner == "time" and func.attr in _WALL_CLOCK_TIME_FUNCS:
            self._report(node, "SAT001",
                         f"wall-clock call time.{func.attr}(); use the "
                         "simulated clock (Simulator.now / LogicalClock)")
        elif (owner in {"datetime", "date"}
              and func.attr in _WALL_CLOCK_DATETIME_FUNCS):
            if func.attr == "today" and node.args:
                return  # today(tz) on some other object; not the classmethod
            self._report(node, "SAT001",
                         f"wall-clock call {owner}.{func.attr}(); simulation "
                         "code must not read the host clock")

    def _check_global_random(self, node: ast.Call) -> None:
        func = node.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
                and func.attr not in _RANDOM_SAFE_ATTRS):
            self._report(node, "SAT002",
                         f"random.{func.attr}() uses the global RNG; draw "
                         "from a named RngRegistry stream instead")

    def visit_Import(self, node: ast.Import) -> None:
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            bad = [a.name for a in node.names
                   if a.name in _WALL_CLOCK_TIME_FUNCS]
            if bad:
                self._report(node, "SAT001",
                             f"importing wall-clock function(s) "
                             f"{', '.join(bad)} from time")
        elif node.module == "random":
            bad = [a.name for a in node.names
                   if a.name not in _RANDOM_SAFE_ATTRS]
            if bad:
                self._report(node, "SAT002",
                             f"importing {', '.join(bad)} from random binds "
                             "the global RNG; use RngRegistry streams")
        elif node.module == "asyncio":
            bad = [a.name for a in node.names
                   if a.name in _LOOP_MISUSE_FUNCS]
            if bad:
                self._report(node, "SAT009",
                             f"importing {', '.join(bad)} from asyncio; "
                             "loop acquisition belongs to the kernel seam "
                             "(RealtimeKernel)")
        self.generic_visit(node)

    # -- SAT007: heap entries need a deterministic tie-breaker --------------

    @staticmethod
    def _is_deterministic_tiebreak(node: ast.expr) -> bool:
        """Does this expression look like a total, deterministic key?

        Accepted: integer constants, and names / attributes / subscripts
        whose terminal identifier smells like a counter or a label key
        (``seq``, ``src``, ``key[1]``, ...).  Everything else — payload
        objects in particular — falls through to object comparison when
        priorities collide."""
        if isinstance(node, ast.Constant):
            return isinstance(node.value, (int, str)) and not isinstance(
                node.value, bool)
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Call):
            node = node.func
        name = _terminal_name(node)
        return name is not None and bool(_TIEBREAK_NAME_RE.search(name))

    def _check_heap_push(self, node: ast.Call) -> None:
        name = _terminal_name(node.func)
        if name not in _HEAP_PUSH_FUNCS or len(node.args) < 2:
            return
        entry = node.args[1]
        if not isinstance(entry, ast.Tuple):
            self._report(entry, "SAT007",
                         f"{name}() entry is not a tuple literal, so a "
                         "deterministic tie-breaker cannot be verified; "
                         "push (priority, seq, payload)")
            return
        if len(entry.elts) < 2:
            self._report(entry, "SAT007",
                         f"{name}() entry has no tie-breaker: a lone "
                         "priority ties on equal values; push "
                         "(priority, seq, payload)")
            return
        if not self._is_deterministic_tiebreak(entry.elts[1]):
            self._report(entry, "SAT007",
                         f"{name}() entry's second element does not look "
                         "like a deterministic tie-breaker (counter / "
                         "label key); equal priorities will compare the "
                         "payload objects")

    # -- SAT003: hash-ordered iteration ------------------------------------

    def _bless_safe_generators(self, node: ast.Call) -> None:
        """Mark genexp arguments of order-insensitive consumers as safe."""
        name = _terminal_name(node.func)
        if name in _ORDER_INSENSITIVE_CONSUMERS:
            for arg in node.args:
                if isinstance(arg, ast.GeneratorExp):
                    self._safe_generators.add(id(arg))

    def _check_call_materializes_set(self, node: ast.Call) -> None:
        name = _terminal_name(node.func)
        if (isinstance(node.func, ast.Name)
                and name in _ORDER_PRESERVING_MATERIALIZERS
                and node.args and _is_set_producing(node.args[0])):
            self._report(node, "SAT003",
                         f"{name}(...) over a set bakes hash order into a "
                         "sequence; use sorted(...)")

    def visit_For(self, node: ast.For) -> None:
        if _is_set_producing(node.iter):
            self._report(node.iter, "SAT003",
                         "iterating a set in a for-loop is hash-order "
                         "dependent; wrap the iterable in sorted(...)")
        self.generic_visit(node)

    def _check_comprehension(self, node: ast.AST,
                             generators: Sequence[ast.comprehension],
                             ordered_result: bool) -> None:
        for gen in generators:
            if not _is_set_producing(gen.iter):
                continue
            if not ordered_result:
                continue  # building a set/bool: order cannot leak out
            self._report(gen.iter, "SAT003",
                         "comprehension over a set produces a hash-ordered "
                         "sequence; wrap the iterable in sorted(...)")

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node, node.generators, ordered_result=True)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._check_comprehension(node, node.generators, ordered_result=False)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        # dicts remember insertion order, so a dict built from a set leaks
        # hash order to every later iteration of it
        self._check_comprehension(node, node.generators, ordered_result=True)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        ordered = id(node) not in self._safe_generators
        self._check_comprehension(node, node.generators, ordered_result=ordered)
        self.generic_visit(node)

    # -- SAT004: float-timestamp equality ----------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            lts, rts = _is_timestampish(left), _is_timestampish(right)
            lfc, rfc = _is_float_constant(left), _is_float_constant(right)
            if (lts and rts) or (lts and rfc) or (rts and lfc):
                self._report(node, "SAT004",
                             "== / != between float timestamps is brittle; "
                             "compare (ts, src) keys or use <= / >= cuts")
        self.generic_visit(node)

    # -- SAT005: mutable defaults ------------------------------------------

    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set,
                                           ast.ListComp, ast.DictComp,
                                           ast.SetComp))
            if (isinstance(default, ast.Call)
                    and _terminal_name(default.func) in _MUTABLE_FACTORIES):
                mutable = True
            if mutable:
                self._report(default, "SAT005",
                             "mutable default argument is shared across "
                             "calls; default to None and construct inside")

    # -- SAT006: cross-process mutation ------------------------------------

    def _collect_process_classes(self, tree: ast.Module) -> None:
        """In-file fixpoint of 'inherits (transitively) from Process'."""
        class_bases: Dict[str, List[str]] = {}
        for stmt in ast.walk(tree):
            if isinstance(stmt, ast.ClassDef):
                class_bases[stmt.name] = [
                    base for base in
                    (_terminal_name(b) for b in stmt.bases)
                    if base is not None
                ]
        known = set(_PROCESS_BASE_NAMES)
        changed = True
        while changed:
            changed = False
            for name, bases in class_bases.items():
                if name not in known and any(b in known for b in bases):
                    known.add(name)
                    changed = True
        self.process_classes = known - _PROCESS_BASE_NAMES | (
            known & set(class_bases))

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._check_wire_message_class(node)
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    # -- SAT008: wire message dataclasses ----------------------------------

    def _is_wire_message(self, node: ast.ClassDef) -> bool:
        if Path(self.filename).name in _MESSAGE_MODULE_FILENAMES:
            return True
        return node.name.endswith(_MESSAGE_CLASS_SUFFIXES)

    @staticmethod
    def _dataclass_keywords(node: ast.ClassDef) -> Optional[Dict[str, bool]]:
        """``{keyword: value}`` of the @dataclass decorator, or None."""
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            if _terminal_name(target) != "dataclass":
                continue
            keywords: Dict[str, bool] = {}
            if isinstance(deco, ast.Call):
                for kw in deco.keywords:
                    if kw.arg and isinstance(kw.value, ast.Constant):
                        keywords[kw.arg] = bool(kw.value.value)
            return keywords
        return None

    def _non_plain_annotation_name(self,
                                   annotation: ast.expr) -> Optional[str]:
        if (isinstance(annotation, ast.Constant)
                and isinstance(annotation.value, str)):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
        for sub in ast.walk(annotation):
            name = None
            if isinstance(sub, ast.Name):
                name = sub.id
            elif isinstance(sub, ast.Attribute):
                name = sub.attr
            if name in _NON_PLAIN_ANNOTATION_NAMES:
                return name
        return None

    def _check_wire_message_class(self, node: ast.ClassDef) -> None:
        if not self._is_wire_message(node):
            return
        keywords = self._dataclass_keywords(node)
        if keywords is None:
            return  # not a dataclass: plain classes are out of scope
        if not keywords.get("frozen", False):
            self._report(node, "SAT008",
                         f"message dataclass {node.name} is mutable; "
                         "declare @dataclass(frozen=True, slots=True)")
        has_slots = keywords.get("slots", False) or any(
            isinstance(stmt, ast.Assign)
            and any(isinstance(t, ast.Name) and t.id == "__slots__"
                    for t in stmt.targets)
            for stmt in node.body)
        if not has_slots:
            self._report(node, "SAT008",
                         f"message dataclass {node.name} has no __slots__; "
                         "pass slots=True so instances cannot grow ad-hoc "
                         "(unserializable) attributes")
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign) or stmt.annotation is None:
                continue
            bad = self._non_plain_annotation_name(stmt.annotation)
            if bad is not None:
                self._report(stmt, "SAT008",
                             f"message field annotation mentions {bad!r}, "
                             "which is not wire-safe plain data; use "
                             "scalars, tuples, frozensets or value types")

    def _enter_function(self, node) -> bool:
        """Returns True if this function is an actor method to track."""
        self._check_defaults(node)
        owner = self._class_stack[-1] if self._class_stack else None
        if owner in self.process_classes and node.args.args:
            params = {a.arg for a in node.args.args[1:]}
            params.update(a.arg for a in node.args.kwonlyargs)
            if node.args.vararg:
                params.add(node.args.vararg.arg)
            self._actor_params.append((node.args.args[0].arg, params))
            return True
        return False

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        tracked = self._enter_function(node)
        self.generic_visit(node)
        if tracked:
            self._actor_params.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        tracked = self._enter_function(node)
        self.generic_visit(node)
        if tracked:
            self._actor_params.pop()

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def _check_foreign_write(self, target: ast.expr) -> None:
        if not self._actor_params:
            return
        if not isinstance(target, ast.Attribute):
            return
        root = target.value
        while isinstance(root, ast.Attribute):
            root = root.value
        if not isinstance(root, ast.Name):
            return
        selfname, params = self._actor_params[-1]
        if root.id != selfname and root.id in params:
            self._report(target, "SAT006",
                         f"writing {ast.unparse(target) if hasattr(ast, 'unparse') else root.id!r} "
                         "mutates state received from another process; "
                         "communicate via Network.send instead")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_foreign_write(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_foreign_write(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_foreign_write(node.target)
        self.generic_visit(node)


# -- noqa suppression ------------------------------------------------------

def _suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """line -> None (suppress all) or a set of suppressed codes."""
    table: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if not match:
            continue
        codes = match.group("codes")
        if codes is None:
            table[lineno] = None
        else:
            table[lineno] = {c.strip().upper() for c in codes.split(",")}
    return table


# -- entry points ----------------------------------------------------------

#: Pseudo-code for files the linter could not parse.  Not part of the rule
#: catalogue and never filtered by --select/--ignore: an unparseable file
#: must always surface, or a stray syntax error silently shrinks coverage.
PARSE_ERROR_CODE = "SAT000"


def lint_source(source: str, filename: str = "<string>") -> List[Finding]:
    """Lint python *source*; returns findings surviving noqa filtering."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [Finding(file=filename, line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1, code=PARSE_ERROR_CODE,
                        message=f"file could not be parsed: {exc.msg}")]
    visitor = _Visitor(filename)
    visitor._collect_process_classes(tree)
    visitor.visit(tree)
    noqa = _suppressions(source)
    findings = []
    for finding in visitor.findings:
        suppressed = noqa.get(finding.line, ...)
        if suppressed is None:
            continue
        if suppressed is not ... and finding.code in suppressed:
            continue
        findings.append(finding)
    findings.sort(key=lambda f: (f.file, f.line, f.col, f.code))
    return findings


def lint_file(path: Path) -> List[Finding]:
    return lint_source(path.read_text(encoding="utf-8"), str(path))


def _python_files(paths: Iterable[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def lint_paths(paths: Sequence, select: Optional[Set[str]] = None,
               ignore: Optional[Set[str]] = None) -> LintReport:
    """Lint every ``.py`` file under *paths* (files or directories)."""
    report = LintReport()
    unknown = (select or set()) | (ignore or set())
    unknown -= set(RULES_BY_CODE)
    if unknown:
        raise ValueError(f"unknown rule code(s): {sorted(unknown)}")
    for path in _python_files([Path(p) for p in paths]):
        report.files_checked += 1
        for finding in lint_file(path):
            if finding.code != PARSE_ERROR_CODE:
                if select is not None and finding.code not in select:
                    continue
                if ignore is not None and finding.code in ignore:
                    continue
            report.findings.append(finding)
    return report
