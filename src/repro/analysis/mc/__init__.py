"""Schedule-space model checker for the Saturn simulator.

The deterministic kernel executes exactly one schedule per seed; this
package drives it through *many*.  A :class:`~repro.analysis.mc.controller.
ScheduleController` hooks into :class:`repro.sim.engine.Simulator` (choice
among same-instant ready events) and :class:`repro.sim.network.Network`
(bounded link-delay perturbation), a strategy decides each choice point,
and a suite of invariant oracles checks every explored execution:

* per-link FIFO discipline and the delivery-trace digest
  (:class:`repro.analysis.runtime.HazardMonitor`);
* causal visibility order and session monotonicity
  (:class:`repro.verify.ExecutionLog`);
* genuine partial replication — a label must never traverse a tree
  branch with no interested datacenter (new oracle);
* completeness — no update label may be lost (every update becomes
  visible at every datacenter replicating its key).

Failing schedules are delta-debugged down to a minimal decision list and
serialized as a replayable JSON counterexample whose schedule hash
``python -m repro.analysis.mc --replay`` reproduces bit-identically.

See :mod:`repro.analysis.mc.__main__` for the CLI and ``DESIGN.md``
(“Schedule-space model checker”) for the schedule semantics.
"""

from repro.analysis.mc.checker import ModelChecker, RunOutcome, SweepResult
from repro.analysis.mc.controller import ScheduleController
from repro.analysis.mc.scenario import SCENARIOS, MUTATIONS, build_scenario
from repro.analysis.mc.shrink import Counterexample, shrink_decisions
from repro.analysis.mc.strategies import (DelayInjectionStrategy,
                                          ExhaustiveStrategy, FifoStrategy,
                                          PctStrategy)

__all__ = [
    "ModelChecker", "RunOutcome", "SweepResult", "ScheduleController",
    "SCENARIOS", "MUTATIONS", "build_scenario", "Counterexample",
    "shrink_decisions", "FifoStrategy", "ExhaustiveStrategy", "PctStrategy",
    "DelayInjectionStrategy",
]
