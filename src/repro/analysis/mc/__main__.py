"""CLI for the schedule-space model checker.

Exit codes: ``0`` — no violation found (or a counterexample replayed
bit-identically); ``2`` — a counterexample was found (sweeps) or failed to
reproduce (replay); ``1`` — usage or internal error.

Examples::

    # exhaustively permute the first 4 same-time ties of the 3-DC chain
    python -m repro.analysis.mc --scenario chain3 --strategy exhaustive --depth 4

    # 50 randomized priority schedules, fixed seed
    python -m repro.analysis.mc --scenario chain3 --strategy pct --budget 50 --seed 7

    # prove the checker catches a seeded bug, write the shrunk witness
    python -m repro.analysis.mc --scenario chain3 --strategy fifo \\
        --mutate drop-fifo --out ce.json

    # replay a counterexample twice and check it is bit-identical
    python -m repro.analysis.mc --replay ce.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.analysis.mc.checker import ModelChecker, SweepResult
from repro.analysis.mc.scenario import MUTATIONS, SCENARIOS
from repro.analysis.mc.shrink import Counterexample
from repro.analysis.mc.strategies import FifoStrategy

EXIT_OK = 0
EXIT_ERROR = 1
EXIT_COUNTEREXAMPLE = 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.mc",
        description="Schedule-space model checker for the Saturn simulator")
    parser.add_argument("--scenario", default="chain3",
                        help="scenario name (see --list)")
    parser.add_argument("--strategy", default="exhaustive",
                        choices=("fifo", "exhaustive", "pct", "delay"),
                        help="exploration strategy")
    parser.add_argument("--mutate", default=None, metavar="MUTATION",
                        help="inject a known protocol bug (self-test mode; "
                             "see --list); a found counterexample is the "
                             "expected outcome")
    parser.add_argument("--depth", type=int, default=4,
                        help="exhaustive: tie choice points to permute")
    parser.add_argument("--budget", type=int, default=50,
                        help="pct/delay: schedules to run; exhaustive: "
                             "cap on total runs")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed for randomized strategies")
    parser.add_argument("--delay-bound", type=float, default=3.0,
                        help="delay: max injected per-send delay (ms)")
    parser.add_argument("--change-points", type=int, default=3,
                        help="pct: number of priority-change points")
    parser.add_argument("--stop-on-first", action="store_true",
                        help="stop a sweep at the first counterexample")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the shrunk counterexample JSON here")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="re-run the shrunk counterexample with "
                             "label-lifecycle tracing (repro.obs) and "
                             "write the JSONL export here")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable summary on stdout")
    parser.add_argument("--replay", default=None, metavar="CE_JSON",
                        help="replay a counterexample file twice and check "
                             "both runs are bit-identical")
    parser.add_argument("--list", action="store_true", dest="list_only",
                        help="list scenarios and mutations, then exit")
    return parser


def _print_listing() -> None:
    print("scenarios:")
    for name in sorted(SCENARIOS):
        print(f"  {name}")
    print("mutations (self-test bugs):")
    for name in sorted(MUTATIONS):
        print(f"  {name}")


def _run_sweep(args: argparse.Namespace,
               checker: ModelChecker) -> SweepResult:
    if args.strategy == "fifo":
        outcome = checker.run_once(FifoStrategy())
        result = SweepResult(mode="fifo", runs=1)
        result.digests.add(outcome.digest)
        if outcome.violations:
            result.counterexamples.append(outcome)
        return result
    if args.strategy == "exhaustive":
        return checker.sweep_exhaustive(depth=args.depth,
                                        max_runs=args.budget,
                                        stop_on_first=args.stop_on_first)
    if args.strategy == "pct":
        return checker.sweep_pct(budget=args.budget, seed=args.seed,
                                 change_points=args.change_points,
                                 stop_on_first=args.stop_on_first)
    return checker.sweep_delay(budget=args.budget, seed=args.seed,
                               bound=args.delay_bound,
                               stop_on_first=args.stop_on_first)


def _export_counterexample_trace(checker: ModelChecker, ce: Counterexample,
                                 path: str) -> str:
    """Replay the shrunk counterexample with label-lifecycle tracing and
    write the JSONL export; returns its digest."""
    from repro.analysis.mc.controller import DELAY
    from repro.obs import attach_tracer

    hubs: list = []
    checker.run_once(
        FifoStrategy(), script=ce.decisions,
        use_delays=any(d[0] == DELAY for d in ce.decisions),
        instrument=lambda scenario: hubs.append(attach_tracer(scenario)))
    meta = {"scenario": ce.scenario, "mutation": ce.mutation,
            "schedule_hash": ce.schedule_hash}
    exported = hubs[0].export_jsonl(meta=meta)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(exported)
    return hubs[0].digest(meta=meta)


def _emit(args: argparse.Namespace, payload: dict, text: str) -> None:
    if args.as_json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(text)


def _replay(args: argparse.Namespace) -> int:
    try:
        with open(args.replay, "r", encoding="utf-8") as handle:
            ce = Counterexample.from_json(handle.read())
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot load counterexample: {exc}", file=sys.stderr)
        return EXIT_ERROR
    checker = ModelChecker(ce.scenario, mutation=ce.mutation)
    first = checker.replay(ce.decisions)
    second = checker.replay(ce.decisions)
    deterministic = first.digest == second.digest
    reproduced = (deterministic
                  and bool(first.violations) == bool(ce.violations)
                  and (ce.digest == "" or first.digest == ce.digest))
    payload = {
        "mode": "replay",
        "scenario": ce.scenario,
        "mutation": ce.mutation,
        "schedule_hash": ce.schedule_hash,
        "stored_digest": ce.digest,
        "replay_digest_1": first.digest,
        "replay_digest_2": second.digest,
        "deterministic": deterministic,
        "reproduced": reproduced,
        "violations": first.violations,
    }
    lines = [
        f"replayed {args.replay} twice "
        f"(schedule hash {ce.schedule_hash[:16]}...):",
        f"  digest run 1 : {first.digest}",
        f"  digest run 2 : {second.digest}",
        f"  deterministic: {'yes' if deterministic else 'NO'}",
        f"  violations   : {len(first.violations)} "
        f"(stored: {len(ce.violations)})",
    ]
    lines.extend(f"    - {violation}" for violation in first.violations[:10])
    _emit(args, payload, "\n".join(lines))
    return EXIT_OK if reproduced else EXIT_COUNTEREXAMPLE


def main(argv: Optional[list] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_only:
        _print_listing()
        return EXIT_OK
    if args.replay is not None:
        return _replay(args)

    try:
        checker = ModelChecker(args.scenario, mutation=args.mutate)
        result = _run_sweep(args, checker)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    payload = {
        "mode": result.mode,
        "scenario": args.scenario,
        "mutation": args.mutate,
        "runs": result.runs,
        "distinct_executions": len(result.digests),
        "counterexamples": len(result.counterexamples),
        "truncated": result.truncated,
    }
    if result.ok:
        _emit(args, payload, result.summary())
        return EXIT_OK

    ce = checker.shrink(result.counterexamples[0])
    payload["counterexample"] = json.loads(ce.to_json())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(ce.to_json() + "\n")
    if args.trace_out:
        payload["trace_out"] = args.trace_out
        payload["trace_digest"] = _export_counterexample_trace(
            checker, ce, args.trace_out)
    text = "\n".join([
        result.summary(),
        "",
        "minimal counterexample:",
        ce.summary(),
    ] + ([f"written to {args.out}"] if args.out else [])
      + ([f"trace written to {args.trace_out}"] if args.trace_out else []))
    _emit(args, payload, text)
    return EXIT_COUNTEREXAMPLE


if __name__ == "__main__":
    sys.exit(main())
