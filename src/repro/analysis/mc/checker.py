"""Model-checker driver: sweeps, replay, and shrinking.

:class:`ModelChecker` binds one (scenario, mutation) pair and runs it
under many schedules.  Every run builds a *fresh* scenario — the build is
deterministic, so two runs with the same decision script are bit-identical
(same delivery-trace digest), which is what makes recorded decision lists
replayable counterexamples.

Three sweep modes:

* :meth:`sweep_exhaustive` — stateless depth-first enumeration of every
  tie-permutation of the first ``depth`` choice points.  Each run explores
  the all-FIFO extension of its forced prefix; the recorded branching
  factors then seed the sibling prefixes.  Every schedule in the truncated
  tree is visited exactly once.
* :meth:`sweep_pct` — ``budget`` independent PCT-style randomized priority
  runs (seeds ``seed, seed+1, ...``).
* :meth:`sweep_delay` — ``budget`` runs with random bounded delay
  injection on the scenario's serializer tree links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.analysis.mc.controller import (DELAY, FAULT, ScheduleController,
                                          TIE, decisions_hash)
from repro.analysis.mc.oracles import evaluate_oracles
from repro.analysis.mc.scenario import build_scenario
from repro.analysis.mc.shrink import Counterexample, shrink_decisions
from repro.analysis.mc.strategies import (DelayInjectionStrategy,
                                          ExhaustiveStrategy, FifoStrategy,
                                          PctStrategy)

__all__ = ["ModelChecker", "RunOutcome", "SweepResult"]


@dataclass
class RunOutcome:
    """One explored schedule and what the oracles said about it."""

    scenario: str
    mutation: Optional[str]
    decisions: List[list]
    violations: List[str]
    digest: str
    seed: Optional[int] = None
    strategy: str = "fifo"

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def schedule_hash(self) -> str:
        return decisions_hash(self.scenario, self.mutation, self.decisions)


@dataclass
class SweepResult:
    """Aggregate of one sweep."""

    mode: str
    runs: int = 0
    counterexamples: List[RunOutcome] = field(default_factory=list)
    #: True when a budget cap stopped the sweep before the space was done
    truncated: bool = False
    digests: set = field(default_factory=set)

    @property
    def ok(self) -> bool:
        return not self.counterexamples

    def summary(self) -> str:
        status = "OK" if self.ok else "FAIL"
        line = (f"[{self.mode}] {status}: {self.runs} schedules explored, "
                f"{len(self.digests)} distinct executions, "
                f"{len(self.counterexamples)} counterexample(s)")
        if self.truncated:
            line += " (budget exhausted before the space was covered)"
        return line


class ModelChecker:
    """Explore the schedule space of one scenario (optionally mutated)."""

    def __init__(self, scenario: str, mutation: Optional[str] = None) -> None:
        self.scenario = scenario
        self.mutation = mutation

    # ------------------------------------------------------------------
    # single runs
    # ------------------------------------------------------------------

    def run_once(self, strategy, script: Optional[Sequence[list]] = None,
                 use_delays: bool = False,
                 instrument: Optional[Callable[[object], None]] = None
                 ) -> RunOutcome:
        """Build a fresh scenario and run it once under *strategy*.

        ``script`` forces a decision prefix (replay / DFS); ``use_delays``
        turns the scenario's tree links into delay decision points (off by
        default so tie-only decision traces stay aligned across runs).
        ``instrument`` is called with the built scenario before the
        controller is installed (e.g. ``repro.obs.attach_tracer`` so a
        counterexample replay comes with a label-lifecycle trace).
        """
        scenario = build_scenario(self.scenario, self.mutation)
        if instrument is not None:
            instrument(scenario)
        controller = ScheduleController(
            strategy, script=script,
            delay_links=scenario.delay_links if use_delays else None)
        controller.install(scenario.sim, scenario.network)
        if scenario.injector is not None:
            # fault timing (FaultAction.at_choices) becomes a schedulable
            # decision, recorded/replayed like ties
            scenario.injector.chooser = controller
        scenario.run()
        return RunOutcome(
            scenario=self.scenario, mutation=self.mutation,
            decisions=[list(d) for d in controller.trace],
            violations=evaluate_oracles(scenario),
            digest=scenario.digest(),
            strategy=getattr(strategy, "name", "unknown"))

    def replay(self, decisions: Sequence[list]) -> RunOutcome:
        """Re-run a recorded decision list (FIFO beyond its end)."""
        uses_delays = any(d[0] == DELAY for d in decisions)
        return self.run_once(FifoStrategy(), script=decisions,
                             use_delays=uses_delays)

    # ------------------------------------------------------------------
    # sweeps
    # ------------------------------------------------------------------

    def sweep_exhaustive(self, depth: int = 4,
                         max_runs: Optional[int] = None,
                         stop_on_first: bool = False) -> SweepResult:
        result = SweepResult(mode=f"exhaustive depth={depth}")
        stack: List[List[list]] = [[]]
        while stack:
            if max_runs is not None and result.runs >= max_runs:
                result.truncated = True
                break
            prefix = stack.pop()
            outcome = self.run_once(ExhaustiveStrategy(), script=prefix)
            result.runs += 1
            result.digests.add(outcome.digest)
            if outcome.violations:
                result.counterexamples.append(outcome)
                if stop_on_first:
                    result.truncated = bool(stack)
                    break
            # every tie/fault point at position >= len(prefix) ran its
            # default branch in this very run; push the sibling branches
            # (choices 1..k-1), splicing in the executed decisions before
            # that position
            trace = outcome.decisions
            for position in range(len(prefix), min(depth, len(trace))):
                decision = trace[position]
                if decision[0] not in (TIE, FAULT):
                    continue
                k = decision[1]
                for choice in range(1, k):
                    stack.append(
                        [list(d) for d in trace[:position]]
                        + [[decision[0], k, choice]])
        return result

    def sweep_pct(self, budget: int = 50, seed: int = 0,
                  change_points: int = 3,
                  stop_on_first: bool = False) -> SweepResult:
        result = SweepResult(mode=f"pct budget={budget} seed={seed}")
        for index in range(budget):
            run_seed = seed + index
            outcome = self.run_once(
                PctStrategy(run_seed, change_points=change_points))
            outcome.seed = run_seed
            result.runs += 1
            result.digests.add(outcome.digest)
            if outcome.violations:
                result.counterexamples.append(outcome)
                if stop_on_first:
                    result.truncated = index + 1 < budget
                    break
        return result

    def sweep_delay(self, budget: int = 50, seed: int = 0,
                    bound: float = 3.0, injection_rate: float = 0.25,
                    stop_on_first: bool = False) -> SweepResult:
        result = SweepResult(mode=f"delay budget={budget} seed={seed} "
                                  f"bound={bound}")
        for index in range(budget):
            run_seed = seed + index
            outcome = self.run_once(
                DelayInjectionStrategy(run_seed, bound=bound,
                                       injection_rate=injection_rate),
                use_delays=True)
            outcome.seed = run_seed
            result.runs += 1
            result.digests.add(outcome.digest)
            if outcome.violations:
                result.counterexamples.append(outcome)
                if stop_on_first:
                    result.truncated = index + 1 < budget
                    break
        return result

    # ------------------------------------------------------------------
    # shrinking
    # ------------------------------------------------------------------

    def shrink(self, outcome: RunOutcome) -> Counterexample:
        """ddmin a failing run down to a minimal replayable counterexample.

        Falls back to the unshrunk decisions if the failure turns out not
        to reproduce under replay (which would itself be a determinism bug
        worth keeping the evidence for).
        """
        uses_delays = any(d[0] == DELAY for d in outcome.decisions)

        def test(candidate: List[list]) -> Optional[List[str]]:
            replayed = self.run_once(FifoStrategy(), script=candidate,
                                     use_delays=uses_delays)
            return replayed.violations or None

        shrunk = shrink_decisions(outcome.decisions, test)
        if shrunk is None:
            return Counterexample(
                scenario=self.scenario, mutation=self.mutation,
                strategy=outcome.strategy, decisions=outcome.decisions,
                violations=outcome.violations, digest=outcome.digest,
                seed=outcome.seed, shrunk=False,
                original_decision_count=len(outcome.decisions))
        decisions, _ = shrunk
        # one clean replay of the minimal script gives the canonical
        # violations and digest to serialize (but the stored schedule is
        # the minimal *script*, not the replay's full decision trace)
        final = self.run_once(FifoStrategy(), script=decisions,
                              use_delays=uses_delays)
        return Counterexample(
            scenario=self.scenario, mutation=self.mutation,
            strategy=outcome.strategy, decisions=decisions,
            violations=final.violations, digest=final.digest,
            seed=outcome.seed, shrunk=True,
            original_decision_count=len(outcome.decisions))
