"""Schedule controller: the bridge between the kernel and a strategy.

A :class:`ScheduleController` implements the two hooks the substrates
expose — :attr:`repro.sim.engine.Simulator.controller` (``on_schedule`` /
``choose``) and :attr:`repro.sim.network.Network.perturb` — and records
every decision it makes as a flat list, in occurrence order:

* ``["tie", k, choice]`` — *k* live events shared the minimal instant and
  the event at index *choice* (in ``(time, seq)`` order) ran next;
* ``["delay", value]`` — a message send on a targeted link was delayed by
  *value* extra milliseconds (bounded by the strategy);
* ``["fault", k, choice]`` — a fault action with *k* candidate instants
  (``FaultAction.at_choices``) fired at candidate index *choice*.  Fault
  decisions are resolved when the plan is applied, before the kernel
  starts, so they form a stable prefix of the trace.

The recorded list *is* the schedule: the scenario build is deterministic,
so replaying the same decisions reproduces the execution bit-identically.
A controller is constructed with an optional ``script`` (decisions to
force, consumed in order); once the script is exhausted the strategy
answers.  The all-default schedule — empty script with the FIFO strategy —
is identical to an uncontrolled run.
"""

from __future__ import annotations

import hashlib
import json
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.sim.engine import Event, Simulator
from repro.sim.network import Network

__all__ = ["ScheduleController", "decisions_hash", "nondefault_count"]

#: decision kinds (list-encoded for JSON friendliness)
TIE = "tie"
DELAY = "delay"
FAULT = "fault"


def decisions_hash(scenario: str, mutation: Optional[str],
                   decisions: Sequence[list]) -> str:
    """Stable SHA-256 over (scenario, mutation, decision list)."""
    payload = json.dumps(
        {"scenario": scenario, "mutation": mutation,
         "decisions": [list(d) for d in decisions]},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def nondefault_count(decisions: Sequence[list]) -> int:
    """Number of decisions that deviate from the FIFO/no-delay default."""
    count = 0
    for decision in decisions:
        if decision[0] in (TIE, FAULT) and decision[2] != 0:
            count += 1
        elif decision[0] == DELAY and decision[1] != 0.0:
            count += 1
    return count


class ScheduleController:
    """Records (and optionally forces) one run's schedule decisions."""

    def __init__(self, strategy, script: Optional[Sequence[list]] = None,
                 delay_links: Optional[FrozenSet[Tuple[str, str]]] = None) -> None:
        self.strategy = strategy
        self.script: List[list] = [list(d) for d in (script or [])]
        self._cursor = 0
        #: directed (src process, dst process) pairs whose sends are
        #: perturbation decision points; empty set = no delay decisions
        self.delay_links = delay_links or frozenset()
        #: decisions actually taken this run, in occurrence order
        self.trace: List[list] = []

    # -- installation ------------------------------------------------------

    def install(self, sim: Simulator, network: Optional[Network] = None) -> None:
        if sim.controller is not None:
            raise RuntimeError("simulator already has a controller attached")
        sim.controller = self
        if network is not None and self.delay_links:
            if network.perturb is not None:
                raise RuntimeError("network already has a perturbation hook")
            network.perturb = self._perturb

    # -- scripted-decision consumption -------------------------------------

    def _next_scripted(self, kind: str):
        """Next scripted value for *kind*, or None once off-script.

        Decisions are consumed strictly in order; a kind mismatch means the
        prefix diverged (normal during shrinking — a zeroed-out early
        decision changes every later choice point), so the rest of the
        script is abandoned and the strategy takes over.
        """
        if self._cursor >= len(self.script):
            return None
        decision = self.script[self._cursor]
        if decision[0] != kind:
            self._cursor = len(self.script)
            return None
        self._cursor += 1
        return decision[1] if kind == DELAY else decision[2]

    # -- Simulator controller protocol -------------------------------------

    def on_schedule(self, event: Event) -> None:
        self.strategy.on_schedule(event)

    def choose(self, time: float, events: List[Event]) -> int:
        k = len(events)
        choice = self._next_scripted(TIE)
        if choice is None:
            choice = self.strategy.choose_tie(time, events)
        if not 0 <= choice < k:
            # a shrunken/foreign script can name a branch that no longer
            # exists; fall back to FIFO instead of crashing the replay
            choice = 0
        self.trace.append([TIE, k, choice])
        return choice

    # -- FaultInjector chooser protocol --------------------------------------

    def choose_fault(self, name: str, k: int) -> int:
        """Pick among *k* candidate fire instants for fault point *name*."""
        choice = self._next_scripted(FAULT)
        if choice is None:
            choice = self.strategy.choose_fault(name, k)
        if not 0 <= choice < k:
            choice = 0
        self.trace.append([FAULT, k, choice])
        return choice

    # -- Network perturbation protocol --------------------------------------

    def _perturb(self, src: str, dst: str) -> float:
        if (src, dst) not in self.delay_links:
            return 0.0
        value = self._next_scripted(DELAY)
        if value is None:
            value = self.strategy.choose_delay(src, dst)
        value = max(0.0, float(value))
        self.trace.append([DELAY, value])
        return value
