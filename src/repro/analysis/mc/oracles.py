"""Invariant oracles evaluated on every explored schedule.

Each oracle returns a list of human-readable violation strings; an empty
list from every oracle means the schedule is a witness that the invariants
held on that interleaving.  The FIFO/digest and causality oracles reuse
the existing checkers (:class:`repro.analysis.runtime.HazardMonitor`,
:class:`repro.verify.ExecutionLog`); the genuine-partial-replication
oracle is new: it watches serializer-to-serializer traffic through the
network trace and flags any label entering a tree branch with no
interested datacenter (which would leak metadata the paper's §2 promises
never leaves the interested sub-tree).
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.baselines.base import BaselinePayload
from repro.baselines.eunomia import EunomiaBatch
from repro.core.label import LabelType
from repro.core.serializer import interest_of
from repro.datacenter.messages import LabelBatch

__all__ = ["TraceTee", "PartialReplicationOracle",
           "BaselineReplicationOracle", "evaluate_oracles"]


class TraceTee:
    """Fan one network trace slot out to several consumers.

    :attr:`repro.sim.network.Network.trace` holds a single object; the
    model checker needs both the :class:`HazardMonitor` (FIFO audit +
    digest) and the partial-replication oracle watching the same stream.
    The first trace is primary: its ``on_send`` sequence numbers are the
    ones the network sees.
    """

    def __init__(self, *traces: Any) -> None:
        if not traces:
            raise ValueError("TraceTee needs at least one trace")
        self.traces = traces

    def on_send(self, src: str, dst: str, message: Any, arrival: float) -> int:
        seq = self.traces[0].on_send(src, dst, message, arrival)
        for trace in self.traces[1:]:
            trace.on_send(src, dst, message, arrival)
        return seq

    def on_deliver(self, src: str, dst: str, seq: int, message: Any) -> None:
        for trace in self.traces:
            trace.on_deliver(src, dst, seq, message)

    def on_drop(self, src: str, dst: str, message: Any) -> None:
        for trace in self.traces:
            trace.on_drop(src, dst, message)


def _serializer_coords(process_name: str) -> Optional[Tuple[int, str]]:
    """``"ser:e{epoch}:{tree_name}"`` -> (epoch, tree_name), else None."""
    if not process_name.startswith("ser:e"):
        return None
    parts = process_name.split(":", 2)
    if len(parts) != 3:
        return None
    try:
        return int(parts[1][1:]), parts[2]
    except ValueError:
        return None


class PartialReplicationOracle:
    """Genuine partial replication: no label down an uninterested branch.

    Implements the network trace protocol (installed through a
    :class:`TraceTee`).  Two checks on every delivered label batch:

    * serializer -> serializer: the label's interest set must intersect
      the set of datacenters reachable through that edge of the epoch's
      tree (otherwise the serializer leaked it into a dead branch);
    * serializer -> datacenter: the receiving datacenter must be in the
      label's interest set (origin excluded — a label never returns home).
    """

    def __init__(self, service, replication) -> None:
        self.service = service
        self.replication = replication
        self.violations: List[str] = []

    # -- network trace protocol (via TraceTee) ------------------------------

    def on_send(self, src: str, dst: str, message: Any, arrival: float) -> None:
        return None

    def on_drop(self, src: str, dst: str, message: Any) -> None:
        return None

    def on_deliver(self, src: str, dst: str, seq: int, message: Any) -> None:
        if not isinstance(message, LabelBatch):
            return
        src_coords = _serializer_coords(src)
        if src_coords is None:
            return  # sink -> serializer ingress: origin side, always legal
        if dst.startswith("dc:"):
            self._check_dc_delivery(src, dst[len("dc:"):], message)
        else:
            dst_coords = _serializer_coords(dst)
            if dst_coords is not None:
                self._check_tree_edge(src_coords, dst_coords, src, dst, message)

    # -- checks -------------------------------------------------------------

    def _check_dc_delivery(self, src: str, dc_name: str,
                           batch: LabelBatch) -> None:
        for label in batch.labels:
            if label.origin_dc == dc_name:
                self.violations.append(
                    f"label {label!r} delivered back to its origin "
                    f"datacenter {dc_name} by {src}")
                continue
            interested = interest_of(label, self.replication)
            if dc_name not in interested:
                self.violations.append(
                    f"label {label!r} delivered to uninterested datacenter "
                    f"{dc_name} by {src}")

    def _check_tree_edge(self, src_coords: Tuple[int, str],
                         dst_coords: Tuple[int, str], src: str, dst: str,
                         batch: LabelBatch) -> None:
        epoch, src_name = src_coords
        _, dst_name = dst_coords
        try:
            topology = self.service.topology(epoch)
            reachable = topology.reachable_dcs(src_name, dst_name)
        except KeyError:
            self.violations.append(
                f"label batch on unknown tree edge {src} -> {dst}")
            return
        for label in batch.labels:
            interested = interest_of(label, self.replication)
            if not interested & reachable:
                self.violations.append(
                    f"label {label!r} traversed branch {src_name} -> "
                    f"{dst_name} (epoch {epoch}) with no interested "
                    f"datacenter (interest={sorted(interested)}, "
                    f"branch={sorted(reachable)})")


class BaselineReplicationOracle:
    """Partial-replication oracle for the stabilization baselines.

    The baselines have no serializer tree — replication is point-to-point
    (GentleRain/Cure/Okapi) or fanned out by a per-site sequencer
    (Eunomia) — so the only routing promise to audit is the destination
    set: a replicated update may reach exactly the datacenters that
    replicate its key, and never its own origin.  Duck-types
    :class:`PartialReplicationOracle` (``violations`` + the network trace
    protocol) so :func:`evaluate_oracles` and :class:`TraceTee` work
    unchanged on baseline scenarios.
    """

    def __init__(self, replication) -> None:
        self.replication = replication
        self.violations: List[str] = []

    # -- network trace protocol (via TraceTee) ------------------------------

    def on_send(self, src: str, dst: str, message: Any, arrival: float) -> None:
        return None

    def on_drop(self, src: str, dst: str, message: Any) -> None:
        return None

    def on_deliver(self, src: str, dst: str, seq: int, message: Any) -> None:
        if not dst.startswith("dc:"):
            return  # datacenter -> sequencer ingress: origin side, legal
        if isinstance(message, BaselinePayload):
            payloads = (message,)
        elif isinstance(message, EunomiaBatch):
            payloads = message.payloads
        else:
            return
        dc_name = dst[len("dc:"):]
        for payload in payloads:
            if payload.label.origin_dc == dc_name:
                self.violations.append(
                    f"payload {payload.label!r} delivered back to its "
                    f"origin datacenter {dc_name} by {src}")
                continue
            if dc_name not in self.replication.replicas(payload.key):
                self.violations.append(
                    f"payload for key {payload.key!r} delivered to "
                    f"non-replica datacenter {dc_name} by {src}")


def evaluate_oracles(scenario) -> List[str]:
    """Run every oracle against a finished scenario run.

    Returns violation strings prefixed with the oracle name, most specific
    first.  ``scenario`` is a built-and-run
    :class:`repro.analysis.mc.scenario.Scenario`.
    """
    violations: List[str] = []

    report = scenario.monitor.report()
    for item in report.fifo_violations:
        violations.append(f"fifo: {item.describe()}")

    for item in scenario.monitor.crosscheck(scenario.log):
        violations.append(f"causality: {item}")

    violations.extend(
        f"partial-replication: {item}"
        for item in scenario.partial_oracle.violations)

    for item in scenario.log.check_completeness():
        violations.append(f"completeness: {item.detail} (at {item.dc})")

    # a scenario that did no work proves nothing: guard against a schedule
    # (or a bad mutation) silently starving the clients
    updates = sum(1 for record in scenario.log.updates.values()
                  if record.key and record.origin)
    if updates < scenario.min_expected_updates:
        violations.append(
            f"liveness: only {updates} updates recorded, expected at least "
            f"{scenario.min_expected_updates}")
    return violations
