"""Model-checking scenarios: small, fully deterministic deployments.

A scenario is a hand-wired 3-datacenter Saturn cluster (chain serializer
tree I — F — T, one group fully replicated and one genuinely partial)
driven by *scripted* clients that build real causal chains across
datacenters:

* ``writer-I`` writes ``g0:a`` then ``g0:b`` (b depends on a) and the
  partial-group key ``g1:p`` (replicated at I and F only — the bait for
  the routing oracle);
* ``relay-F`` polls ``g0:b`` until it is visible, then writes ``g0:y``
  (y depends on b across datacenters);
* ``reader-T`` polls ``g0:y``, then re-reads ``g0:a`` (session checks).

Everything is deterministic given the schedule decisions, so a recorded
decision list replays bit-identically.  The reconfiguration scenarios
additionally swap the tree mid-run (fast path / failure path) while the
above labels are in flight.

``MUTATIONS`` are deliberate protocol bugs injected into one serializer —
the checker's self-test: a healthy checker must catch every one of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.mc.oracles import (BaselineReplicationOracle,
                                       PartialReplicationOracle, TraceTee)
from repro.analysis.runtime import HazardMonitor
from repro.baselines import (CureDatacenter, EunomiaDatacenter,
                             GentleRainDatacenter, OkapiDatacenter,
                             cure_merge, eunomia_merge, gentlerain_merge)
from repro.core.failover import AutoFailover
from repro.core.label import LabelType
from repro.core.reconfig import ReconfigurationManager
from repro.core.replication import ReplicationMap
from repro.core.service import SaturnService
from repro.core.tree import TreeTopology
from repro.datacenter.client import ClientProcess
from repro.datacenter.datacenter import DatacenterParams, SaturnDatacenter
from repro.datacenter.messages import LabelBatch
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultAction, FaultPlan
from repro.harness.runner import MetricsHub
from repro.sim.clock import ClockFactory
from repro.sim.cpu import CostModel
from repro.sim.engine import Simulator
from repro.sim.network import LatencyModel, Network
from repro.sim.rng import RngRegistry
from repro.verify.checker import ExecutionLog
from repro.workloads.ops import ReadOp, UpdateOp

__all__ = ["Scenario", "SCENARIOS", "MUTATIONS", "build_scenario",
           "build_chain3", "build_baseline_chain3"]

SITES = ("I", "F", "T")

#: keys used by the scripted workload
KEY_A, KEY_B, KEY_Y, KEY_P = "g0:a", "g0:b", "g0:y", "g1:p"
#: written while the writer's datacenter is degraded (fault scenarios)
KEY_C = "g0:c"


@dataclass
class Scenario:
    """A built (not yet run) model-checking deployment."""

    name: str
    sim: Simulator
    network: Network
    replication: ReplicationMap
    #: None for baseline scenarios (no serializer tree to check)
    service: Optional[SaturnService]
    #: SaturnDatacenter, or a StabilizedDatacenter subclass for baselines
    datacenters: Dict[str, object]
    clients: List[ClientProcess]
    log: ExecutionLog
    monitor: HazardMonitor
    #: PartialReplicationOracle, or BaselineReplicationOracle for baselines
    partial_oracle: object
    horizon: float
    #: directed process-name pairs eligible for delay perturbation
    delay_links: FrozenSet[Tuple[str, str]]
    #: liveness floor: fewer recorded updates means the schedule starved
    min_expected_updates: int = 4
    manager: Optional[ReconfigurationManager] = None
    mutation: Optional[str] = None
    #: fault injection (repro.faults): the plan is applied at run start so
    #: a controller installed in between can own the timing choices
    injector: Optional[FaultInjector] = None
    fault_plan: Optional[FaultPlan] = None
    failover: Optional[AutoFailover] = None

    def run(self) -> None:
        """Run to the horizon (install any controller hooks first)."""
        if (self.injector is not None and self.fault_plan is not None
                and not self.injector.applied):
            self.injector.apply(self.fault_plan)
        self.sim.run(until=self.horizon)

    def digest(self) -> str:
        return self.monitor.trace_digest()


# ---------------------------------------------------------------------------
# scripted client workloads
# ---------------------------------------------------------------------------

def _scripted(ops: List[object]) -> Callable[[ClientProcess], object]:
    """Issue *ops* in order, then stop."""
    queue = list(ops)

    def generator(client: ClientProcess) -> object:
        return queue.pop(0) if queue else None

    return generator


def _poll_then(key: str, cap: int,
               then: List[object]) -> Callable[[ClientProcess], object]:
    """Re-read *key* until a version is observed (at most *cap* reads),
    then issue *then* in order and stop.  The cap keeps every client
    terminating under mutations that lose the awaited update."""
    state = {"reads": 0}
    queue = list(then)

    def generator(client: ClientProcess) -> object:
        if (client._observed_max_per_key.get(key) is None
                and state["reads"] < cap):
            state["reads"] += 1
            return ReadOp(key)
        return queue.pop(0) if queue else None

    return generator


def _then_poll_then(first: List[object], key: str, cap: int,
                    then: List[object]) -> Callable[[ClientProcess], object]:
    """Issue *first*, poll *key* until visible (at most *cap* reads), then
    issue *then*.  Lets a writer wait for a remote causal dependency before
    continuing — the fault scenarios use it to write *during* degraded
    mode."""
    first_queue = list(first)
    state = {"reads": 0}
    then_queue = list(then)

    def generator(client: ClientProcess) -> object:
        if first_queue:
            return first_queue.pop(0)
        if (client._observed_max_per_key.get(key) is None
                and state["reads"] < cap):
            state["reads"] += 1
            return ReadOp(key)
        return then_queue.pop(0) if then_queue else None

    return generator


# ---------------------------------------------------------------------------
# builders
# ---------------------------------------------------------------------------

def _latency_model() -> LatencyModel:
    model = LatencyModel(local_latency=0.25)
    model.set("I", "F", 4.0)
    model.set("F", "T", 6.0)
    model.set("I", "T", 10.0)
    return model


def _chain_topology() -> TreeTopology:
    return TreeTopology(
        serializer_sites={"sI": "I", "sF": "F", "sT": "T"},
        edges=[("sI", "sF"), ("sF", "sT")],
        attachments={"I": "sI", "F": "sF", "T": "sT"},
    )


def _pivoted_topology() -> TreeTopology:
    """The reconfiguration target C2: same leaves, I in the middle."""
    return TreeTopology(
        serializer_sites={"sI": "I", "sF": "F", "sT": "T"},
        edges=[("sF", "sI"), ("sI", "sT")],
        attachments={"I": "sI", "F": "sF", "T": "sT"},
    )


def _tree_links(topology: TreeTopology, epoch: int) -> List[Tuple[str, str]]:
    """Directed serializer process-name pairs for every tree edge."""
    links = []
    for a, b in topology.edges:
        name_a = SaturnService.serializer_process_name(epoch, a)
        name_b = SaturnService.serializer_process_name(epoch, b)
        links.append((name_a, name_b))
        links.append((name_b, name_a))
    return links


def _build_chain3(name: str, horizon: float,
                  reconfigure_at: Optional[float] = None,
                  emergency: bool = False,
                  specs: Optional[List[Tuple[str, str, Callable]]] = None,
                  beacon_period: float = 0.0,
                  dc_extra: Optional[dict] = None,
                  auto_failover: bool = False,
                  fault_plan: Optional[FaultPlan] = None,
                  min_expected_updates: int = 4) -> Scenario:
    """Build the chain3 deployment; the knobs beyond the reconfiguration
    pair exist for the fault scenarios (repro.faults reuses this builder):
    custom client scripts, serializer beacons + per-datacenter detector
    parameters (``dc_extra`` merges into :class:`DatacenterParams`), the
    automatic-recovery coordinator, and a scheduled fault plan."""
    sim = Simulator()
    rng = RngRegistry(seed=11)
    network = Network(sim, latency_model=_latency_model(),
                      default_latency=0.25, rng=rng)
    metrics = MetricsHub(sim)
    clocks = ClockFactory(sim, rng, max_skew=0.5)
    cost = CostModel()

    replication = ReplicationMap(list(SITES))
    replication.set_group("g0", SITES)
    replication.set_group("g1", ("I", "F"))
    log = ExecutionLog(replication)

    c1 = _chain_topology()
    service = SaturnService(sim, network, replication,
                            beacon_period=beacon_period)
    service.install_tree(c1, epoch=0)

    datacenters: Dict[str, SaturnDatacenter] = {}
    for site in SITES:
        params = DatacenterParams(
            name=site, site=site, num_partitions=2, consistency="saturn",
            sink_batch_period=2.0, sink_heartbeat_period=8.0,
            bulk_heartbeat_period=5.0, **(dc_extra or {}))
        dc = SaturnDatacenter(sim, params, replication, cost, clocks.create(),
                              metrics=metrics, execution_log=log)
        dc.attach_network(network)
        network.place(dc.name, site)
        dc.saturn = service
        datacenters[site] = dc

    # invariant instrumentation: HazardMonitor observes the kernel, and the
    # network trace fans out to both the monitor and the routing oracle
    monitor = HazardMonitor()
    monitor.attach_sim(sim)
    monitor.network = network
    partial_oracle = PartialReplicationOracle(service, replication)
    network.trace = TraceTee(monitor, partial_oracle)

    if specs is None:
        specs = [
            ("writer-I", "I", _scripted([UpdateOp(KEY_A, 2),
                                         UpdateOp(KEY_B, 2),
                                         UpdateOp(KEY_P, 2)])),
            ("relay-F", "F", _poll_then(KEY_B, cap=40,
                                        then=[UpdateOp(KEY_Y, 2)])),
            ("reader-T", "T", _poll_then(KEY_Y, cap=60,
                                         then=[ReadOp(KEY_A)])),
        ]
    clients: List[ClientProcess] = []
    for index, (client_id, site, generator) in enumerate(specs):
        client = ClientProcess(sim, client_id, site, generator,
                               metrics=metrics, execution_log=log)
        client.attach_network(network)
        network.place(client.name, site)
        # stagger starts slightly (like the harness) so client attaches do
        # not produce meaningless 3-way ties at t=0
        sim.schedule(0.013 * index, client.start)
        clients.append(client)

    for dc in datacenters.values():
        dc.start()

    c2 = _pivoted_topology()
    delay_links = set(_tree_links(c1, epoch=0))
    manager: Optional[ReconfigurationManager] = None
    if reconfigure_at is not None or auto_failover or fault_plan is not None:
        manager = ReconfigurationManager(service, list(datacenters.values()))
    if reconfigure_at is not None:
        # scripted epoch change: the harness (not protocol code) owns the
        # absolute-time schedule, so drive the manager from the kernel here
        sim.schedule_at(
            reconfigure_at,
            lambda m=manager: m.reconfigure(c2, emergency=emergency))
        delay_links.update(_tree_links(c2, epoch=1))
    failover: Optional[AutoFailover] = None
    if auto_failover:
        failover = AutoFailover(manager)
        for dc in datacenters.values():
            if dc.failover is not None:
                dc.failover.coordinator = failover
    injector: Optional[FaultInjector] = None
    if fault_plan is not None:
        injector = FaultInjector(sim, network, service=service,
                                 manager=manager)

    return Scenario(
        name=name, sim=sim, network=network, replication=replication,
        service=service, datacenters=datacenters, clients=clients, log=log,
        monitor=monitor, partial_oracle=partial_oracle, horizon=horizon,
        delay_links=frozenset(delay_links), manager=manager,
        min_expected_updates=min_expected_updates,
        injector=injector, fault_plan=fault_plan, failover=failover)


#: public alias for the fault-scenario catalog (repro.faults.scenarios)
build_chain3 = _build_chain3


# ---------------------------------------------------------------------------
# baseline scenarios (no serializer tree; same sites, latencies, workload)
# ---------------------------------------------------------------------------

#: system -> (datacenter class, client stamp-merge function)
_BASELINE_SYSTEMS = {
    "gentlerain": (GentleRainDatacenter, gentlerain_merge),
    "cure": (CureDatacenter, cure_merge),
    "eunomia": (EunomiaDatacenter, eunomia_merge),
    "okapi": (OkapiDatacenter, cure_merge),
}


def _baseline_specs(relay_cap: int = 150, reader_cap: int = 200,
                    writer_cap: Optional[int] = None):
    """The chain3 causal workload with poll caps sized for stabilization
    visibility (a 5 ms round cadence instead of Saturn's label trees).
    With ``writer_cap`` the writer also waits for ``g0:y`` and then
    writes ``g0:c`` — the fault scenarios use it to write *through* an
    outage."""
    if writer_cap is not None:
        writer = _then_poll_then(
            [UpdateOp(KEY_A, 2), UpdateOp(KEY_B, 2), UpdateOp(KEY_P, 2)],
            KEY_Y, cap=writer_cap, then=[UpdateOp(KEY_C, 2)])
    else:
        writer = _scripted([UpdateOp(KEY_A, 2), UpdateOp(KEY_B, 2),
                            UpdateOp(KEY_P, 2)])
    return [
        ("writer-I", "I", writer),
        ("relay-F", "F", _poll_then(KEY_B, cap=relay_cap,
                                    then=[UpdateOp(KEY_Y, 2)])),
        ("reader-T", "T", _poll_then(KEY_Y, cap=reader_cap,
                                     then=[ReadOp(KEY_A)])),
    ]


def build_baseline_chain3(system: str, name: Optional[str] = None,
                          horizon: float = 300.0,
                          specs: Optional[List[Tuple[str, str, Callable]]] = None,
                          fault_plan: Optional[FaultPlan] = None,
                          min_expected_updates: int = 4,
                          batch_period: float = 2.0) -> Scenario:
    """Build the chain3 deployment on a stabilization baseline.

    Same sites, latencies, replication groups, seed, and scripted causal
    workload as :func:`build_chain3`, but the datacenters run *system*
    (``gentlerain``/``cure``/``eunomia``/``okapi``) instead of Saturn —
    there is no serializer tree, so ``service`` is ``None`` and the
    routing oracle degrades to the destination-set check
    (:class:`BaselineReplicationOracle`).  The conformance suite and the
    baseline chaos scenarios (sequencer crash, clock-skew spike) build
    on this."""
    try:
        dc_cls, merge = _BASELINE_SYSTEMS[system]
    except KeyError:
        raise ValueError(f"unknown baseline system {system!r}; "
                         f"expected one of {sorted(_BASELINE_SYSTEMS)}"
                         ) from None
    name = name or f"{system}-chain3"
    sim = Simulator()
    rng = RngRegistry(seed=11)
    network = Network(sim, latency_model=_latency_model(),
                      default_latency=0.25, rng=rng)
    metrics = MetricsHub(sim)
    clocks = ClockFactory(sim, rng, max_skew=0.5)
    cost = CostModel()

    replication = ReplicationMap(list(SITES))
    replication.set_group("g0", SITES)
    replication.set_group("g1", ("I", "F"))
    log = ExecutionLog(replication)

    datacenters: Dict[str, object] = {}
    for site in SITES:
        kwargs = dict(num_partitions=2, metrics=metrics, execution_log=log)
        if system == "eunomia":
            kwargs["batch_period"] = batch_period
        dc = dc_cls(sim, site, site, replication, cost, clocks.create(),
                    **kwargs)
        dc.attach_network(network)
        network.place(dc.name, site)
        datacenters[site] = dc

    monitor = HazardMonitor()
    monitor.attach_sim(sim)
    monitor.network = network
    partial_oracle = BaselineReplicationOracle(replication)
    network.trace = TraceTee(monitor, partial_oracle)

    if specs is None:
        specs = _baseline_specs()
    clients: List[ClientProcess] = []
    for index, (client_id, site, generator) in enumerate(specs):
        client = ClientProcess(sim, client_id, site, generator, merge=merge,
                               metrics=metrics, execution_log=log)
        client.attach_network(network)
        network.place(client.name, site)
        sim.schedule(0.013 * index, client.start)
        clients.append(client)

    for dc in datacenters.values():
        dc.start()

    # perturbable links: every inter-datacenter pair, plus the sequencer
    # hops for Eunomia (dc -> own sequencer, sequencer -> remote dcs)
    delay_links = set()
    for a in datacenters.values():
        for b in datacenters.values():
            if a is not b:
                delay_links.add((a.name, b.name))
        if system == "eunomia":
            delay_links.add((a.name, a.sequencer.name))
            for b in datacenters.values():
                if b is not a:
                    delay_links.add((a.sequencer.name, b.name))

    injector: Optional[FaultInjector] = None
    if fault_plan is not None:
        injector = FaultInjector(
            sim, network,
            clocks={site: dc.clock for site, dc in datacenters.items()})

    return Scenario(
        name=name, sim=sim, network=network, replication=replication,
        service=None, datacenters=datacenters, clients=clients, log=log,
        monitor=monitor, partial_oracle=partial_oracle, horizon=horizon,
        delay_links=frozenset(delay_links),
        min_expected_updates=min_expected_updates,
        injector=injector, fault_plan=fault_plan)


def _chain3() -> Scenario:
    return _build_chain3("chain3", horizon=150.0)


def _reconfig_chain3() -> Scenario:
    # t=12 ms: the g0 labels are mid-tree when the epoch flips (fast path)
    return _build_chain3("reconfig-chain3", horizon=250.0, reconfigure_at=12.0)


def _reconfig_emergency() -> Scenario:
    scenario = _build_chain3("reconfig-emergency", horizon=400.0,
                             reconfigure_at=12.0, emergency=True)
    # the failure path abandons C1: kill its serializers at the switch so
    # the only way labels arrive is the timestamp fallback + C2
    scenario.sim.schedule_at(
        12.0, lambda: scenario.service.fail_tree(epoch=0))
    return scenario


def _crash_chain3() -> Scenario:
    """Serializer sI crashes mid-stream — *when* is a schedulable FAULT
    decision (four candidate instants bracketing the label flow) — then
    restarts at t=45.  The beacon detector degrades I to the timestamp
    fallback, I keeps writing while degraded (``g0:c`` parks in the sink),
    and the restarted serializer's beacon triggers the coordinator's
    emergency epoch change, which replays the backlog through the new
    tree.  The oracles check the whole arc: nothing lost, nothing
    misordered, every client terminates."""
    specs = [
        ("writer-I", "I", _then_poll_then(
            [UpdateOp(KEY_A, 2), UpdateOp(KEY_B, 2), UpdateOp(KEY_P, 2)],
            KEY_Y, cap=300, then=[UpdateOp(KEY_C, 2)])),
        ("relay-F", "F", _poll_then(KEY_B, cap=200,
                                    then=[UpdateOp(KEY_Y, 2)])),
        ("reader-T", "T", _poll_then(KEY_Y, cap=200,
                                     then=[ReadOp(KEY_A)])),
    ]
    plan = FaultPlan(name="crash-chain3", actions=(
        FaultAction(kind="crash-serializer",
                    at_choices=(6.0, 9.0, 12.0, 15.0),
                    args={"tree": "sI", "epoch": 0}),
        FaultAction(kind="restart-serializer", at=45.0,
                    args={"tree": "sI", "epoch": 0}),
    ))
    return _build_chain3(
        "crash-chain3", horizon=260.0, specs=specs, beacon_period=2.0,
        dc_extra=dict(beacon_timeout=7.0, stabilization_wait=4.0,
                      probe_period=4.0, probe_backoff=2.0,
                      probe_period_max=16.0),
        auto_failover=True, fault_plan=plan, min_expected_updates=5)


def _baseline_scenario(system: str) -> Callable[[], Scenario]:
    def build() -> Scenario:
        return build_baseline_chain3(system)
    return build


SCENARIOS: Dict[str, Callable[[], Scenario]] = {
    "chain3": _chain3,
    "reconfig-chain3": _reconfig_chain3,
    "reconfig-emergency": _reconfig_emergency,
    "crash-chain3": _crash_chain3,
    "gentlerain-chain3": _baseline_scenario("gentlerain"),
    "cure-chain3": _baseline_scenario("cure"),
    "eunomia-chain3": _baseline_scenario("eunomia"),
    "okapi-chain3": _baseline_scenario("okapi"),
}


# ---------------------------------------------------------------------------
# mutations (checker self-test: each one must be caught)
# ---------------------------------------------------------------------------

def _mutate_drop_fifo(scenario: Scenario) -> None:
    """Serializer sI forwards every batch with labels reversed — it stops
    forwarding in arrival order, the §5.3 discipline the causal argument
    rests on.  Caught by the causal-visibility oracle (b visible before
    its dependency a)."""
    serializer = scenario.service.serializers(0)["sI"]
    original = serializer._route_batch

    def reversed_route(batch: LabelBatch, came_from, sender) -> None:
        mutated = LabelBatch(tuple(reversed(batch.labels)), epoch=batch.epoch)
        original(mutated, came_from, sender)

    serializer._route_batch = reversed_route


def _mutate_drop_label(scenario: Scenario) -> None:
    """Serializer sI silently drops the first update label it routes.
    Caught by the completeness oracle (the update never becomes visible at
    the interested remote datacenters) and by the causal oracle (its
    dependents become visible without it)."""
    serializer = scenario.service.serializers(0)["sI"]
    original = serializer._route_batch
    state = {"dropped": False}

    def dropping_route(batch: LabelBatch, came_from, sender) -> None:
        labels = batch.labels
        if not state["dropped"]:
            kept = []
            for label in labels:
                if not state["dropped"] and label.type is LabelType.UPDATE:
                    state["dropped"] = True
                    continue
                kept.append(label)
            if not kept:
                return
            batch = LabelBatch(tuple(kept), epoch=batch.epoch)
        original(batch, came_from, sender)

    serializer._route_batch = dropping_route


def _mutate_leak_routing(scenario: Scenario) -> None:
    """Serializer sF ignores interest sets and floods every direction —
    genuine partial replication is gone.  Caught by the routing oracle the
    moment a g1 label (replicated at I and F only) crosses the sF -> sT
    branch."""
    serializer = scenario.service.serializers(0)["sF"]

    def leaky_route(batch: LabelBatch, came_from, sender) -> None:
        total = len(batch.labels)
        for neighbor, peer, _reachable, delay in serializer._out_edges:
            if neighbor == came_from:
                continue
            serializer._forward(peer, batch, extra_delay=delay)
            serializer.labels_forwarded += total
        for dc, delivery in serializer._attached:
            if delivery == sender:
                continue
            serializer._forward(delivery, batch)
            serializer.labels_delivered += total

    serializer._route_batch = leaky_route


MUTATIONS: Dict[str, Callable[[Scenario], None]] = {
    "drop-fifo": _mutate_drop_fifo,
    "drop-label": _mutate_drop_label,
    "leak-routing": _mutate_leak_routing,
}


def build_scenario(name: str, mutation: Optional[str] = None) -> Scenario:
    """Build scenario *name*, optionally with a self-test mutation."""
    try:
        builder = SCENARIOS[name]
    except KeyError:
        raise ValueError(f"unknown scenario {name!r}; "
                         f"expected one of {sorted(SCENARIOS)}") from None
    scenario = builder()
    if mutation is not None:
        try:
            mutate = MUTATIONS[mutation]
        except KeyError:
            raise ValueError(f"unknown mutation {mutation!r}; "
                             f"expected one of {sorted(MUTATIONS)}") from None
        mutate(scenario)
        scenario.mutation = mutation
    return scenario
