"""Delta-debugging shrinker and replayable counterexamples.

A failing schedule is a decision list (see
:mod:`repro.analysis.mc.controller`).  Most of those decisions are
defaults (FIFO tie-break, zero delay) that merely record where a choice
point occurred; the shrinker finds the minimal set of *non-default*
decisions that still triggers the violation, using Zeller's ddmin over
decision indices.

Two invariants make shrinking sound here:

* candidates **reset decisions to their default, never delete them** —
  the script is consumed positionally, so removing a middle entry would
  misalign every later decision with its choice point;
* trailing defaults are truncated instead, because a controller that runs
  off the end of its script falls back to the default strategy anyway.

The surviving decisions plus the scenario name *are* the counterexample:
:class:`Counterexample` serializes them (with the violation messages, the
delivery-trace digest and a schedule hash) to JSON, and
``python -m repro.analysis.mc --replay`` turns that file back into the
identical execution.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.analysis.mc.controller import (DELAY, FAULT, TIE, decisions_hash,
                                          nondefault_count)

__all__ = ["Counterexample", "shrink_decisions"]

#: bump when the JSON layout changes incompatibly
FORMAT_VERSION = 1


def _is_default(decision: Sequence) -> bool:
    if decision[0] in (TIE, FAULT):
        return decision[2] == 0
    if decision[0] == DELAY:
        return decision[1] == 0.0
    raise ValueError(f"unknown decision kind {decision[0]!r}")


def _default_of(decision: Sequence) -> list:
    if decision[0] in (TIE, FAULT):
        return [decision[0], decision[1], 0]
    return [DELAY, 0.0]


def _strip(decisions: Sequence[Sequence], keep: frozenset) -> List[list]:
    """Reset every non-default decision not in *keep* to its default and
    drop the (now meaningless) trailing run of defaults."""
    out: List[list] = []
    for index, decision in enumerate(decisions):
        if index in keep or _is_default(decision):
            out.append(list(decision))
        else:
            out.append(_default_of(decision))
    while out and _is_default(out[-1]):
        out.pop()
    return out


def shrink_decisions(
    decisions: Sequence[Sequence],
    test: Callable[[List[list]], Optional[List[str]]],
) -> Optional[Tuple[List[list], List[str]]]:
    """ddmin a failing decision list down to a minimal one.

    ``test(candidate)`` re-runs the scenario under *candidate* and returns
    the violation list if it still fails, else ``None``.  Returns the
    minimal (decisions, violations) pair, or ``None`` if even the full
    list no longer reproduces (a flaky oracle — worth surfacing loudly).
    """
    base = [list(d) for d in decisions]
    nondefault = [i for i, d in enumerate(base) if not _is_default(d)]

    # fast path: a schedule-independent failure (every seeded mutation, for
    # one) shrinks straight to the empty script — ddmin from a decision-
    # heavy randomized trace often cannot reach it, because intermediate
    # half-schedules perturb timing enough to mask the bug
    violations = test([])
    if violations is not None:
        return [], violations

    keep = frozenset(nondefault)
    violations = test(_strip(base, keep))
    if violations is None:
        return None
    best = _strip(base, keep)

    granularity = 2
    while keep and granularity <= len(keep):
        indices = sorted(keep)
        chunk_size = max(1, len(indices) // granularity)
        chunks = [indices[i:i + chunk_size]
                  for i in range(0, len(indices), chunk_size)]
        reduced = False
        for chunk in chunks:
            candidate_keep = keep - frozenset(chunk)
            candidate = _strip(base, candidate_keep)
            result = test(candidate)
            if result is not None:
                keep = candidate_keep
                best, violations = candidate, result
                granularity = max(2, granularity - 1)
                reduced = True
                break
        if not reduced:
            if granularity >= len(keep):
                break
            granularity = min(len(keep), granularity * 2)
    return best, violations


@dataclass
class Counterexample:
    """A minimal, replayable failing schedule."""

    scenario: str
    mutation: Optional[str]
    strategy: str
    decisions: List[list]
    violations: List[str]
    digest: str
    seed: Optional[int] = None
    shrunk: bool = False
    original_decision_count: int = 0
    uses_delays: bool = field(init=False, default=False)
    schedule_hash: str = field(init=False, default="")

    def __post_init__(self) -> None:
        self.uses_delays = any(d[0] == DELAY for d in self.decisions)
        self.schedule_hash = decisions_hash(
            self.scenario, self.mutation, self.decisions)

    # -- serialization -----------------------------------------------------

    def to_json(self) -> str:
        return json.dumps({
            "format_version": FORMAT_VERSION,
            "scenario": self.scenario,
            "mutation": self.mutation,
            "strategy": self.strategy,
            "seed": self.seed,
            "decisions": self.decisions,
            "violations": self.violations,
            "digest": self.digest,
            "schedule_hash": self.schedule_hash,
            "shrunk": self.shrunk,
            "original_decision_count": self.original_decision_count,
            "uses_delays": self.uses_delays,
        }, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Counterexample":
        data = json.loads(text)
        version = data.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"counterexample format version {version!r} not supported "
                f"(expected {FORMAT_VERSION})")
        ce = cls(
            scenario=data["scenario"],
            mutation=data.get("mutation"),
            strategy=data.get("strategy", "unknown"),
            decisions=[list(d) for d in data["decisions"]],
            violations=list(data.get("violations", ())),
            digest=data.get("digest", ""),
            seed=data.get("seed"),
            shrunk=bool(data.get("shrunk", False)),
            original_decision_count=int(
                data.get("original_decision_count", 0)),
        )
        stored_hash = data.get("schedule_hash")
        if stored_hash and stored_hash != ce.schedule_hash:
            raise ValueError(
                "counterexample schedule hash mismatch: file says "
                f"{stored_hash}, decisions hash to {ce.schedule_hash}")
        return ce

    def summary(self) -> str:
        lines = [
            f"scenario      : {self.scenario}",
            f"mutation      : {self.mutation or '-'}",
            f"strategy      : {self.strategy}"
            + (f" (seed {self.seed})" if self.seed is not None else ""),
            f"decisions     : {len(self.decisions)} "
            f"({nondefault_count(self.decisions)} non-default)"
            + (f" (shrunk from {self.original_decision_count})"
               if self.shrunk else ""),
            f"schedule hash : {self.schedule_hash}",
            f"trace digest  : {self.digest}",
            f"violations    : {len(self.violations)}",
        ]
        lines.extend(f"  - {violation}" for violation in self.violations[:10])
        if len(self.violations) > 10:
            lines.append(f"  ... and {len(self.violations) - 10} more")
        return "\n".join(lines)
