"""Exploration strategies: who answers a schedule choice point.

Three ways to walk the schedule space, mirroring the systematic-testing
literature:

* :class:`ExhaustiveStrategy` — plain FIFO beyond the forced prefix; the
  checker's DFS driver (see :meth:`repro.analysis.mc.checker.ModelChecker.
  sweep_exhaustive`) enumerates every tie-permutation of the first
  ``depth`` choice points, so small configurations are covered completely.
* :class:`PctStrategy` — PCT-style randomized priority schedules: every
  event draws a random priority at schedule time, ties run the
  highest-priority candidate, and ``change_points`` decisions are replaced
  by a uniformly random pick (the priority-inversion points that give PCT
  its bug-depth guarantee).
* :class:`DelayInjectionStrategy` — targeted delay injection on tree
  edges: sends on the scenario's serializer links are stretched by a
  quantized amount within ``[0, bound]`` ms, which is how reconfiguration
  races (labels in flight across an epoch boundary) are provoked.

All randomness comes from a private ``random.Random(seed)`` so a strategy
run is reproducible from ``(strategy, seed)`` alone — and the decision
trace it leaves behind replays without any RNG at all.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.sim.engine import Event

__all__ = ["FifoStrategy", "ExhaustiveStrategy", "PctStrategy",
           "DelayInjectionStrategy"]


class FifoStrategy:
    """The kernel's own tie-break: lowest sequence number first.

    Used as the baseline, as the replay strategy once a counterexample
    script is exhausted, and as the base class for the others.
    """

    name = "fifo"

    def on_schedule(self, event: Event) -> None:
        """Nothing to track for FIFO."""

    def choose_tie(self, time: float, events: List[Event]) -> int:
        return 0

    def choose_delay(self, src: str, dst: str) -> float:
        return 0.0

    def choose_fault(self, name: str, k: int) -> int:
        return 0


class ExhaustiveStrategy(FifoStrategy):
    """FIFO beyond the forced prefix; the DFS driver does the branching."""

    name = "exhaustive"


class PctStrategy(FifoStrategy):
    """Randomized priority schedules with priority-change points."""

    name = "pct"

    def __init__(self, seed: int, change_points: int = 3) -> None:
        self._rng = random.Random(seed)
        self.change_points = change_points
        self._priority: Dict[int, float] = {}
        self._decisions_seen = 0
        #: decision indices at which priorities are ignored for one pick
        self._inversions = frozenset(
            self._rng.randrange(0, 256) for _ in range(change_points))

    def on_schedule(self, event: Event) -> None:
        self._priority[event.seq] = self._rng.random()

    def choose_tie(self, time: float, events: List[Event]) -> int:
        index = self._decisions_seen
        self._decisions_seen += 1
        if index in self._inversions:
            return self._rng.randrange(len(events))
        best, best_priority = 0, -1.0
        for position, event in enumerate(events):
            priority = self._priority.get(event.seq, 0.0)
            if priority > best_priority:
                best, best_priority = position, priority
        return best

    def choose_fault(self, name: str, k: int) -> int:
        return self._rng.randrange(k)


class DelayInjectionStrategy(FifoStrategy):
    """Stretch targeted link sends by a quantized bounded amount.

    Quantization keeps the decision space small (a delta-debugged
    counterexample names one of four values per send, not a float
    continuum) while still crossing every batching/heartbeat boundary a
    continuous delay could.
    """

    name = "delay"

    def __init__(self, seed: int, bound: float = 3.0,
                 injection_rate: float = 0.25) -> None:
        if bound < 0:
            raise ValueError("delay bound must be non-negative")
        self._rng = random.Random(seed)
        self.bound = bound
        self.injection_rate = injection_rate
        self._levels = (bound / 3.0, 2.0 * bound / 3.0, bound)

    def choose_delay(self, src: str, dst: str) -> float:
        if self.bound == 0.0 or self._rng.random() >= self.injection_rate:
            return 0.0
        return self._rng.choice(self._levels)
