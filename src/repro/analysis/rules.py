"""Rule catalogue for the Saturn-specific lint.

Each rule names one way simulation code can silently lose determinism or
break the message-passing discipline the simulator's correctness argument
rests on.  The detection logic lives in :mod:`repro.analysis.lint`; this
module is the single place that defines codes, titles, and rationale, so
reports, suppressions (``# noqa: SATxxx``) and docs stay in sync.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["Rule", "ALL_RULES", "RULES_BY_CODE"]


@dataclass(frozen=True)
class Rule:
    """One lint rule: a stable code plus human-facing explanation."""

    code: str
    title: str
    rationale: str


ALL_RULES: Tuple[Rule, ...] = (
    Rule(
        code="SAT001",
        title="wall-clock read in simulation code",
        rationale=(
            "time.time(), datetime.now() and datetime.today() read the host "
            "clock; simulation code must use the simulated clock "
            "(Simulator.now / LogicalClock) or runs stop being reproducible."
        ),
    ),
    Rule(
        code="SAT002",
        title="global random module used instead of a seeded stream",
        rationale=(
            "Module-level random.* draws from the shared, implicitly seeded "
            "global RNG; components must draw from their own named stream "
            "via repro.sim.rng.RngRegistry so seeds reproduce executions "
            "and adding randomness to one component cannot perturb another."
        ),
    ),
    Rule(
        code="SAT003",
        title="unordered set/dict-keys iteration on an order-sensitive path",
        rationale=(
            "Iterating a set (or dict keys of untracked origin) yields a "
            "hash-dependent order; if the loop schedules events, emits "
            "messages or forwards labels, the execution differs between "
            "processes (PYTHONHASHSEED) even with identical seeds.  Wrap "
            "the iterable in sorted(...) or use an order-insensitive "
            "reduction (min/max/sum/any/all/len or building another set)."
        ),
    ),
    Rule(
        code="SAT004",
        title="== / != between float timestamps",
        rationale=(
            "Simulated time is a float; equality between computed "
            "timestamps is brittle (association order changes the last "
            "ulp).  Compare with <= / >= against explicit cuts, or compare "
            "(ts, src) label keys, which are exact by construction."
        ),
    ),
    Rule(
        code="SAT005",
        title="mutable default argument",
        rationale=(
            "A mutable default (list/dict/set) is shared across every call "
            "and every process instance — hidden global state that couples "
            "actors which must only interact through messages."
        ),
    ),
    Rule(
        code="SAT006",
        title="direct mutation of another process's state",
        rationale=(
            "Actors communicate exclusively through Network.send; writing "
            "to an attribute of an object received as a message (or of a "
            "peer process) bypasses the FIFO channels the causality "
            "argument depends on and executes at the wrong simulated time."
        ),
    ),
    Rule(
        code="SAT007",
        title="heap entry without a deterministic tie-breaker",
        rationale=(
            "heapq compares tuple entries element by element; pushing "
            "(priority, payload) lets two equal priorities fall through to "
            "comparing payload objects — a TypeError for unorderable types, "
            "or id()-flavored nondeterminism for orderable ones.  Push "
            "(priority, seq, payload) where seq is a monotonic counter or "
            "another total, deterministic key (e.g. a label's src)."
        ),
    ),
    Rule(
        code="SAT008",
        title="wire message dataclass is not frozen, slotted plain data",
        rationale=(
            "Message dataclasses (modules named messages.py, or classes "
            "named *Payload / *Msg) cross process boundaries once the "
            "Transport refactor lands: they must be @dataclass(frozen=True) "
            "with __slots__ (slots=True or an explicit __slots__) and carry "
            "only plain-data field annotations — no list/dict/set, object, "
            "Any or Callable — so a payload can be serialized byte-for-byte "
            "and can never alias mutable state between sender and receiver."
        ),
    ),
    Rule(
        code="SAT009",
        title="event-loop acquisition outside the kernel seam",
        rationale=(
            "asyncio.get_event_loop() is deprecated outside a running loop "
            "and silently binds whichever loop happens to be current — on "
            "the realtime path every component must receive its loop (or "
            "kernel) explicitly so loop ownership stays auditable.  Naked "
            "asyncio.ensure_future() additionally drops the strong "
            "reference the loop does not keep, recreating the CONC002 "
            "footgun.  Use RealtimeKernel (kernel.loop / "
            "kernel.create_task), or asyncio.get_running_loop() inside a "
            "coroutine."
        ),
    ),
)

RULES_BY_CODE: Dict[str, Rule] = {rule.code: rule for rule in ALL_RULES}
