"""Opt-in runtime hazard checker for the deterministic simulator.

Saturn's correctness argument (§5.3 of the paper) leans on two runtime
properties the static lint cannot see:

* every network link behaves as a **FIFO channel** — a label batch sent
  after another on the same (src, dst) edge must be delivered after it;
* the event heap breaks same-time ties by scheduling order, so two events
  scheduled for the *same* float instant are a **determinism hazard**: the
  outcome is decided by code layout, not by simulated time.  Ties are
  legal (periodic timers collide constantly) but worth surfacing when a
  scenario behaves differently after an innocuous-looking refactor.

:class:`HazardMonitor` attaches to a :class:`~repro.sim.engine.Simulator`
and a :class:`~repro.sim.network.Network` through the observer/trace hooks
those classes expose.  Nothing is instrumented unless a monitor is
installed, so the fast path stays untouched.  The monitor also keeps a
SHA-256 digest of the delivery trace — two runs with the same seed must
produce identical digests — and can cross-check the label streams each
datacenter received against the offline causality checker
(:class:`repro.verify.ExecutionLog`).

Typical use::

    monitor = HazardMonitor.install(cluster.sim, cluster.network)
    cluster.run(...)
    report = monitor.report()
    assert report.ok, report.summary()
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.label import Label, LabelType
from repro.datacenter.messages import LabelBatch
from repro.sim.engine import Event, Simulator
from repro.sim.network import Network

__all__ = ["HazardMonitor", "HazardReport", "FifoViolation", "TieHazard"]

#: stop accumulating individual tie records beyond this many (totals keep
#: counting); ties are common and the list is for diagnosis, not bulk data
MAX_TIE_RECORDS = 1000


@dataclass(frozen=True)
class FifoViolation:
    """A message overtook an earlier one on the same directed link."""

    src: str
    dst: str
    expected_seq: int
    got_seq: int
    at: float

    def describe(self) -> str:
        return (f"FIFO violation on {self.src}->{self.dst} at t={self.at:.3f}: "
                f"delivered send #{self.got_seq}, expected #{self.expected_seq}")


@dataclass(frozen=True)
class TieHazard:
    """Two or more pending events share the exact same timestamp."""

    time: float
    pending_at_time: int

    def describe(self) -> str:
        return (f"{self.pending_at_time} events pending at the same instant "
                f"t={self.time!r}; pop order is decided by scheduling order")


@dataclass
class HazardReport:
    """Outcome of a monitored run."""

    fifo_violations: List[FifoViolation] = field(default_factory=list)
    tie_hazards: List[TieHazard] = field(default_factory=list)
    ties_total: int = 0
    messages_delivered: int = 0
    labels_delivered: int = 0
    causality_violations: List[Any] = field(default_factory=list)
    trace_digest: str = ""

    @property
    def ok(self) -> bool:
        """FIFO discipline held and (if cross-checked) causality held.

        Ties are reported but do not fail the run: the kernel resolves
        them deterministically by scheduling order."""
        return not self.fifo_violations and not self.causality_violations

    def summary(self) -> str:
        lines = [
            f"messages delivered : {self.messages_delivered}",
            f"labels delivered   : {self.labels_delivered}",
            f"fifo violations    : {len(self.fifo_violations)}",
            f"same-time ties     : {self.ties_total}",
            f"causality breaches : {len(self.causality_violations)}",
            f"trace digest       : {self.trace_digest}",
        ]
        for violation in self.fifo_violations[:10]:
            lines.append("  " + violation.describe())
        for violation in self.causality_violations[:10]:
            lines.append(f"  {violation}")
        return "\n".join(lines)


class _LinkAudit:
    """Per directed-link sequencing state."""

    __slots__ = ("sent", "delivered", "last_arrival")

    def __init__(self) -> None:
        self.sent = 0
        self.delivered = 0
        self.last_arrival = float("-inf")


class HazardMonitor:
    """Observer asserting FIFO discipline and flagging determinism hazards.

    Implements the :class:`~repro.sim.engine.Simulator` observer protocol
    (``on_schedule`` / ``on_pop``) and the
    :class:`~repro.sim.network.Network` trace protocol (``on_send`` /
    ``on_deliver`` / ``on_drop``).
    """

    def __init__(self) -> None:
        self.sim: Optional[Simulator] = None
        self.network: Optional[Network] = None
        self._links: Dict[Tuple[str, str], _LinkAudit] = {}
        self._fifo_violations: List[FifoViolation] = []
        #: pending-event count per exact timestamp (tie detection)
        self._pending_times: Dict[float, int] = {}
        self._tie_hazards: List[TieHazard] = []
        self._ties_total = 0
        #: per-datacenter label arrival streams (dc process name -> labels)
        self._label_streams: Dict[str, List[Label]] = {}
        self._messages_delivered = 0
        self._labels_delivered = 0
        self._digest = hashlib.sha256()
        self._causality_violations: List[Any] = []

    # -- installation ------------------------------------------------------

    @classmethod
    def install(cls, sim: Simulator, network: Network) -> "HazardMonitor":
        """Create a monitor and hook it into *sim* and *network*."""
        monitor = cls()
        monitor.attach_sim(sim)
        monitor.attach_network(network)
        return monitor

    def attach_sim(self, sim: Simulator) -> None:
        if sim.observer is not None:
            raise RuntimeError("simulator already has an observer attached")
        sim.observer = self
        self.sim = sim

    def attach_network(self, network: Network) -> None:
        if network.trace is not None:
            raise RuntimeError("network already has a trace attached")
        network.trace = self
        self.network = network

    def detach(self) -> None:
        if self.sim is not None and self.sim.observer is self:
            self.sim.observer = None
        if self.network is not None and self.network.trace is self:
            self.network.trace = None

    # -- Simulator observer protocol --------------------------------------

    def on_schedule(self, event: Event) -> None:
        count = self._pending_times.get(event.time, 0) + 1
        self._pending_times[event.time] = count
        if count >= 2:
            self._ties_total += 1
            if len(self._tie_hazards) < MAX_TIE_RECORDS:
                self._tie_hazards.append(
                    TieHazard(time=event.time, pending_at_time=count))

    def on_pop(self, event: Event) -> None:
        count = self._pending_times.get(event.time, 0)
        if count <= 1:
            self._pending_times.pop(event.time, None)
        else:
            self._pending_times[event.time] = count - 1

    # -- Network trace protocol -------------------------------------------

    def on_send(self, src: str, dst: str, message: Any,
                arrival: float) -> int:
        link = self._links.setdefault((src, dst), _LinkAudit())
        link.sent += 1
        if arrival < link.last_arrival:
            # the network failed to clamp: this *will* reorder
            self._fifo_violations.append(FifoViolation(
                src=src, dst=dst, expected_seq=link.sent,
                got_seq=link.sent, at=arrival))
        link.last_arrival = max(link.last_arrival, arrival)
        return link.sent

    def on_deliver(self, src: str, dst: str, seq: int, message: Any) -> None:
        link = self._links.setdefault((src, dst), _LinkAudit())
        expected = link.delivered + 1
        if seq != expected:
            self._fifo_violations.append(FifoViolation(
                src=src, dst=dst, expected_seq=expected, got_seq=seq,
                at=self.sim.now if self.sim else float("nan")))
        link.delivered = max(link.delivered, seq)
        self._messages_delivered += 1
        now = self.sim.now if self.sim is not None else 0.0
        self._digest.update(
            f"{now!r}|{src}|{dst}|{type(message).__name__}".encode())
        if isinstance(message, LabelBatch):
            self._labels_delivered += len(message.labels)
            # replayed batches (sink backlog re-sent after an emergency
            # epoch change) merge several origins' recovery traffic through
            # the new tree, so their arrival order carries no ordering
            # guarantee — visibility during recovery is justified by the
            # timestamp fallback + dedup, not by delivery order.  The same
            # goes for batches the receiving proxy will not feed through
            # the saturn-order pipeline at all (abandoned-tree remnants
            # arriving during the timestamp fallback, e.g. the flood
            # released when a partition heals after an emergency switch).
            # Both still count above and feed the determinism digest below.
            if dst.startswith("dc:") and not message.replayed:
                if self._proxy_consumes_order(dst, message.epoch):
                    self._label_streams.setdefault(dst, []).extend(
                        message.labels)
            for label in message.labels:
                self._digest.update(
                    f"|{label.ts!r}|{label.src}|{label.type.value}".encode())

    def _proxy_consumes_order(self, dst: str, epoch: int) -> bool:
        """Ask the destination datacenter's proxy (when reachable through
        the network registry) whether this batch enters its saturn-order
        pipeline; assume yes for non-datacenter receivers."""
        if self.network is None:
            return True
        try:
            process = self.network.process(dst)
        except KeyError:  # pragma: no cover - defensive
            return True
        proxy = getattr(process, "proxy", None)
        if proxy is None or not hasattr(proxy, "consumes_label_order"):
            return True
        return proxy.consumes_label_order(epoch)

    def on_drop(self, src: str, dst: str, message: Any) -> None:
        """A lossy link extension swallowed a message; nothing to assert
        (the built-in fault model holds messages across outages instead)."""

    # -- cross-checking against the offline causality checker -------------

    def crosscheck(self, log) -> List[Any]:
        """Validate the run against :class:`repro.verify.ExecutionLog`.

        Two checks: (1) the log's own causal-order / session validation;
        (2) at every datacenter, the update labels Saturn delivered became
        visible in delivery order (first-arrival order must match the
        log's visibility positions — the serializer tree's whole job).
        Returns the violations (also kept for :meth:`report`).
        """
        violations: List[Any] = list(log.check())
        for dst, labels in sorted(self._label_streams.items()):
            dc_name = dst[len("dc:"):]
            order = log.visibility_positions(dc_name)
            last_pos = -1
            last_version: Optional[Tuple[float, str]] = None
            seen = set()
            for label in labels:
                if label.type is not LabelType.UPDATE:
                    continue
                version = (label.ts, label.src)
                if version in seen:
                    continue
                seen.add(version)
                pos = order.get(version)
                if pos is None:
                    continue  # delivered but never applied (run truncated)
                if pos < last_pos:
                    violations.append(
                        f"visibility order at {dc_name} contradicts label "
                        f"delivery order: {version} became visible at "
                        f"position {pos} before {last_version} "
                        f"(position {last_pos})")
                else:
                    last_pos, last_version = pos, version
        self._causality_violations = violations
        return violations

    # -- results -----------------------------------------------------------

    def label_stream(self, dc_name: str) -> List[Label]:
        """Labels delivered to datacenter *dc_name*, in arrival order."""
        return list(self._label_streams.get(f"dc:{dc_name}", ()))

    def trace_digest(self) -> str:
        """SHA-256 over (time, src, dst, message-type[, labels]) tuples."""
        return self._digest.hexdigest()

    def report(self) -> HazardReport:
        return HazardReport(
            fifo_violations=list(self._fifo_violations),
            tie_hazards=list(self._tie_hazards),
            ties_total=self._ties_total,
            messages_delivered=self._messages_delivered,
            labels_delivered=self._labels_delivered,
            causality_violations=list(self._causality_violations),
            trace_digest=self.trace_digest(),
        )
