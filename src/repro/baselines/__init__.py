"""State-of-the-art baselines: GentleRain [26], Cure [3], Eunomia, Okapi."""

from repro.baselines.base import BaselinePayload, StabilizedDatacenter
from repro.baselines.cure import CureDatacenter, cure_merge
from repro.baselines.eunomia import (EunomiaDatacenter, EunomiaSequencer,
                                     eunomia_merge)
from repro.baselines.explicit import (DepContext, ExplicitDatacenter,
                                      explicit_merge)
from repro.baselines.gentlerain import GentleRainDatacenter, gentlerain_merge
from repro.baselines.okapi import HybridClock, OkapiDatacenter

__all__ = [
    "BaselinePayload", "StabilizedDatacenter", "CureDatacenter",
    "cure_merge", "DepContext", "ExplicitDatacenter", "explicit_merge",
    "GentleRainDatacenter", "gentlerain_merge", "EunomiaDatacenter",
    "EunomiaSequencer", "eunomia_merge", "HybridClock", "OkapiDatacenter",
]
