"""State-of-the-art baselines: GentleRain [26] and Cure [3]."""

from repro.baselines.base import BaselinePayload, StabilizedDatacenter
from repro.baselines.cure import CureDatacenter, cure_merge
from repro.baselines.explicit import (DepContext, ExplicitDatacenter,
                                      explicit_merge)
from repro.baselines.gentlerain import GentleRainDatacenter, gentlerain_merge

__all__ = [
    "BaselinePayload", "StabilizedDatacenter", "CureDatacenter",
    "cure_merge", "DepContext", "ExplicitDatacenter", "explicit_merge",
    "GentleRainDatacenter", "gentlerain_merge",
]
