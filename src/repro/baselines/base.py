"""Shared scaffolding for the stabilization-based baselines.

GentleRain [26] and Cure [3] follow the same blueprint (§7.3.1): updates are
tagged with metadata (a scalar / a vector), shipped to replicas, and held in
a pending set until a background *stabilization* mechanism — run every 5 ms,
per the authors' specifications — proves them causally safe to reveal.

:class:`StabilizedDatacenter` implements everything common: the partitioned
store, client request handling, payload buffering, the periodic
stabilization exchange, and attach blocking.  Subclasses define the metadata
type (the client *stamp*), the stability predicate, and the CPU costs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple, Union

from repro.core.label import Label, LabelType
from repro.core.replication import ReplicationMap
from repro.core.naming import dc_process_name
from repro.datacenter.messages import (AttachOk, ClientAttach, ClientMigrate,
                                       ClientRead, ClientUpdate, MigrateReply,
                                       ReadReply, StabilizationMsg, UpdateReply)
from repro.datacenter.storage import PartitionedStore, StoredValue
from repro.sim.clock import PhysicalClock
from repro.sim.cpu import CostModel
from repro.sim.engine import Simulator
from repro.sim.process import Process

__all__ = ["StabilizedDatacenter", "BaselinePayload", "BaselineStamp",
           "stamp_wire_bytes", "SCALAR_STAMP_BYTES", "VECTOR_ENTRY_BYTES"]

#: Dependency metadata carried on the wire: GentleRain ships a scalar
#: timestamp, Cure a sorted ``(dc, ts)`` tuple vector.  Plain immutable
#: data only — the stamp is shared between sender and receivers.
BaselineStamp = Union[float, Tuple[Tuple[str, float], ...]]


@dataclass(frozen=True, slots=True)
class BaselinePayload:
    """Replicated update for the stabilization-based systems."""

    label: Label            # (ts, src) version id, origin_dc set
    key: str
    value_size: int
    created_at: float
    stamp: BaselineStamp    # scalar (GentleRain) or vector (Cure) dependency


#: nominal wire size of one scalar timestamp / one vector entry, used for
#: the metadata bytes-per-update comparison (EXPERIMENTS.md): the absolute
#: numbers are conventional, the *ratios* between systems are the result
SCALAR_STAMP_BYTES = 8
VECTOR_ENTRY_BYTES = 16


def stamp_wire_bytes(stamp: BaselineStamp) -> int:
    """Nominal serialized size of one dependency stamp."""
    if isinstance(stamp, tuple):
        return VECTOR_ENTRY_BYTES * len(stamp)
    return SCALAR_STAMP_BYTES


class StabilizedDatacenter(Process):
    """Common machinery of GentleRain- and Cure-style datacenters."""

    #: stabilization period from the papers (ms)
    STABILIZATION_PERIOD = 5.0

    #: ``mode`` tag for obs ``visible`` events (per-baseline chain
    #: vocabulary; see repro.obs.trace — only ``saturn`` mode carries
    #: structural obligations, baseline modes are purely descriptive)
    VISIBILITY_MODE = "stabilized"

    def __init__(self, sim: Simulator, name: str, site: str,
                 replication: ReplicationMap, cost_model: CostModel,
                 clock: PhysicalClock, num_partitions: int = 2,
                 metrics=None, execution_log=None) -> None:
        super().__init__(sim, dc_process_name(name))
        self.dc_name = name
        self.site = site
        self.replication = replication
        self.cost_model = cost_model
        self.clock = clock
        self.metrics = metrics
        self.execution_log = execution_log
        self.store = PartitionedStore(sim, num_partitions)
        #: remote updates not yet causally safe to reveal, per origin; each
        #: queue is in arrival = timestamp order (origin clocks are
        #: monotonic and bulk links are FIFO)
        self._pending: Dict[str, Deque[BaselinePayload]] = {}
        #: timestamp of the last update dispatched per origin (visibility
        #: happens in dispatch order, so this bounds the finalized frontier)
        self._dispatched_ts: Dict[str, float] = {}
        #: in-order visibility pipeline (apply in parallel, reveal in order)
        self._pipeline: Deque[List] = deque()
        #: latest stabilization scalar received per remote datacenter (both
        #: baselines broadcast their local clock floor; Cure's stable
        #: *vector* is assembled receiver-side from these per-origin entries)
        self._remote_info: Dict[str, float] = {}
        self._waiters: List[Tuple[object, callable]] = []
        self._update_seq = 0
        self.updates_applied = 0
        #: optional LabelTracer (repro.obs) — observes issue/visible
        #: transitions only, never schedules events
        self.obs = None
        #: nominal dependency-metadata bytes shipped by this DC (update
        #: stamps + stabilization traffic), for the five-way comparison
        self.metadata_bytes_sent = 0

    # ------------------------------------------------------------------
    # hooks for subclasses
    # ------------------------------------------------------------------

    def local_stabilization_value(self) -> object:
        """Value broadcast to peers each stabilization round."""
        raise NotImplementedError

    def is_stable(self, stamp: object) -> bool:
        """Whether a dependency stamp is covered by the stable frontier."""
        raise NotImplementedError

    def make_update_stamp(self, client_stamp: object, ts: float) -> object:
        """Metadata attached to a new local update."""
        raise NotImplementedError

    def read_stamp(self, key: str, stored: StoredValue) -> object:
        """Stamp returned to the client for a read of *stored*."""
        raise NotImplementedError

    def vector_entries(self) -> int:
        """Metadata width for the CPU cost model (0 = scalar)."""
        return 0

    def read_metadata_entries(self) -> int:
        """Metadata width charged on the client *read* path.

        Defaults to :meth:`vector_entries`; Eunomia overrides it to 0
        because the sequencer keeps dependency tracking off the client
        critical path."""
        return self.vector_entries()

    def write_metadata_entries(self) -> int:
        """Metadata width charged on the client *update* path."""
        return self.vector_entries()

    def make_timestamp(self, floor: Optional[float]) -> float:
        """Timestamp for a new local update (Okapi substitutes an HLC)."""
        return self.clock.timestamp(at_least=floor)

    def _ship_update(self, payload: BaselinePayload, value_size: int) -> None:
        """Replicate a fresh local update (Eunomia routes via its sequencer)."""
        replicas = 0
        for replica in sorted(self.replication.replicas(payload.key)):
            if replica != self.dc_name:
                self.network.send(self.name, dc_process_name(replica),
                                  payload, size_bytes=value_size)
                replicas += 1
        self.metadata_bytes_sent += replicas * stamp_wire_bytes(payload.stamp)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        self.every(self.STABILIZATION_PERIOD, self._stabilization_round)

    def _stabilization_round(self) -> None:
        value = self.local_stabilization_value()
        message = StabilizationMsg(origin_dc=self.dc_name, value=value)
        for dc in self.replication.datacenters:
            if dc != self.dc_name:
                self.send(dc_process_name(dc), message)
        partners = len(self.replication.datacenters) - 1
        self.metadata_bytes_sent += partners * SCALAR_STAMP_BYTES
        cost = self.cost_model.stabilization_cost(partners, self.vector_entries())
        for partition in self.store.partitions:
            partition.cpu.consume(cost)
        # the local frontier moved: pending updates may have become stable
        self._drain_pending()
        self._check_waiters()

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------

    def receive(self, sender: str, message) -> None:
        if isinstance(message, ClientRead):
            self._client_read(sender, message)
        elif isinstance(message, ClientUpdate):
            self._client_update(sender, message)
        elif isinstance(message, ClientAttach):
            self._client_attach(sender, message)
        elif isinstance(message, ClientMigrate):
            # No migration labels in these systems: the client re-attaches
            # at the target with its current stamp.
            self.send(sender, MigrateReply(client_id=message.client_id,
                                           label=None))
        elif isinstance(message, BaselinePayload):
            self._on_payload(message)
        elif isinstance(message, StabilizationMsg):
            self._remote_info[message.origin_dc] = message.value
            self._drain_pending()
            self._check_waiters()
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected message {message!r}")

    # ------------------------------------------------------------------
    # client operations
    # ------------------------------------------------------------------

    def _client_read(self, client: str, message: ClientRead) -> None:
        partition = self.store.partition_for(message.key)
        stored_now = partition.get(message.key)
        size = stored_now.value_size if stored_now else 0
        cost = self.cost_model.read_cost(size, self.read_metadata_entries())

        def _done() -> None:
            stored = partition.get(message.key)
            if stored is None:
                self.send(client, ReadReply(client_id=message.client_id,
                                            key=message.key, label=None,
                                            value_size=0))
            else:
                self.send(client, ReadReply(
                    client_id=message.client_id, key=message.key,
                    label=self.read_stamp(message.key, stored),
                    value_size=stored.value_size,
                    version=(stored.label.ts, stored.label.src)))

        partition.cpu.submit(cost, _done)

    def _client_update(self, client: str, message: ClientUpdate) -> None:
        partition = self.store.partition_for(message.key)
        cost = self.cost_model.write_cost(message.value_size,
                                          self.write_metadata_entries())

        def _done() -> None:
            ts = self.make_timestamp(self._stamp_floor(message.label))
            self._update_seq += 1
            label = Label(LabelType.UPDATE, src=f"{self.dc_name}/g0", ts=ts,
                          target=message.key, origin_dc=self.dc_name)
            stamp = self.make_update_stamp(message.label, ts)
            self._store_update(message.key, label, message.value_size, stamp)
            created_at = self.sim.now
            payload = BaselinePayload(label=label, key=message.key,
                                      value_size=message.value_size,
                                      created_at=created_at, stamp=stamp)
            self._ship_update(payload, message.value_size)
            if self.obs is not None:
                self.obs.on_issue(label, created_at, self.dc_name)
            if self.execution_log is not None:
                self.execution_log.record_update(label, self.dc_name, created_at)
            self.send(client, UpdateReply(
                client_id=message.client_id, key=message.key,
                label=self.read_stamp(message.key,
                                      StoredValue(label, message.value_size)),
                version=(label.ts, label.src)))

        partition.cpu.submit(cost, _done)

    def _stamp_floor(self, client_stamp: object) -> Optional[float]:
        """Scalar the new update's timestamp must exceed."""
        raise NotImplementedError

    def _store_update(self, key: str, label: Label, value_size: int,
                      stamp: object) -> None:
        self.store.put(key, StoredValue(label=label, value_size=value_size))

    def _client_attach(self, client: str, message: ClientAttach) -> None:
        def _ok() -> None:
            self.send(client, AttachOk(client_id=message.client_id))

        if message.label is None or self.is_stable(message.label):
            _ok()
        else:
            self._waiters.append((message.label, _ok))

    def _check_waiters(self) -> None:
        if not self._waiters:
            return
        remaining = []
        for stamp, callback in self._waiters:
            if self.is_stable(stamp):
                callback()
            else:
                remaining.append((stamp, callback))
        self._waiters = remaining

    # ------------------------------------------------------------------
    # remote updates
    # ------------------------------------------------------------------

    def _on_payload(self, payload: BaselinePayload) -> None:
        origin = payload.label.origin_dc
        self._pending.setdefault(origin, deque()).append(payload)
        self._drain_pending()

    def _payload_visible(self, payload: BaselinePayload) -> bool:
        """Stability test for a remote update (subclass-specific).

        Dispatch happens smallest-timestamp-first across origin queues and
        visibility is revealed in dispatch order, so a dependency (which
        always carries a smaller timestamp in GentleRain, and is covered by
        the dependency-vector test in Cure) is revealed first."""
        raise NotImplementedError

    def _drain_pending(self) -> None:
        while True:
            candidate: Optional[str] = None
            candidate_ts = float("inf")
            for origin, queue in self._pending.items():
                if not queue:
                    continue
                head = queue[0]
                if head.label.ts < candidate_ts and self._payload_visible(head):
                    candidate = origin
                    candidate_ts = head.label.ts
            if candidate is None:
                return
            payload = self._pending[candidate].popleft()
            self._dispatched_ts[candidate] = payload.label.ts
            self._dispatch(payload)

    def _dispatch(self, payload: BaselinePayload) -> None:
        """Start the storage work; reveal in pipeline order on completion."""
        slot = [payload, False]
        self._pipeline.append(slot)
        partition = self.store.partition_for(payload.key)
        cost = 0.6 * self.cost_model.write_cost(payload.value_size,
                                                self.write_metadata_entries())

        def _done() -> None:
            slot[1] = True
            self._reveal_ready()

        partition.cpu.submit(cost, _done)

    def _reveal_ready(self) -> None:
        while self._pipeline and self._pipeline[0][1]:
            payload, _ = self._pipeline.popleft()
            self._store_update(payload.key, payload.label, payload.value_size,
                               payload.stamp)
            self.updates_applied += 1
            if self.obs is not None:
                self.obs.on_visible(payload.label, self.sim.now, self.dc_name,
                                    self.VISIBILITY_MODE)
            if self.metrics is not None:
                self.metrics.record_visibility(
                    payload.label.origin_dc, self.dc_name,
                    self.sim.now - payload.created_at)
            if self.execution_log is not None:
                self.execution_log.record_visible(payload.label, self.dc_name,
                                                  self.sim.now)
