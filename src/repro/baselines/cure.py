"""Cure baseline [3].

Cure tracks causality with a **vector clock with one entry per datacenter**.
Every update carries its dependency vector; a remote update becomes visible
once the local *stable vector* — built from per-origin stabilization
streams — dominates the update's dependencies.

Consequence (§7.3.1 of the Saturn paper): the visibility lower bound is the
latency from the update's **origin** (much better than GentleRain's furthest
datacenter), but every operation pays vector-sized metadata management,
which shows up as the large throughput penalty of Fig. 5.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.baselines.base import BaselinePayload, StabilizedDatacenter
from repro.core.label import Label
from repro.datacenter.storage import StoredValue

__all__ = ["CureDatacenter", "Vector", "cure_merge", "freeze_vector"]

#: Wire form of a dependency vector: ``(dc, ts)`` pairs sorted by datacenter
#: name.  Plain immutable data — a payload's stamp is shared between the
#: sender's store, the wire, and every receiver's ``_key_vectors``, so a
#: mutable mapping here would let one datacenter silently rewrite another's
#: dependency metadata (and could never be serialized as-is).
Vector = Tuple[Tuple[str, float], ...]


def freeze_vector(entries: Mapping[str, float]) -> Vector:
    """Canonical wire form of a ``{dc: ts}`` mapping."""
    return tuple(sorted(entries.items()))


def cure_merge(a: Optional[Vector], b: Optional[Vector]) -> Optional[Vector]:
    """Client stamp merge: entrywise maximum of dependency vectors."""
    if a is None:
        return b
    if b is None:
        return a
    merged = dict(a)
    for dc, ts in b:
        if ts > merged.get(dc, float("-inf")):
            merged[dc] = ts
    return freeze_vector(merged)


class CureDatacenter(StabilizedDatacenter):
    """A datacenter running the Cure protocol."""

    VISIBILITY_MODE = "cure"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: dependency vector of the currently stored version of each key
        self._key_vectors: Dict[str, Vector] = {}

    def vector_entries(self) -> int:
        return len(self.replication.datacenters)

    def stable_entry(self, dc: str) -> float:
        if dc == self.dc_name:
            return float("inf")  # local updates are immediately visible
        value = self._remote_info.get(dc)
        return float("-inf") if value is None else value

    # -- hook implementations ------------------------------------------------

    def local_stabilization_value(self) -> float:
        return self.clock.timestamp()

    def is_stable(self, stamp: Vector) -> bool:
        return all(self.stable_entry(dc) >= ts for dc, ts in stamp)

    def make_update_stamp(self, client_stamp: Optional[Vector],
                          ts: float) -> Vector:
        stamp = dict(client_stamp) if client_stamp else {}
        stamp[self.dc_name] = ts
        return freeze_vector(stamp)

    def read_stamp(self, key: str, stored: StoredValue) -> Vector:
        vector = self._key_vectors.get(key)
        if vector is None:
            return ((stored.label.origin_dc, stored.label.ts),)
        return vector

    def _stamp_floor(self, client_stamp: Optional[Vector]) -> Optional[float]:
        if not client_stamp:
            return None
        return dict(client_stamp).get(self.dc_name)

    def _store_update(self, key: str, label: Label, value_size: int,
                      stamp: Vector) -> None:
        if self.store.put(key, StoredValue(label=label, value_size=value_size)):
            self._key_vectors[key] = stamp

    def _payload_visible(self, payload: BaselinePayload) -> bool:
        """Dependency-vector test, gated on *revealed* prefixes.

        stable[j] >= deps[j] proves nothing older than deps[j] can still
        arrive from j; additionally every update from j with ts <= deps[j]
        must already be dispatched (per-origin queues are timestamp-ordered,
        and visibility follows dispatch order), otherwise a client could
        read this update before its dependency surfaces."""
        origin = payload.label.origin_dc
        deps: Vector = payload.stamp
        for dc, ts in deps:
            if dc == self.dc_name:
                continue  # local updates are already visible
            if self.stable_entry(dc) < ts:
                return False
            if dc == origin:
                continue  # per-origin FIFO: earlier origin updates precede
            queue = self._pending.get(dc)
            if queue and queue[0].label.ts <= ts:
                return False
        return True
