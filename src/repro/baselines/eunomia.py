"""Eunomia baseline (Gunawardhana, Bravo, Rodrigues — ATC 2017).

Eunomia moves causal-consistency bookkeeping **off the client critical
path**: a per-datacenter *site sequencer* receives every local update
after it has already been acknowledged to the client, folds it into a
site-local total order (timestamps are monotone per site, so arrival
order over the FIFO link *is* timestamp order), and ships it to remote
datacenters in periodic batches together with a *stable floor* — a
promise that no update from this site with a smaller timestamp will
ever be sent again.

Remote updates are revealed by **deferred stabilization**: an update
with timestamp ``t`` becomes visible once every site's stable floor has
passed ``t`` (the same global-cut shape as GentleRain's GST), but the
machinery that advances the floors — sequencing, batching, floor
exchange — runs entirely on the sequencer, so storage partitions pay
neither vector metadata nor periodic stabilization CPU.

Consequences for the five-way comparison (EXPERIMENTS.md):

* throughput tracks *eventual* (scalar metadata, no stabilization tax
  on the partitions) — the paper's "unobtrusive" claim;
* visibility latency resembles GentleRain's furthest-DC bound plus up
  to one sequencer batching interval (``batch_period``), the knob that
  trades staleness for batching efficiency;
* a crashed / isolated sequencer freezes the site's floor: remote
  visibility of its updates stalls (liveness) but causality is never
  violated (safety) — exercised by the ``eunomia-seq-crash`` chaos
  scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.baselines.base import (SCALAR_STAMP_BYTES, BaselinePayload,
                                  stamp_wire_bytes)
from repro.baselines.gentlerain import GentleRainDatacenter
from repro.core.naming import dc_process_name, sequencer_process_name
from repro.core.replication import ReplicationMap
from repro.sim.cpu import CostModel, ServerCPU
from repro.sim.engine import Simulator
from repro.sim.process import Process

__all__ = ["EunomiaDatacenter", "EunomiaSequencer", "EunomiaTick",
           "EunomiaBatch", "eunomia_merge"]


@dataclass(frozen=True, slots=True)
class EunomiaTick:
    """Datacenter -> its sequencer: clock-floor promise.

    ``floor`` was drawn with the monotonic-bump rule, so every update
    the datacenter creates after sending this tick carries ``ts >
    floor`` — and every update with ``ts <= floor`` was sent *before*
    the tick on the same FIFO link, hence has already arrived.
    """

    origin_dc: str
    floor: float


@dataclass(frozen=True, slots=True)
class EunomiaBatch:
    """Sequencer -> remote datacenter: sequenced updates + stable floor.

    ``payloads`` are in site-local total (= timestamp) order and contain
    every buffered update replicated at the destination; ``stable_ts``
    promises that no future batch on this link carries a payload with a
    smaller timestamp.  An empty batch is a pure floor heartbeat.
    """

    origin_dc: str
    payloads: Tuple[BaselinePayload, ...]
    stable_ts: float


def eunomia_merge(a, b):
    """Client stamp merge: maximum observed update timestamp (scalar)."""
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)


class EunomiaSequencer(Process):
    """Site sequencer: orders local updates off the critical path.

    Runs on its own :class:`ServerCPU` — the deferred dependency
    bookkeeping is paid *here*, not on the storage partitions, so an
    overloaded sequencer delays remote visibility without touching
    client-facing throughput.  Ticks and payloads flow through the same
    serial queue, which preserves the FIFO soundness argument above
    even when the sequencer falls behind.
    """

    def __init__(self, sim: Simulator, dc_name: str,
                 replication: ReplicationMap, cost_model: CostModel,
                 batch_period: float = 2.0) -> None:
        super().__init__(sim, sequencer_process_name(dc_name))
        self.dc_name = dc_name
        self.replication = replication
        self.cost_model = cost_model
        self.batch_period = batch_period
        self.cpu = ServerCPU(sim)
        #: sequenced updates awaiting the next batch tick, in ts order
        self._ordered: List[BaselinePayload] = []
        self._stable_floor = 0.0
        self.updates_sequenced = 0
        self.batches_sent = 0
        self.metadata_bytes_sent = 0

    def start(self) -> None:
        self.every(self.batch_period, self._batch_tick)

    def receive(self, sender: str, message) -> None:
        if isinstance(message, BaselinePayload):
            cost = (self.cost_model.scalar_metadata
                    + self.cost_model.vector_entry_metadata
                    * len(self.replication.datacenters))

            def _sequenced(payload=message) -> None:
                self._ordered.append(payload)
                self.updates_sequenced += 1

            self.cpu.submit(cost, _sequenced)
        elif isinstance(message, EunomiaTick):
            def _advance(floor=message.floor) -> None:
                if floor > self._stable_floor:
                    self._stable_floor = floor

            self.cpu.submit(self.cost_model.scalar_metadata, _advance)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected message {message!r}")

    def _batch_tick(self) -> None:
        ordered, self._ordered = self._ordered, []
        per_target: Dict[str, List[BaselinePayload]] = {}
        for payload in ordered:
            for replica in sorted(self.replication.replicas(payload.key)):
                if replica != self.dc_name:
                    per_target.setdefault(replica, []).append(payload)
        stable = self._stable_floor
        for dc in sorted(self.replication.datacenters):
            if dc == self.dc_name:
                continue
            payloads = tuple(per_target.get(dc, ()))
            batch = EunomiaBatch(origin_dc=self.dc_name, payloads=payloads,
                                 stable_ts=stable)
            size = sum(p.value_size for p in payloads)
            self.network.send(self.name, dc_process_name(dc), batch,
                              size_bytes=size)
            self.metadata_bytes_sent += SCALAR_STAMP_BYTES * (1 + len(payloads))
            self.batches_sent += 1


class EunomiaDatacenter(GentleRainDatacenter):
    """A datacenter running the Eunomia protocol.

    Inherits GentleRain's scalar stamps and global-cut stability test
    (``gst() >= ts``); what changes is *where the floors come from*:
    per-site sequencer batches instead of all-to-all stabilization
    rounds, and the rounds' CPU cost disappears from the partitions.
    """

    VISIBILITY_MODE = "eunomia"

    def __init__(self, *args, batch_period: float = 2.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.sequencer = EunomiaSequencer(
            self.sim, self.dc_name, self.replication, self.cost_model,
            batch_period=batch_period)

    # -- wiring ----------------------------------------------------------

    def attach_network(self, network) -> None:
        super().attach_network(network)
        self.sequencer.attach_network(network)
        network.place(self.sequencer.name, self.site)

    def start(self) -> None:
        super().start()
        self.sequencer.start()

    # -- protocol overrides ---------------------------------------------

    def _stabilization_round(self) -> None:
        # Unobtrusive: one local tick to the co-located sequencer; no
        # all-to-all broadcast, no CPU charged to the storage partitions.
        floor = self.clock.timestamp()
        self.send(self.sequencer.name,
                  EunomiaTick(origin_dc=self.dc_name, floor=floor))
        self.metadata_bytes_sent += SCALAR_STAMP_BYTES
        self._drain_pending()
        self._check_waiters()

    def _ship_update(self, payload: BaselinePayload, value_size: int) -> None:
        # Route through the site sequencer (one local FIFO hop); the
        # sequencer fans out to the replicas at the next batch tick.
        self.network.send(self.name, self.sequencer.name, payload,
                          size_bytes=value_size)
        self.metadata_bytes_sent += stamp_wire_bytes(payload.stamp)

    def receive(self, sender: str, message) -> None:
        if isinstance(message, EunomiaBatch):
            self._on_batch(message)
        else:
            super().receive(sender, message)

    def _on_batch(self, batch: EunomiaBatch) -> None:
        for payload in batch.payloads:
            self._on_payload(payload)
        if batch.stable_ts > self._remote_info.get(batch.origin_dc,
                                                   float("-inf")):
            self._remote_info[batch.origin_dc] = batch.stable_ts
        self._drain_pending()
        self._check_waiters()
