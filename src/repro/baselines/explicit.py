"""Explicit dependency-checking baseline (COPS [39] / Eiger [40] style).

Instead of compressing causality into a scalar or vector, these systems
attach an **explicit list of dependencies** — (key, version) pairs — to
every update.  A remote update becomes visible as soon as all of its
dependencies are locally visible: no stabilization rounds, near-optimal
visibility.

The catch, and the reason the Saturn paper rules these designs out for
partial geo-replication (§7.3.1): keeping the list small relies on the
*transitivity prune* — after a client writes, its context collapses to just
that write, because any datacenter applying it must (transitively) have
applied its whole causal past first.  That argument only holds when every
dependency is replicated wherever the write goes:

* ``prune_on_write=True``  — classic COPS.  Metadata stays tiny, but under
  partial replication the transitive chain can pass through an item a
  datacenter does not replicate, silently dropping dependencies — the
  offline checker catches the resulting causal violations.
* ``prune_on_write=False`` — safe under partial replication, but the
  client's dependency list grows with every operation ("potentially up to
  the entire database"), and so do message sizes and check costs.

``benchmarks/test_explicit_dependencies.py`` measures both failure modes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.label import Label, LabelType
from repro.core.replication import ReplicationMap
from repro.core.naming import dc_process_name
from repro.datacenter.messages import (AttachOk, ClientAttach, ClientMigrate,
                                       ClientRead, ClientUpdate, MigrateReply,
                                       ReadReply, UpdateReply)
from repro.datacenter.storage import PartitionedStore, StoredValue
from repro.sim.clock import PhysicalClock
from repro.sim.cpu import CostModel
from repro.sim.engine import Simulator
from repro.sim.process import Process

__all__ = ["ExplicitDatacenter", "ExplicitPayload", "DepContext",
           "explicit_merge"]

Version = Tuple[float, str]
Dependency = Tuple[str, Version]  # (key, version)


@dataclass(frozen=True, slots=True)
class DepContext:
    """A client's causal context: explicit dependencies.

    ``replace=True`` marks a context returned by a write under the
    transitivity prune: it supersedes everything the client held before.
    """

    deps: FrozenSet[Dependency]
    replace: bool = False

    def __len__(self) -> int:
        return len(self.deps)


def explicit_merge(a: Optional[DepContext],
                   b: Optional[DepContext]) -> Optional[DepContext]:
    """Client stamp merge: union, unless the new context replaces (COPS
    collapses the context to the last write)."""
    if b is None:
        return a
    if a is None or b.replace:
        return DepContext(deps=b.deps, replace=False)
    return DepContext(deps=a.deps | b.deps, replace=False)


@dataclass(frozen=True, slots=True)
class ExplicitPayload:
    """Replicated update carrying its explicit dependency list."""

    label: Label
    key: str
    value_size: int
    created_at: float
    deps: FrozenSet[Dependency]


class ExplicitDatacenter(Process):
    """A datacenter running COPS-style explicit dependency checking."""

    def __init__(self, sim: Simulator, name: str, site: str,
                 replication: ReplicationMap, cost_model: CostModel,
                 clock: PhysicalClock, num_partitions: int = 2,
                 prune_on_write: bool = True,
                 metrics=None, execution_log=None) -> None:
        super().__init__(sim, dc_process_name(name))
        self.dc_name = name
        self.site = site
        self.replication = replication
        self.cost_model = cost_model
        self.clock = clock
        self.prune_on_write = prune_on_write
        self.metrics = metrics
        self.execution_log = execution_log
        self.store = PartitionedStore(sim, num_partitions)
        #: payloads blocked on a dependency, indexed by the missing (key,
        #: version) they are waiting for
        self._blocked: Dict[Dependency, List[ExplicitPayload]] = defaultdict(list)
        self._visible_versions: Dict[str, Version] = {}
        self.updates_applied = 0
        #: statistics: sizes of dependency lists shipped with updates
        self.dep_list_sizes: List[int] = []

    def start(self) -> None:
        """No background machinery: dependency checks happen on arrival."""

    # ------------------------------------------------------------------

    def receive(self, sender: str, message) -> None:
        if isinstance(message, ClientRead):
            self._client_read(sender, message)
        elif isinstance(message, ClientUpdate):
            self._client_update(sender, message)
        elif isinstance(message, ClientAttach):
            # dependency contexts are checked per-operation; attach is a
            # no-op (COPS has no attach — sessions carry their context)
            self.send(sender, AttachOk(client_id=message.client_id))
        elif isinstance(message, ClientMigrate):
            self.send(sender, MigrateReply(client_id=message.client_id,
                                           label=None))
        elif isinstance(message, ExplicitPayload):
            self._on_payload(message)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected message {message!r}")

    # ------------------------------------------------------------------
    # client operations
    # ------------------------------------------------------------------

    def _dep_cost(self, deps_count: int) -> float:
        """Explicit metadata cost: proportional to the dependency list."""
        return self.cost_model.vector_entry_metadata * deps_count

    def _client_read(self, client: str, message: ClientRead) -> None:
        partition = self.store.partition_for(message.key)
        stored_now = partition.get(message.key)
        size = stored_now.value_size if stored_now else 0
        cost = (self.cost_model.read_base + self.cost_model.per_byte * size)

        def _done() -> None:
            stored = partition.get(message.key)
            if stored is None:
                self.send(client, ReadReply(client_id=message.client_id,
                                            key=message.key, label=None,
                                            value_size=0))
                return
            version = (stored.label.ts, stored.label.src)
            context = DepContext(deps=frozenset({(message.key, version)}))
            self.send(client, ReadReply(
                client_id=message.client_id, key=message.key, label=context,
                value_size=stored.value_size, version=version))

        partition.cpu.submit(cost, _done)

    def _client_update(self, client: str, message: ClientUpdate) -> None:
        partition = self.store.partition_for(message.key)
        context: Optional[DepContext] = message.label
        deps = context.deps if context else frozenset()
        cost = (self.cost_model.write_base
                + self.cost_model.per_byte * message.value_size
                + self._dep_cost(len(deps)))

        def _done() -> None:
            ts = self.clock.timestamp()
            label = Label(LabelType.UPDATE, src=f"{self.dc_name}/g0", ts=ts,
                          target=message.key, origin_dc=self.dc_name)
            version = (ts, label.src)
            self._install(message.key, label, message.value_size)
            self.dep_list_sizes.append(len(deps))
            payload = ExplicitPayload(label=label, key=message.key,
                                      value_size=message.value_size,
                                      created_at=self.sim.now, deps=deps)
            for replica in sorted(self.replication.replicas(message.key)):
                if replica != self.dc_name:
                    self.network.send(
                        self.name, dc_process_name(replica), payload,
                        size_bytes=message.value_size + 16 * len(deps))
            if self.execution_log is not None:
                self.execution_log.record_update(label, self.dc_name,
                                                 self.sim.now)
            if self.prune_on_write:
                # transitivity prune: the new write dominates the context
                new_context = DepContext(
                    deps=frozenset({(message.key, version)}), replace=True)
            else:
                new_context = DepContext(
                    deps=deps | {(message.key, version)})
            self.send(client, UpdateReply(client_id=message.client_id,
                                          key=message.key, label=new_context,
                                          version=version))

        partition.cpu.submit(cost, _done)

    # ------------------------------------------------------------------
    # remote updates: dependency checking
    # ------------------------------------------------------------------

    def _dep_satisfied(self, dep: Dependency) -> bool:
        key, version = dep
        if not self.replication.is_replicated_at(key, self.dc_name):
            return True  # cannot check items we do not replicate
        seen = self._visible_versions.get(key)
        return seen is not None and seen >= version

    def _on_payload(self, payload: ExplicitPayload) -> None:
        missing = [dep for dep in payload.deps
                   if not self._dep_satisfied(dep)]
        if missing:
            self._blocked[missing[0]].append(payload)
        else:
            self._apply(payload)

    def _apply(self, payload: ExplicitPayload) -> None:
        partition = self.store.partition_for(payload.key)
        cost = (0.6 * self.cost_model.write_base
                + self._dep_cost(len(payload.deps)))

        def _done() -> None:
            self._install(payload.key, payload.label, payload.value_size)
            self.updates_applied += 1
            if self.metrics is not None:
                self.metrics.record_visibility(
                    payload.label.origin_dc, self.dc_name,
                    self.sim.now - payload.created_at)
            if self.execution_log is not None:
                self.execution_log.record_visible(payload.label, self.dc_name,
                                                  self.sim.now)

        partition.cpu.submit(cost, _done)

    def _install(self, key: str, label: Label, value_size: int) -> None:
        self.store.put(key, StoredValue(label=label, value_size=value_size))
        version = (label.ts, label.src)
        current = self._visible_versions.get(key)
        if current is None or version > current:
            self._visible_versions[key] = version
        self._unblock((key, version))

    def _unblock(self, satisfied: Dependency) -> None:
        """Re-check payloads that were waiting on (a version <=) this one."""
        key, version = satisfied
        ready: List[ExplicitPayload] = []
        for dep in [d for d in self._blocked
                    if d[0] == key and d[1] <= version]:
            ready.extend(self._blocked.pop(dep))
        for payload in ready:
            self._on_payload(payload)

    # ------------------------------------------------------------------

    def mean_dep_list_size(self) -> float:
        if not self.dep_list_sizes:
            return 0.0
        return sum(self.dep_list_sizes) / len(self.dep_list_sizes)

    def blocked_count(self) -> int:
        return sum(len(v) for v in self._blocked.values())
