"""GentleRain baseline [26].

GentleRain compresses causal metadata into a **single scalar**: every update
carries its origin physical timestamp ``ut``, and a remote update becomes
visible once the *Global Stable Time* — the minimum of the latest known
timestamps of every partition in every datacenter — has passed ``ut``.

Consequence (§7.3.1 of the Saturn paper): the visibility lower bound is the
latency to the **furthest** datacenter regardless of the update's origin,
because GST cannot advance past the slowest stabilization stream.  The
stabilization mechanism runs every 5 ms and its CPU cost is charged to every
partition.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.base import BaselinePayload, StabilizedDatacenter
from repro.datacenter.storage import StoredValue

__all__ = ["GentleRainDatacenter", "gentlerain_merge"]


def gentlerain_merge(a: Optional[float], b: Optional[float]) -> Optional[float]:
    """Client stamp merge: maximum observed update timestamp."""
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)


class GentleRainDatacenter(StabilizedDatacenter):
    """A datacenter running the GentleRain protocol."""

    VISIBILITY_MODE = "gentlerain"

    def gst(self) -> float:
        """Global Stable Time as currently known at this datacenter."""
        values = []
        for dc in self.replication.datacenters:
            if dc == self.dc_name:
                continue
            value = self._remote_info.get(dc)
            if value is None:
                return float("-inf")
            values.append(value)
        if not values:
            return float("inf")
        return min(values)

    # -- hook implementations ------------------------------------------------

    def local_stabilization_value(self) -> float:
        # timestamp() bumps the monotonic floor: a promise that every future
        # local update will carry a strictly larger ut (the partition LST).
        return self.clock.timestamp()

    def is_stable(self, stamp: float) -> bool:
        return self.gst() >= stamp

    def make_update_stamp(self, client_stamp: Optional[float],
                          ts: float) -> float:
        return ts

    def read_stamp(self, key: str, stored: StoredValue) -> float:
        return stored.label.ts

    def _stamp_floor(self, client_stamp: Optional[float]) -> Optional[float]:
        return client_stamp

    def _payload_visible(self, payload: BaselinePayload) -> bool:
        return self.gst() >= payload.label.ts
