"""Okapi baseline (Didona, Fatourou, Guerraoui, Wang, Zwaenepoel).

Okapi tracks causality with a **vector of Hybrid Logical/Physical
Clocks** (HLC, Kulkarni et al.): one entry per datacenter, each entry
an HLC value.  The hybrid clock follows physical time while it
advances, and falls back to logical increments when it stalls or when
a remote timestamp from a skewed clock runs ahead — so causal order
never depends on clock synchronization quality (exercised by the
``okapi-clock-skew`` chaos scenario).

Stabilization uses the **global-cut rule**: every round, each
datacenter broadcasts its *knowledge row* — the highest HLC it has
received from every origin, plus its own clock floor — and assembles
the rows into a knowledge matrix.  The Global Stable Vector is the
column-wise minimum: ``gsv(k)`` is an HLC below which updates from
``k`` have reached *every* datacenter.  An update is revealed once the
GSV dominates its dependency vector.

Consequences for the five-way comparison (EXPERIMENTS.md), per §7.3.1
of the Saturn paper's taxonomy:

* the global cut is **cheaper** than Cure's per-origin streams — one
  aggregated exchange serves all partitions, so the periodic CPU tax
  lands on a single partition instead of all of them — but **less
  fresh**: visibility waits for the slowest datacenter to confirm
  receipt, roughly the slowest origin->peer->here relay plus a
  stabilization round, regardless of the update's origin;
* metadata is vector-sized on every operation, like Cure, so the
  throughput penalty of vector handling remains.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.baselines.base import (VECTOR_ENTRY_BYTES, BaselinePayload)
from repro.baselines.cure import CureDatacenter, Vector, freeze_vector
from repro.core.naming import dc_process_name
from repro.sim.clock import PhysicalClock

__all__ = ["OkapiDatacenter", "OkapiStabMsg", "HybridClock"]


@dataclass(frozen=True, slots=True)
class OkapiStabMsg:
    """One knowledge row: the sender's highest received HLC per origin.

    The sender's own entry is its clock floor (a promise that every
    future update it creates carries a strictly larger HLC).
    """

    origin_dc: str
    # structurally Vector (cure.py); spelled out so the wire audit can
    # check plainness without cross-module alias resolution
    entries: Tuple[Tuple[str, float], ...]


class HybridClock:
    """Hybrid logical/physical clock encoded into one float.

    The HLC pair ``(l, c)`` is packed as ``l + c * LOGICAL_TICK``: the
    physical part dominates while physical time advances; when it
    stalls — or a remote timestamp runs ahead of it — the logical
    component bumps by ``LOGICAL_TICK`` (three orders of magnitude
    below the physical clock's own 1e-6 monotonicity quantum, so
    logical increments never masquerade as physical progress).
    Monotonicity therefore survives arbitrary skew, including a skew
    spike being *removed* mid-run (``resync``).
    """

    LOGICAL_TICK = 1e-9

    def __init__(self, physical: PhysicalClock) -> None:
        self.physical = physical
        self._last = float("-inf")
        #: diagnostics: timestamps where the logical part outran physical
        self.logical_bumps = 0

    def timestamp(self, at_least: Optional[float] = None) -> float:
        """Strictly increasing HLC, ``> at_least`` if given."""
        floor = self._last
        if at_least is not None and at_least > floor:
            floor = at_least
        candidate = self.physical.now()
        if candidate <= floor:
            candidate = max(floor + self.LOGICAL_TICK,
                            math.nextafter(floor, math.inf))
            self.logical_bumps += 1
        self._last = candidate
        return candidate

    def observe(self, ts: float) -> None:
        """Merge a received HLC: future timestamps exceed it."""
        if ts > self._last:
            self._last = ts


class OkapiDatacenter(CureDatacenter):
    """A datacenter running the Okapi protocol.

    Inherits Cure's vector stamps, pending-queue discipline, and
    dependency-vector visibility test; what changes is the *stable
    frontier* those tests consult — the column-minimum of the knowledge
    matrix (global cut) instead of per-origin stabilization streams —
    and the clock that mints timestamps (HLC instead of raw physical).
    """

    VISIBILITY_MODE = "okapi"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.hlc = HybridClock(self.clock)
        #: knowledge matrix: observer datacenter -> origin -> highest HLC
        self._matrix: Dict[str, Dict[str, float]] = {}
        #: own knowledge row: highest HLC received per remote origin
        self._received: Dict[str, float] = {}

    # -- timestamps ------------------------------------------------------

    def make_timestamp(self, floor: Optional[float]) -> float:
        return self.hlc.timestamp(at_least=floor)

    # -- stable frontier: global cut ------------------------------------

    def gsv(self, origin: str) -> float:
        """Global Stable Vector entry: an HLC below which updates from
        *origin* have provably reached every datacenter."""
        worst = self._received.get(origin, float("-inf"))
        for observer in self.replication.datacenters:
            if observer == self.dc_name:
                continue
            row = self._matrix.get(observer)
            value = row.get(origin, float("-inf")) if row else float("-inf")
            if value < worst:
                worst = value
        return worst

    def stable_entry(self, dc: str) -> float:
        if dc == self.dc_name:
            return float("inf")  # local updates are immediately visible
        return self.gsv(dc)

    # -- stabilization ---------------------------------------------------

    def _knowledge_row(self) -> Vector:
        row = dict(self._received)
        # own entry: clock-floor promise (bumps the HLC, so every future
        # local update carries a strictly larger timestamp)
        row[self.dc_name] = self.hlc.timestamp()
        return freeze_vector(row)

    def _stabilization_round(self) -> None:
        row = self._knowledge_row()
        message = OkapiStabMsg(origin_dc=self.dc_name, entries=row)
        partners = 0
        for dc in self.replication.datacenters:
            if dc != self.dc_name:
                self.send(dc_process_name(dc), message)
                partners += 1
        self.metadata_bytes_sent += partners * VECTOR_ENTRY_BYTES * len(row)
        # the cheaper global-cut rule: one aggregated exchange serves the
        # whole datacenter, so the periodic CPU tax lands on a single
        # partition instead of every one of them (contrast base class)
        cost = self.cost_model.stabilization_cost(partners,
                                                  self.vector_entries())
        self.store.partitions[0].cpu.consume(cost)
        self._drain_pending()
        self._check_waiters()

    # -- message handling ------------------------------------------------

    def receive(self, sender: str, message) -> None:
        if isinstance(message, OkapiStabMsg):
            row = dict(message.entries)
            self._matrix[message.origin_dc] = row
            # The sender's own entry is its clock floor: on this FIFO
            # link every payload with a smaller HLC has already arrived,
            # so the floor also advances *our* knowledge of that origin.
            # Without this, a datacenter that replicates none of an
            # origin's keys would pin the GSV at -inf forever (genuine
            # partial replication would lose liveness).
            floor = row.get(message.origin_dc)
            if floor is not None and floor > self._received.get(
                    message.origin_dc, float("-inf")):
                self._received[message.origin_dc] = floor
            self._drain_pending()
            self._check_waiters()
        else:
            super().receive(sender, message)

    def _on_payload(self, payload: BaselinePayload) -> None:
        # HLC merge: local timestamps move past everything observed, so
        # causal order survives arbitrary physical-clock skew
        self.hlc.observe(payload.label.ts)
        origin = payload.label.origin_dc
        if payload.label.ts > self._received.get(origin, float("-inf")):
            self._received[origin] = payload.label.ts
        super()._on_payload(payload)
