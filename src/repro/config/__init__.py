"""Saturn configuration: Table 1 latencies, the Definition 1/2 objective,
the per-tree solver, and the Algorithm 3 generator."""

from repro.config.latencies import EC2_LATENCIES, EC2_REGIONS, ec2_latency, ec2_latency_model
from repro.config.objective import (optimal_visibility_time,
                                    pair_weights_from_replication,
                                    weighted_mismatch)
from repro.config.placement import (enumerate_insertions, find_configuration,
                                    fuse_topology)
from repro.config.solver import SolvedTree, TreeShape, optimize_delays, solve_tree

__all__ = [
    "EC2_LATENCIES", "EC2_REGIONS", "ec2_latency", "ec2_latency_model",
    "optimal_visibility_time", "pair_weights_from_replication",
    "weighted_mismatch", "enumerate_insertions", "find_configuration",
    "fuse_topology", "SolvedTree", "TreeShape", "optimize_delays",
    "solve_tree",
]
