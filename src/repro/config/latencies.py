"""Table 1 of the paper: average one-way latencies (half RTT, ms) measured
between the seven Amazon EC2 regions used in the evaluation."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.sim.network import LatencyModel

__all__ = ["EC2_REGIONS", "EC2_LATENCIES", "ec2_latency_model", "ec2_latency"]

#: N. Virginia, N. California, Oregon, Ireland, Frankfurt, Tokyo, Sydney
EC2_REGIONS: List[str] = ["NV", "NC", "O", "I", "F", "T", "S"]

#: one-way latency in ms between region pairs (Table 1)
EC2_LATENCIES: Dict[Tuple[str, str], float] = {
    ("NV", "NC"): 37.0, ("NV", "O"): 49.0, ("NV", "I"): 41.0,
    ("NV", "F"): 45.0, ("NV", "T"): 73.0, ("NV", "S"): 115.0,
    ("NC", "O"): 10.0, ("NC", "I"): 74.0, ("NC", "F"): 84.0,
    ("NC", "T"): 52.0, ("NC", "S"): 79.0,
    ("O", "I"): 69.0, ("O", "F"): 79.0, ("O", "T"): 45.0, ("O", "S"): 81.0,
    ("I", "F"): 10.0, ("I", "T"): 107.0, ("I", "S"): 154.0,
    ("F", "T"): 118.0, ("F", "S"): 161.0,
    ("T", "S"): 52.0,
}


def ec2_latency(a: str, b: str) -> float:
    """One-way latency between two EC2 regions (0 for a == b)."""
    if a == b:
        return 0.0
    if (a, b) in EC2_LATENCIES:
        return EC2_LATENCIES[(a, b)]
    if (b, a) in EC2_LATENCIES:
        return EC2_LATENCIES[(b, a)]
    raise KeyError(f"unknown region pair ({a}, {b})")


def ec2_latency_model(local_latency: float = 0.5) -> LatencyModel:
    """A :class:`LatencyModel` loaded with Table 1."""
    model = LatencyModel(local_latency=local_latency)
    for (a, b), latency in EC2_LATENCIES.items():
        model.set(a, b, latency)
    return model
