"""Optimal visibility time and the Weighted Minimal Mismatch objective
(Definitions 1 and 2, §5.2/§5.4).

For a pair of datacenters (i, j) the *optimal* label propagation latency is
the bulk-data transfer latency Δ(i, j): delivering the label earlier creates
premature false dependencies, delivering it later sacrifices data freshness.
Given a serializer topology, the achieved metadata-path latency is
ΛM(i, j); the objective sums the weighted absolute mismatch over all pairs.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

from repro.core.replication import ReplicationMap
from repro.core.tree import TreeTopology

__all__ = [
    "optimal_visibility_time",
    "pair_weights_from_replication",
    "weighted_mismatch",
]


def optimal_visibility_time(created_at: float, origin: str, replica: str,
                            latency: Callable[[str, str], float],
                            dependency_times: Iterable[float] = ()) -> float:
    """Definition 1: earliest expected time update *i* can apply at
    *replica* — its own arrival time or the latest of its causal past's
    optimal visibility times, whichever is later."""
    own = created_at + latency(origin, replica)
    latest_dep = max(dependency_times, default=float("-inf"))
    return max(own, latest_dep)


def pair_weights_from_replication(replication: ReplicationMap) -> Dict[Tuple[str, str], float]:
    """Weights c_ij proportional to the number of groups two datacenters
    share — paths carrying more replicated data matter more (§5.4)."""
    weights: Dict[Tuple[str, str], float] = {}
    datacenters = replication.datacenters
    groups = replication.groups()
    for i in datacenters:
        for j in datacenters:
            if i == j:
                continue
            if groups:
                shared = sum(1 for replicas in groups.values()
                             if i in replicas and j in replicas)
            else:
                shared = 1
            weights[(i, j)] = float(shared)
    return weights


def weighted_mismatch(topology: TreeTopology,
                      dc_sites: Dict[str, str],
                      latency: Callable[[str, str], float],
                      weights: Optional[Dict[Tuple[str, str], float]] = None,
                      bulk_latency: Optional[Callable[[str, str], float]] = None) -> float:
    """Definition 2: Σ c_ij · |ΛM(i, j) − Δ(i, j)| over ordered pairs.

    *latency* prices the metadata links (serializer hops); *bulk_latency*
    is the bulk-data transfer delay Δ (defaults to the same function, but
    the paper notes bulk data is not necessarily sent through the shortest
    path, in which case Saturn adds artificial delays)."""
    if bulk_latency is None:
        bulk_latency = latency
    total = 0.0
    datacenters = topology.datacenters
    for i in datacenters:
        for j in datacenters:
            if i == j:
                continue
            weight = 1.0 if weights is None else weights.get((i, j), 0.0)
            if weight == 0.0:
                continue
            achieved = topology.path_latency(i, j, latency, dc_sites)
            optimal = bulk_latency(dc_sites[i], dc_sites[j])
            total += weight * abs(achieved - optimal)
    return total
