"""Configuration generator (Algorithm 3, §5.5).

Finding the configuration minimizing the Weighted Minimal Mismatch is
NP-hard (reduction from Steiner tree), so the paper searches the space of
full binary trees with N labeled leaves incrementally: starting from the
two-leaf tree, each iteration inserts the next datacenter into every
possible position of every surviving tree (2f−1 isomorphism classes per
tree of f leaves), ranks the candidates with the per-tree solver, and
discards trees whose ranking falls more than a threshold behind their
predecessor (beam filtering, to avoid the 2,027,025-tree explosion at nine
datacenters).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config.solver import SolvedTree, TreeShape, solve_tree
from repro.core.tree import TreeTopology

__all__ = ["find_configuration", "enumerate_insertions", "fuse_topology"]

# rooted full binary tree: ("leaf", dc) | ("node", left, right)
_BinTree = tuple


def _leaf(dc: str) -> _BinTree:
    return ("leaf", dc)


def _node(left: _BinTree, right: _BinTree) -> _BinTree:
    return ("node", left, right)


def enumerate_insertions(tree: _BinTree, dc: str) -> List[_BinTree]:
    """All full binary trees obtained by hanging a new leaf *dc* off *tree*.

    Replacing any subtree ``t`` (including the root, which yields the
    NEW_ROOTED variant of Alg. 3) with ``node(leaf(dc), t)`` enumerates all
    2f−1 isomorphism classes of trees with one more leaf.
    """
    results = [_node(_leaf(dc), tree)]
    if tree[0] == "node":
        _, left, right = tree
        results.extend(_node(variant, right)
                       for variant in enumerate_insertions(left, dc))
        results.extend(_node(left, variant)
                       for variant in enumerate_insertions(right, dc))
    return results


def _tree_to_shape(tree: _BinTree) -> TreeShape:
    """Internal nodes become serializers; each leaf attaches to its parent."""
    internal: List[str] = []
    edges: List[Tuple[str, str]] = []
    attachments: List[Tuple[str, str]] = []
    counter = [0]

    def walk(node: _BinTree) -> Optional[str]:
        """Returns the serializer name for internal nodes, None for leaves."""
        if node[0] == "leaf":
            return None
        name = f"s{counter[0]}"
        counter[0] += 1
        internal.append(name)
        _, left, right = node
        for child in (left, right):
            child_name = walk(child)
            if child_name is None:
                attachments.append((child[1], name))
            else:
                edges.append((name, child_name))
        return name

    root = walk(tree)
    if root is None:
        raise ValueError("tree must have at least two leaves")
    return TreeShape(internal_nodes=tuple(internal), edges=tuple(edges),
                     attachments=tuple(attachments))


def find_configuration(datacenters: Sequence[str],
                       dc_sites: Dict[str, str],
                       latency: Callable[[str, str], float],
                       candidate_sites: Optional[Sequence[str]] = None,
                       weights: Optional[Dict[Tuple[str, str], float]] = None,
                       threshold: float = 50.0,
                       beam_width: int = 10,
                       bulk_latency: Optional[Callable[[str, str], float]] = None) -> SolvedTree:
    """Algorithm 3: beam search over tree shapes, returning the best solved
    configuration (the paper's M-configuration)."""
    datacenters = list(datacenters)
    if len(datacenters) < 2:
        raise ValueError("need at least two datacenters")
    if candidate_sites is None:
        # every datacenter site is a natural serializer location (§5.4)
        candidate_sites = sorted({dc_sites[dc] for dc in datacenters})

    def solve(tree: _BinTree) -> SolvedTree:
        return solve_tree(_tree_to_shape(tree), dc_sites, candidate_sites,
                          latency, weights, bulk_latency=bulk_latency)

    first, second, *rest = datacenters
    beam: List[Tuple[_BinTree, SolvedTree]] = [
        (_node(_leaf(first), _leaf(second)),
         solve(_node(_leaf(first), _leaf(second))))]
    for next_dc in rest:
        candidates: List[Tuple[_BinTree, SolvedTree]] = []
        for tree, _ in beam:
            for variant in enumerate_insertions(tree, next_dc):
                candidates.append((variant, solve(variant)))
        candidates.sort(key=lambda entry: entry[1].score)
        # FILTER: drop everything after a ranking gap larger than threshold
        filtered = [candidates[0]]
        for previous, current in zip(candidates, candidates[1:]):
            if current[1].score - previous[1].score > threshold:
                break
            filtered.append(current)
            if len(filtered) >= beam_width:
                break
        beam = filtered
    return beam[0][1]


def fuse_topology(topology: TreeTopology, tolerance: float = 1e-6) -> TreeTopology:
    """Fuse directly connected serializers that share a location and have no
    artificial delay between them (§5.5): the tree need not stay binary."""
    parent: Dict[str, str] = {s: s for s in topology.serializer_sites}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for a, b in topology.edges:
        same_site = topology.serializer_sites[a] == topology.serializer_sites[b]
        no_delay = (topology.delay(a, b) <= tolerance
                    and topology.delay(b, a) <= tolerance)
        if same_site and no_delay:
            parent[find(a)] = find(b)

    representatives = sorted({find(s) for s in topology.serializer_sites})
    if len(representatives) == len(topology.serializer_sites):
        return topology
    edges = []
    delays = {}
    for a, b in topology.edges:
        ra, rb = find(a), find(b)
        if ra != rb:
            edges.append((ra, rb))
            delay_ab = topology.delay(a, b)
            delay_ba = topology.delay(b, a)
            if delay_ab:
                delays[(ra, rb)] = delay_ab
            if delay_ba:
                delays[(rb, ra)] = delay_ba
    attachments = {dc: find(s) for dc, s in topology.attachments.items()}
    return TreeTopology(
        serializer_sites={s: topology.serializer_sites[s]
                          for s in representatives},
        edges=edges,
        attachments=attachments,
        delays=delays,
    )
