"""Per-tree configuration solver (the "constraint solver" of §5.5).

The paper models Definition 2 as a constraint problem solved with OscaR:
given a tree *shape*, find the optimal serializer locations (from a set of
candidate sites) and the optimal artificial propagation delays.  We solve
the same problem in two stages:

1. **Placement** — coordinate descent over internal nodes, trying every
   candidate site.  Because artificial delays can only *add* latency, the
   placement objective penalizes overshoot (ΛM > Δ) at full weight and
   undershoot at a discount (it may later be fixed by delays).
2. **Delays** — with sites fixed, choosing per-directed-edge delays that
   minimize Σ c_ij |P_ij + Σ_e δ_e − Δ_ij| is an L1 regression with
   non-negativity constraints: a small linear program, solved exactly with
   ``scipy.optimize.linprog`` (an iterative projected-subgradient fallback
   is used if SciPy is unavailable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config.objective import weighted_mismatch
from repro.core.tree import TreeTopology

try:  # pragma: no cover - exercised implicitly
    from scipy.optimize import linprog
    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover
    _HAVE_SCIPY = False

__all__ = ["TreeShape", "solve_tree", "SolvedTree", "optimize_delays"]


@dataclass(frozen=True)
class TreeShape:
    """A tree *shape*: internal nodes, internal edges, leaf attachments.

    Sites are not yet assigned — that is the solver's job.
    """

    internal_nodes: Tuple[str, ...]
    edges: Tuple[Tuple[str, str], ...]
    attachments: Tuple[Tuple[str, str], ...]  # (datacenter, internal node)

    def to_topology(self, sites: Dict[str, str],
                    delays: Optional[Dict[Tuple[str, str], float]] = None) -> TreeTopology:
        return TreeTopology(
            serializer_sites={node: sites[node] for node in self.internal_nodes},
            edges=list(self.edges),
            attachments=dict(self.attachments),
            delays=dict(delays or {}),
        )


@dataclass
class SolvedTree:
    """Solver output: a fully configured topology and its mismatch score."""

    topology: TreeTopology
    score: float


# ---------------------------------------------------------------------------
# placement
# ---------------------------------------------------------------------------

def _placement_cost(shape: TreeShape, sites: Dict[str, str],
                    dc_sites: Dict[str, str],
                    latency: Callable[[str, str], float],
                    weights: Optional[Dict[Tuple[str, str], float]],
                    bulk_latency: Callable[[str, str], float],
                    undershoot_discount: float = 0.3) -> float:
    topology = shape.to_topology(sites)
    total = 0.0
    for i in topology.datacenters:
        for j in topology.datacenters:
            if i == j:
                continue
            weight = 1.0 if weights is None else weights.get((i, j), 0.0)
            if weight == 0.0:
                continue
            achieved = topology.path_latency(i, j, latency, dc_sites)
            optimal = bulk_latency(dc_sites[i], dc_sites[j])
            gap = achieved - optimal
            total += weight * (gap if gap > 0 else -gap * undershoot_discount)
    return total


def _optimize_placement(shape: TreeShape, dc_sites: Dict[str, str],
                        candidate_sites: Sequence[str],
                        latency: Callable[[str, str], float],
                        weights: Optional[Dict[Tuple[str, str], float]],
                        bulk_latency: Callable[[str, str], float],
                        max_rounds: int = 4) -> Dict[str, str]:
    # initialize each internal node at the site of one of its attached
    # datacenters (or the first candidate)
    attached: Dict[str, List[str]] = {}
    for dc, node in shape.attachments:
        attached.setdefault(node, []).append(dc)
    sites = {}
    for node in shape.internal_nodes:
        if node in attached:
            sites[node] = dc_sites[sorted(attached[node])[0]]
        else:
            sites[node] = candidate_sites[0]
    best_cost = _placement_cost(shape, sites, dc_sites, latency, weights,
                                bulk_latency)
    for _ in range(max_rounds):
        improved = False
        for node in shape.internal_nodes:
            current = sites[node]
            for candidate in candidate_sites:
                if candidate == current:
                    continue
                sites[node] = candidate
                cost = _placement_cost(shape, sites, dc_sites, latency,
                                       weights, bulk_latency)
                if cost < best_cost - 1e-9:
                    best_cost = cost
                    current = candidate
                    improved = True
                else:
                    sites[node] = current
        if not improved:
            break
    return sites


# ---------------------------------------------------------------------------
# delays
# ---------------------------------------------------------------------------

def _optimize_delays(topology: TreeTopology, dc_sites: Dict[str, str],
                     latency: Callable[[str, str], float],
                     weights: Optional[Dict[Tuple[str, str], float]],
                     bulk_latency: Callable[[str, str], float]) -> Dict[Tuple[str, str], float]:
    """Exact L1-optimal non-negative per-directed-edge delays."""
    directed_edges: List[Tuple[str, str]] = []
    for a, b in topology.edges:
        directed_edges.append((a, b))
        directed_edges.append((b, a))
    if not directed_edges:
        return {}
    edge_index = {edge: k for k, edge in enumerate(directed_edges)}

    pairs: List[Tuple[float, float, List[int]]] = []  # (weight, gap, edges)
    datacenters = topology.datacenters
    for i in datacenters:
        for j in datacenters:
            if i == j:
                continue
            weight = 1.0 if weights is None else weights.get((i, j), 0.0)
            if weight == 0.0:
                continue
            base = topology.path_latency(i, j, latency, dc_sites)
            optimal = bulk_latency(dc_sites[i], dc_sites[j])
            path = topology.serializer_path(i, j)
            edges = [edge_index[(a, b)] for a, b in zip(path, path[1:])]
            # gap to make up with delays (negative = undershoot)
            pairs.append((weight, optimal - base, edges))

    if _HAVE_SCIPY:
        return _solve_delays_lp(directed_edges, pairs)
    return _solve_delays_greedy(directed_edges, pairs)


def _solve_delays_lp(directed_edges: List[Tuple[str, str]],
                     pairs: List[Tuple[float, float, List[int]]]) -> Dict[Tuple[str, str], float]:
    num_edges = len(directed_edges)
    num_pairs = len(pairs)
    if num_pairs == 0:
        return {}
    # variables: [delta_0..delta_E-1, u_0..u_P-1]
    num_vars = num_edges + num_pairs
    c = [0.0] * num_edges + [weight for weight, _, _ in pairs]
    a_ub: List[List[float]] = []
    b_ub: List[float] = []
    for p, (_, gap, edges) in enumerate(pairs):
        # u_p >= sum(delta_e) - gap   ->   sum(delta) - u_p <= gap
        row = [0.0] * num_vars
        for e in edges:
            row[e] = 1.0
        row[num_edges + p] = -1.0
        a_ub.append(row)
        b_ub.append(gap)
        # u_p >= gap - sum(delta_e)   ->  -sum(delta) - u_p <= -gap
        row = [0.0] * num_vars
        for e in edges:
            row[e] = -1.0
        row[num_edges + p] = -1.0
        a_ub.append(row)
        b_ub.append(-gap)
    result = linprog(c, A_ub=a_ub, b_ub=b_ub,
                     bounds=[(0, None)] * num_vars, method="highs")
    if not result.success:  # pragma: no cover - LP is always feasible
        return _solve_delays_greedy(directed_edges, pairs)
    delays = {}
    for k, edge in enumerate(directed_edges):
        value = float(result.x[k])
        if value > 1e-6:
            delays[edge] = value
    return delays


def _solve_delays_greedy(directed_edges: List[Tuple[str, str]],
                         pairs: List[Tuple[float, float, List[int]]],
                         iterations: int = 200) -> Dict[Tuple[str, str], float]:
    """Projected coordinate descent fallback (no SciPy)."""
    delta = [0.0] * len(directed_edges)

    def cost() -> float:
        total = 0.0
        for weight, gap, edges in pairs:
            total += weight * abs(sum(delta[e] for e in edges) - gap)
        return total

    best = cost()
    step = max((abs(gap) for _, gap, _ in pairs), default=0.0) / 2 or 1.0
    while step > 0.05:
        improved = False
        for e in range(len(delta)):
            for direction in (step, -step):
                candidate = delta[e] + direction
                if candidate < 0:
                    continue
                old = delta[e]
                delta[e] = candidate
                new_cost = cost()
                if new_cost < best - 1e-9:
                    best = new_cost
                    improved = True
                else:
                    delta[e] = old
        if not improved:
            step /= 2
    return {edge: delta[k] for k, edge in enumerate(directed_edges)
            if delta[k] > 1e-6}


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def solve_tree(shape: TreeShape, dc_sites: Dict[str, str],
               candidate_sites: Sequence[str],
               latency: Callable[[str, str], float],
               weights: Optional[Dict[Tuple[str, str], float]] = None,
               bulk_latency: Optional[Callable[[str, str], float]] = None) -> SolvedTree:
    """Optimal placement + delays for one tree shape; returns the scored
    configuration (Definition 2 objective)."""
    if bulk_latency is None:
        bulk_latency = latency
    sites = _optimize_placement(shape, dc_sites, candidate_sites, latency,
                                weights, bulk_latency)
    topology = shape.to_topology(sites)
    delays = _optimize_delays(topology, dc_sites, latency, weights,
                              bulk_latency)
    topology = topology.with_delays(delays)
    score = weighted_mismatch(topology, dc_sites, latency, weights,
                              bulk_latency)
    return SolvedTree(topology=topology, score=score)


def optimize_delays(topology: TreeTopology, dc_sites: Dict[str, str],
                    latency: Callable[[str, str], float],
                    weights: Optional[Dict[Tuple[str, str], float]] = None,
                    bulk_latency: Optional[Callable[[str, str], float]] = None,
                    ) -> Dict[Tuple[str, str], float]:
    """Public entry point: optimal artificial delays for a fixed topology."""
    if bulk_latency is None:
        bulk_latency = latency
    return _optimize_delays(topology, dc_sites, latency, weights, bulk_latency)
