"""Saturn core: labels, serializer trees, metadata service, fault
tolerance, and online reconfiguration."""

from repro.core.chain import ChainGroup, ChainReplica
from repro.core.label import Label, LabelType, label_max
from repro.core.reconfig import ReconfigurationManager
from repro.core.replication import ReplicationMap
from repro.core.serializer import Serializer, interest_of
from repro.core.service import SaturnService
from repro.core.tree import TopologyError, TreeTopology

__all__ = [
    "ChainGroup", "ChainReplica", "Label", "LabelType", "label_max",
    "ReconfigurationManager", "ReplicationMap", "Serializer", "interest_of",
    "SaturnService", "TopologyError", "TreeTopology",
]
