"""Chain replication of a serializer group (§6.1).

The paper makes each serializer resilient by replicating it with chain
replication [51] under a fail-stop fault model.  The main simulation models
a chain's latency inside :class:`~repro.core.serializer.Serializer` (one
local hop per extra replica); this module implements the actual protocol as
a standalone, independently tested component:

* a :class:`ChainGroup` of replica processes connected head -> ... -> tail;
* items enter at the head, flow down the chain, and are **delivered** (to a
  client-supplied callback) only by the tail, preserving FIFO order;
* every replica buffers items it has forwarded until the tail's
  acknowledgement flows back up;
* on a fail-stop crash the group reconfigures: the failed replica is cut
  out and its predecessor re-forwards everything unacknowledged, so no item
  is lost or reordered (duplicates are suppressed by sequence number).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.process import Process

__all__ = ["ChainGroup", "ChainReplica"]


@dataclass(frozen=True)
class _Forward:
    seq: int
    item: Any


@dataclass(frozen=True)
class _Ack:
    seq: int


class ChainReplica(Process):
    """One replica in a chain-replicated serializer group."""

    def __init__(self, sim: Simulator, name: str, group: "ChainGroup") -> None:
        super().__init__(sim, name)
        self.group = group
        self.successor: Optional[str] = None
        self.predecessor: Optional[str] = None
        #: forwarded but not yet acknowledged, in sequence order
        self.unacked: Dict[int, Any] = {}
        self.last_seen_seq = 0
        self.last_acked_seq = 0

    def submit(self, seq: int, item: Any) -> None:
        """Accept an item (head entry point or re-forwarded)."""
        if not self.alive:
            return
        if seq <= self.last_seen_seq:
            return  # duplicate after reconfiguration
        self.last_seen_seq = seq
        self.unacked[seq] = item
        self._pass_on(seq, item)

    def _pass_on(self, seq: int, item: Any) -> None:
        if self.successor is not None:
            self.send(self.successor, _Forward(seq, item))
        else:
            # tail: deliver and start the ack wave
            self.group.delivered(seq, item)
            self._acknowledge(seq)

    def _acknowledge(self, seq: int) -> None:
        self.last_acked_seq = max(self.last_acked_seq, seq)
        self.unacked.pop(seq, None)
        if self.predecessor is not None:
            self.send(self.predecessor, _Ack(seq))

    def receive(self, sender: str, message: Any) -> None:
        if isinstance(message, _Forward):
            self.submit(message.seq, message.item)
        elif isinstance(message, _Ack):
            self._acknowledge(message.seq)

    def resend_unacked(self) -> None:
        """After reconfiguration: re-forward everything not acknowledged."""
        for seq in sorted(self.unacked):
            self._pass_on(seq, self.unacked[seq])


class ChainGroup:
    """A chain-replicated serializer: submit at the head, deliver at the
    tail, survive fail-stop replica crashes."""

    def __init__(self, sim: Simulator, network: Network, name: str,
                 replicas: int, deliver: Callable[[Any], None],
                 site: Optional[str] = None) -> None:
        if replicas < 1:
            raise ValueError("a chain needs at least one replica")
        self.sim = sim
        self.network = network
        self.name = name
        self._deliver = deliver
        self._next_seq = 0
        self._delivered_seqs: set = set()
        self.replicas: List[ChainReplica] = []
        for index in range(replicas):
            replica = ChainReplica(sim, f"{name}:r{index}", self)
            replica.attach_network(network)
            if site is not None:
                network.place(replica.name, site)
            self.replicas.append(replica)
        self._rewire()

    # ------------------------------------------------------------------

    def _alive(self) -> List[ChainReplica]:
        return [replica for replica in self.replicas if replica.alive]

    def _rewire(self) -> None:
        alive = self._alive()
        for i, replica in enumerate(alive):
            replica.predecessor = alive[i - 1].name if i > 0 else None
            replica.successor = alive[i + 1].name if i < len(alive) - 1 else None

    @property
    def head(self) -> ChainReplica:
        alive = self._alive()
        if not alive:
            raise RuntimeError(f"chain {self.name} has no live replicas")
        return alive[0]

    @property
    def tail(self) -> ChainReplica:
        alive = self._alive()
        if not alive:
            raise RuntimeError(f"chain {self.name} has no live replicas")
        return alive[-1]

    def submit(self, item: Any) -> int:
        """Enter an item at the head; returns its sequence number."""
        self._next_seq += 1
        self.head.submit(self._next_seq, item)
        return self._next_seq

    def delivered(self, seq: int, item: Any) -> None:
        if seq in self._delivered_seqs:
            return  # duplicate delivery after a crash-retransmit
        self._delivered_seqs.add(seq)
        self._deliver(item)

    # ------------------------------------------------------------------

    def crash_replica(self, index: int) -> None:
        """Fail-stop one replica; the chain reconfigures and the failed
        node's neighbours retransmit anything unacknowledged."""
        self.replicas[index].crash()
        self._rewire()
        for replica in self._alive():
            replica.resend_unacked()

    def alive_count(self) -> int:
        return len(self._alive())
