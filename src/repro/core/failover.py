"""Automatic recovery coordinator: epoch change once the tree is repaired.

:class:`AutoFailover` aggregates the per-datacenter failure detectors
(:class:`repro.datacenter.failover.SinkFailoverDetector`) and drives the
§6.2 failure-path reconfiguration.  The recovery rule is deliberately
conservative: an emergency epoch change fires only once **every** datacenter
that suspected its attachment has probed the tree reachable again, so the
new epoch is never installed into a still-broken network.

In the real system this role is played by Saturn's (replicated)
configuration manager; here it is a plain coordinator object so scenarios
can introspect the event history deterministically.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set, Tuple

from repro.core.reconfig import ReconfigurationManager
from repro.core.tree import TreeTopology

__all__ = ["AutoFailover"]


class AutoFailover:
    """Recovery policy over suspicion / reachability reports."""

    def __init__(self, manager: ReconfigurationManager,
                 repair_topology: Optional[Callable[[], TreeTopology]] = None
                 ) -> None:
        self.manager = manager
        #: factory for the repaired tree; defaults to re-installing the
        #: current topology under a fresh epoch (same shape, new — live —
        #: serializer processes)
        self.repair_topology = repair_topology
        self._suspected: Set[str] = set()
        self._reachable: Set[str] = set()
        #: (sim time, kind, datacenter) audit trail
        self.events: List[Tuple[float, str, str]] = []
        #: (sim time, new epoch) of triggered recoveries
        self.recoveries: List[Tuple[float, int]] = []

    def _now(self) -> float:
        return self.manager.service.sim.now

    # -- detector callbacks --------------------------------------------------

    def on_suspected(self, dc_name: str, epoch: int) -> None:
        self.events.append((self._now(), "suspected", dc_name))
        self._suspected.add(dc_name)

    def on_suspicion_cleared(self, dc_name: str) -> None:
        self.events.append((self._now(), "cleared", dc_name))
        self._suspected.discard(dc_name)
        self._reachable.discard(dc_name)

    def on_reachable(self, dc_name: str) -> None:
        self.events.append((self._now(), "reachable", dc_name))
        self._reachable.add(dc_name)
        self._maybe_recover()

    def on_reattached(self, dc_name: str) -> None:
        self.events.append((self._now(), "reattached", dc_name))
        self._suspected.discard(dc_name)
        self._reachable.discard(dc_name)

    # -- recovery ------------------------------------------------------------

    def _maybe_recover(self) -> None:
        if not self._suspected or not self._suspected <= self._reachable:
            return
        if self.repair_topology is not None:
            topology = self.repair_topology()
        else:
            topology = self.manager.service.topology()
        self._suspected.clear()
        self._reachable.clear()
        epoch = self.manager.reconfigure(topology, emergency=True)
        self.recoveries.append((self._now(), epoch))
