"""Saturn labels (§3 of the paper).

A label is the only metadata Saturn manages: a constant-size tuple
``<type, src, ts, target>`` where

* ``type`` — ``update`` or ``migration`` (we also use internal
  ``heartbeat`` and ``epoch_change`` labels; heartbeats drive the
  timestamp-order fallback and epoch-change labels drive online
  reconfiguration, §6.2);
* ``src`` — unique id of the generating gear;
* ``ts`` — a single scalar timestamp;
* ``target`` — the updated key (update labels) or the destination
  datacenter (migration labels).

Labels are *unique* (by ``(ts, src)``) and *totally ordered*: ``la < lb``
iff ``la.ts < lb.ts or (la.ts == lb.ts and la.src < lb.src)``.  The total
order respects causality (like Lamport clocks the converse does not hold:
``la < lb`` does not imply ``a -> b``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import total_ordering
from typing import Optional, Tuple

__all__ = ["LabelType", "Label", "label_max"]


class LabelType(enum.Enum):
    """Kinds of labels travelling through Saturn."""

    UPDATE = "update"
    MIGRATION = "migration"
    HEARTBEAT = "heartbeat"
    EPOCH_CHANGE = "epoch_change"


@total_ordering
@dataclass(frozen=True)
class Label:
    """An immutable, totally ordered Saturn label."""

    type: LabelType
    src: str
    ts: float
    target: Optional[str] = None
    #: origin datacenter (derived metadata used for routing/fallback; the
    #: paper encodes this in ``src`` — gear ids embed their datacenter).
    origin_dc: str = ""

    def sort_key(self) -> Tuple[float, str]:
        return (self.ts, self.src)

    def __lt__(self, other: "Label") -> bool:
        if not isinstance(other, Label):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Label):
            return NotImplemented
        return self.sort_key() == other.sort_key()

    def __hash__(self) -> int:
        return hash((self.ts, self.src))

    def is_update(self) -> bool:
        return self.type is LabelType.UPDATE

    def is_migration(self) -> bool:
        return self.type is LabelType.MIGRATION

    def __repr__(self) -> str:
        return (f"Label({self.type.value}, src={self.src}, ts={self.ts:.4f}, "
                f"target={self.target})")


def label_max(a: Optional[Label], b: Optional[Label]) -> Optional[Label]:
    """Greater of two labels, treating ``None`` as minus infinity.

    Client libraries use this to fold newly observed labels into the
    client's causal past (``Label_c``).
    """
    if a is None:
        return b
    if b is None:
        return a
    return a if a >= b else b
