"""Process-naming scheme shared across the protocol layers.

Process names are the addressing scheme of the simulated network — and of
the future ``Transport`` interface (ROADMAP item 1), where they become real
endpoint addresses.  They are protocol vocabulary, not datacenter
machinery: serializers (core) need to address datacenters, datacenters and
baselines need to address each other, and clients need to address their
home datacenter.  Keeping the scheme here lets all of them agree on it
without anyone importing upward.
"""

from __future__ import annotations

__all__ = ["dc_process_name", "sequencer_process_name"]


def dc_process_name(dc_name: str) -> str:
    """Network process name of the datacenter called *dc_name*."""
    return f"dc:{dc_name}"


def sequencer_process_name(dc_name: str) -> str:
    """Network process name of *dc_name*'s Eunomia site sequencer."""
    return f"seq:{dc_name}"
