"""Online tree reconfiguration (§6.2).

Switching from the current tree C1 to a new tree C2 without interrupting
Saturn:

* **fast path** — every datacenter pushes an *epoch-change* label through
  C1 and redirects subsequent labels to C2; a datacenter adopts C2 once it
  has processed the epoch-change label of every peer through C1 (buffering
  C2 deliveries meanwhile).  Completion time is bounded by the largest
  metadata-path latency in C1 (< 200 ms in the paper's experiments).
* **failure path** — when C1 is broken the epoch-change labels cannot
  flow; datacenters fall back to timestamp order and adopt C2 once the
  update of the first label delivered by C2 is stable in timestamp order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from repro.core.service import SaturnService
from repro.core.tree import TreeTopology

if TYPE_CHECKING:  # pragma: no cover - annotation-only upward reference
    from repro.datacenter.datacenter import SaturnDatacenter

__all__ = ["ReconfigurationManager"]


class ReconfigurationManager:
    """Coordinates an epoch change across the service and all datacenters."""

    def __init__(self, service: SaturnService,
                 datacenters: Iterable[SaturnDatacenter]) -> None:
        self.service = service
        self.datacenters = list(datacenters)
        self.last_epoch: Optional[int] = None
        #: opt-in label-lifecycle tracer (repro.obs)
        self.obs = None

    def reconfigure(self, new_topology: TreeTopology,
                    emergency: bool = False) -> int:
        """Install *new_topology* as the next epoch and start the switch.

        Returns the new epoch id.  With ``emergency=True`` the failure-path
        protocol is used (no epoch-change labels through C1; datacenters
        drop to timestamp order until C2 delivers).
        """
        epoch = self.service.next_epoch()
        self.service.install_tree(new_topology, epoch)
        if self.obs is not None:
            self.obs.annotate(self.service.sim.now, "epoch-change",
                              "manager", epoch=epoch, emergency=emergency)
        for dc in self.datacenters:
            dc.switch_tree(epoch, emergency=emergency)
        self.service.current_epoch = epoch
        self.last_epoch = epoch
        return epoch

    def complete(self) -> bool:
        """True once every datacenter has adopted the new epoch."""
        if self.last_epoch is None:
            return True
        return all(dc.proxy.current_epoch == self.last_epoch
                   for dc in self.datacenters)

    def reconfiguration_times(self) -> Dict[str, List[float]]:
        """Per-datacenter transition durations (ms) observed so far."""
        return {dc.dc_name: list(dc.proxy.reconfiguration_times)
                for dc in self.datacenters}
