"""Replication map: which datacenters replicate which keys.

Saturn supports *genuine* partial replication: labels for an item only
travel to datacenters replicating that item.  Both the gears (to ship
payloads) and the serializer tree (to route labels) consult this map.

Keys are organised into *groups* (the unit of placement); every key in a
group shares the group's replica set.  Group membership is encoded in the
key name (``g<group>:<suffix>``) so lookup is O(1) without a per-key table.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence

__all__ = ["ReplicationMap"]


class ReplicationMap:
    """Mapping from keys (via groups) to replica sets of datacenters."""

    def __init__(self, datacenters: Sequence[str]) -> None:
        if not datacenters:
            raise ValueError("need at least one datacenter")
        self.datacenters: List[str] = list(datacenters)
        self._group_replicas: Dict[str, FrozenSet[str]] = {}
        self._default: FrozenSet[str] = frozenset(datacenters)
        #: memo for :func:`repro.core.serializer.interest_of` — every
        #: serializer a label passes through needs the same answer, so the
        #: map owns one shared cache; invalidated whenever placement changes.
        self.interest_cache: Dict[tuple, FrozenSet[str]] = {}

    # -- construction --------------------------------------------------------

    def set_group(self, group: str, replicas: Iterable[str]) -> None:
        replica_set = frozenset(replicas)
        unknown = replica_set - set(self.datacenters)
        if unknown:
            raise ValueError(f"unknown datacenters in replica set: {sorted(unknown)}")
        if not replica_set:
            raise ValueError(f"group {group!r} must have at least one replica")
        self._group_replicas[group] = replica_set
        self.interest_cache.clear()

    @classmethod
    def full(cls, datacenters: Sequence[str]) -> "ReplicationMap":
        """Full geo-replication: every key everywhere."""
        return cls(datacenters)

    # -- lookup ---------------------------------------------------------------

    @staticmethod
    def group_of(key: str) -> Optional[str]:
        """Extract the group from a ``g<group>:<suffix>`` key name."""
        if key.startswith("g") and ":" in key:
            return key.split(":", 1)[0]
        return None

    def replicas_of_group(self, group: str) -> FrozenSet[str]:
        return self._group_replicas.get(group, self._default)

    def replicas(self, key: str) -> FrozenSet[str]:
        """Replica set for *key* (all datacenters if ungrouped/unknown)."""
        group = self.group_of(key)
        if group is None:
            return self._default
        return self.replicas_of_group(group)

    def is_replicated_at(self, key: str, dc: str) -> bool:
        return dc in self.replicas(key)

    def groups(self) -> Dict[str, FrozenSet[str]]:
        return dict(self._group_replicas)

    def groups_at(self, dc: str) -> List[str]:
        """Groups replicated at *dc* (sorted for determinism)."""
        return sorted(g for g, r in self._group_replicas.items() if dc in r)

    def average_replication_degree(self) -> float:
        if not self._group_replicas:
            return float(len(self.datacenters))
        total = sum(len(r) for r in self._group_replicas.values())
        return total / len(self._group_replicas)
