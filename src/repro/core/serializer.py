"""Saturn serializers (§5.3).

A serializer is a node of the metadata tree.  It receives label batches from
attached datacenters (their label sinks) or neighbouring serializers over
FIFO channels and forwards every label, *in arrival order*, towards every
other direction of the tree that contains an interested datacenter.  Because
channels are FIFO and forwarding preserves arrival order, each datacenter
receives a serialization of labels consistent with causality (the
lowest-common-ancestor argument in the paper's footnote 1).

Genuine partial replication falls out of the routing test: a label travels
down an edge only if the subtree behind that edge contains a datacenter in
the label's interest set.

Artificial propagation delays (δij, §5.4) are applied per directed edge
before handing a batch to the network; since the delay of an edge is
constant and the scheduler breaks ties FIFO, order is preserved.

Fault model: serializers are fail-stop and, in the real system, each one is
a chain-replicated group (§6.1).  Here a serializer models its chain with
``chain_length`` (co-located replicas add one local hop of latency each) and
exposes :meth:`crash_replica` / :meth:`fail` for fault injection; a real
message-passing chain lives in :mod:`repro.core.chain` and is validated
independently.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, FrozenSet, List, Optional, Tuple

from repro.core.label import Label, LabelType
from repro.core.replication import ReplicationMap
from repro.core.tree import TreeTopology
from repro.datacenter.messages import (LabelBatch, LabelCredit, Ping, Pong,
                                       SerializerBeacon)
from repro.sim.engine import Simulator
from repro.sim.process import Process

__all__ = ["Serializer", "interest_of"]


def interest_of(label: Label, replication: ReplicationMap) -> FrozenSet[str]:
    """Datacenters that must receive *label* (origin excluded).

    * update labels -> replicas of the updated item;
    * migration labels -> the target datacenter;
    * heartbeat / epoch-change labels -> every datacenter (they carry no
      item information, so genuine partial replication is preserved).

    The answer depends only on ``(type, target, origin_dc)``, so results
    are memoized on the replication map (shared by every serializer the
    label traverses; invalidated by ``set_group``).
    """
    cache = replication.interest_cache
    key = (label.type, label.target, label.origin_dc)
    interested = cache.get(key)
    if interested is None:
        if label.type is LabelType.UPDATE:
            interested = replication.replicas(label.target or "")
        elif label.type is LabelType.MIGRATION:
            interested = frozenset({label.target}) if label.target else frozenset()
        else:
            interested = frozenset(replication.datacenters)
        interested = interested - {label.origin_dc}
        cache[key] = interested
    return interested


class Serializer(Process):
    """One node of the serializer tree.

    ``delivery_name(dc)`` maps a datacenter name to the process that should
    receive its label batches (the datacenter process).
    """

    def __init__(self, sim: Simulator, name: str, tree_name: str,
                 topology: TreeTopology, replication: ReplicationMap,
                 delivery_name: Callable[[str], str],
                 peer_process_name: Callable[[str], str],
                 epoch: int = 0,
                 chain_length: int = 1,
                 local_hop_latency: float = 0.3,
                 service_rate: float = 0.0) -> None:
        super().__init__(sim, name)
        self.tree_name = tree_name
        self.topology = topology
        self.replication = replication
        self.delivery_name = delivery_name
        self.peer_process_name = peer_process_name
        self.epoch = epoch
        self.chain_length = max(1, chain_length)
        self.local_hop_latency = local_hop_latency
        self._alive_replicas = self.chain_length
        self.labels_forwarded = 0
        self.labels_delivered = 0
        #: opt-in label-lifecycle tracer (repro.obs.LabelTracer); the only
        #: disabled-mode cost is one None check per routed batch
        self.obs = None
        self.beacon_period = 0.0
        self._beacon_timer = None
        # -- opt-in overload machinery (repro.datacenter.overload) --------
        #: finite ingress service capacity, labels/ms (0 = infinite: route
        #: on arrival, the historical behaviour)
        self.service_rate = service_rate
        self._ingress: Deque[Tuple[LabelBatch, str]] = deque()
        self._servicing = False
        self.peak_ingress_depth = 0
        self.batches_serviced = 0
        self.credits_returned = 0
        #: opt-in metrics registry (repro.obs.MetricsRegistry)
        self.queue_obs = None
        # Routing tables are static per epoch (reconfiguration installs a
        # fresh tree of serializers), so resolve them once instead of on
        # every batch: outgoing directions as (neighbor, peer process,
        # reachable-DC set, edge delay), attached DCs as (dc, delivery
        # process), and the reverse sender-process -> neighbor map.
        routing = topology.routing(tree_name)
        self._out_edges = tuple(
            (neighbor, peer_process_name(neighbor),
             routing.reachable[neighbor], routing.delays[neighbor])
            for neighbor in routing.neighbors)
        self._attached = tuple(
            (dc, delivery_name(dc)) for dc in routing.attached)
        self._sender_to_neighbor = {
            peer: neighbor for neighbor, peer, _, _ in self._out_edges}
        self._peer_of = {neighbor: peer for neighbor, peer, _, _ in self._out_edges}
        self._delay_of = {neighbor: delay for neighbor, _, _, delay in self._out_edges}
        self._delivery_of = dict(self._attached)

    # -- liveness beacons ---------------------------------------------------

    def start_beacons(self, period: float) -> None:
        """Emit a :class:`SerializerBeacon` to each attached sink every
        *period* ms.  Safe to call again after a restart: the previous
        timer chain is cancelled first (a tick that fired while crashed
        stopped rescheduling, but one armed *before* the crash may still
        be pending, and two chains would double the beacon rate)."""
        if self._beacon_timer is not None:
            self._beacon_timer.cancel()
            self._beacon_timer = None
        self.beacon_period = period
        if period > 0 and self._attached:
            self._beacon_timer = self.every(period, self._beacon)

    def _beacon(self) -> None:
        beacon = SerializerBeacon(epoch=self.epoch, tree_name=self.tree_name,
                                  ts=self.sim.now, incarnation=self.restarts)
        for _, delivery in self._attached:
            self.send(delivery, beacon)

    def on_restart(self) -> None:
        """Fail-recover: the chain comes back at full strength with empty
        volatile state (in-flight labels died with the crash; sinks replay
        what the resurrected tree must re-propagate)."""
        self._alive_replicas = self.chain_length
        if self.beacon_period > 0:
            self.start_beacons(self.beacon_period)
            # Announce the new incarnation *now*, not a beacon period from
            # now: the resurrected serializer starts forwarding labels
            # immediately, and the sinks' channels are FIFO, so sending the
            # beacon first guarantees every attached detector learns about
            # the state loss before it can process a single post-restart
            # label.  Without this, a label whose causal dependencies died
            # with the old incarnation slips through during the window
            # between restart and the first periodic beacon.
            self._beacon()

    # -- fault injection ---------------------------------------------------

    @property
    def chain_latency(self) -> float:
        """Extra latency added by passing through the replica chain."""
        return (self._alive_replicas - 1) * self.local_hop_latency

    def crash_replica(self) -> None:
        """Fail-stop one chain replica; the chain shortens (chain repl.)."""
        if self._alive_replicas > 1:
            self._alive_replicas -= 1
        else:
            self.fail()

    def fail(self) -> None:
        """The whole serializer group is gone: drop everything."""
        self.crash()

    # -- label handling ------------------------------------------------------

    def receive(self, sender: str, message) -> None:
        if isinstance(message, Ping):
            self.send(message.origin, Pong(seq=message.seq))
            return
        if not isinstance(message, LabelBatch):
            return
        came_from = self._neighbor_of(sender)
        if (self.service_rate > 0 and came_from is None
                and not message.replayed):
            # Overload configuration: sink-originated batches pay for a
            # finite service capacity before being routed; the credit goes
            # back to the sink only once its batch is serviced.  Batches
            # from neighbouring serializers route immediately (intra-tree
            # capacity is not the bottleneck under study) and sink replays
            # bypass flow control entirely — failover recovery must not
            # deadlock on credits that died with the old tree.
            self._enqueue_ingress(message, sender)
            return
        self._route_batch(message, came_from, sender)

    # -- ingress service queue (overload configuration only) -----------------

    def _enqueue_ingress(self, batch: LabelBatch, sender: str) -> None:
        self._ingress.append((batch, sender))
        depth = len(self._ingress)
        if depth > self.peak_ingress_depth:
            self.peak_ingress_depth = depth
        if self.queue_obs is not None:
            self.queue_obs.gauge(f"serializer:{self.tree_name}",
                                 "ingress_depth").set(depth, self.sim.now)
        if not self._servicing:
            self._servicing = True
            self._service_next()

    def _service_next(self) -> None:
        if not self._ingress:
            self._servicing = False
            return
        batch, _ = self._ingress[0]
        self.set_timer(len(batch.labels) / self.service_rate,
                       self._finish_service)

    def _finish_service(self) -> None:
        batch, sender = self._ingress.popleft()
        self.batches_serviced += 1
        self._route_batch(batch, None, sender)
        self.credits_returned += len(batch.labels)
        self.send(sender, LabelCredit(labels=len(batch.labels),
                                      tree_name=self.tree_name))
        if self.queue_obs is not None:
            self.queue_obs.gauge(f"serializer:{self.tree_name}",
                                 "ingress_depth").set(len(self._ingress),
                                                      self.sim.now)
        self._service_next()

    def _neighbor_of(self, sender_process: str) -> Optional[str]:
        """Map the sending process back to a tree neighbor, if any."""
        return self._sender_to_neighbor.get(sender_process)

    def _route_batch(self, batch: LabelBatch, came_from: Optional[str],
                     sender_process: str) -> None:
        # Partition the batch per outgoing direction, preserving order.
        per_neighbor: Dict[str, List[Label]] = {}
        per_dc: Dict[str, List[Label]] = {}
        replication = self.replication
        out_edges = self._out_edges
        attached = self._attached
        labels = batch.labels
        obs = self.obs
        if obs is not None:
            now = self.sim.now
            name = self.name
            for label in labels:
                obs.on_serializer_arrive(label, now, name, sender_process)
        for label in labels:
            interested = interest_of(label, replication)
            for neighbor, _, reachable, _ in out_edges:
                if neighbor == came_from:
                    continue
                if interested & reachable:
                    per_neighbor.setdefault(neighbor, []).append(label)
            for dc, delivery in attached:
                if dc in interested and delivery != sender_process:
                    per_dc.setdefault(dc, []).append(label)
        # Forward in first-label insertion order (the pre-optimization send
        # order) so event sequencing — and thus the delivery trace — is
        # unchanged.  When the whole batch goes out one direction (the
        # common full-replication case) the incoming batch object is reused
        # instead of building a new one: routed is a same-order subset, so
        # equal length means identical contents.
        total = len(labels)
        for neighbor, routed in per_neighbor.items():
            if len(routed) == total:
                out = batch
            else:
                out = LabelBatch(tuple(routed), epoch=batch.epoch,
                                 replayed=batch.replayed)
            self._forward(self._peer_of[neighbor], out,
                          extra_delay=self._delay_of[neighbor])
            self.labels_forwarded += len(routed)
            if obs is not None:
                dwell = self._delay_of[neighbor] + self.chain_latency
                peer = self._peer_of[neighbor]
                for label in routed:
                    obs.on_serializer_forward(label, now, name, peer, dwell)
        for dc, routed in per_dc.items():
            if len(routed) == total:
                out = batch
            else:
                out = LabelBatch(tuple(routed), epoch=batch.epoch,
                                 replayed=batch.replayed)
            self._forward(self._delivery_of[dc], out)
            self.labels_delivered += len(routed)
            if obs is not None:
                dwell = self.chain_latency
                to = f"dc:{dc}"
                for label in routed:
                    obs.on_serializer_forward(label, now, name, to, dwell)

    def _forward(self, to: str, batch: LabelBatch, extra_delay: float = 0.0) -> None:
        delay = extra_delay + self.chain_latency
        if delay > 0:
            self.set_timer(delay, lambda: self.send(to, batch))
        else:
            self.send(to, batch)
