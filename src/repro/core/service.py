"""Saturn metadata-service assembly.

A :class:`SaturnService` owns one or more serializer trees (one per epoch —
epochs exist so the tree can be swapped online, §6.2), instantiates the
serializer processes at their geographic sites, and tells each datacenter's
label sink which serializer to stream into.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.naming import dc_process_name
from repro.core.replication import ReplicationMap
from repro.core.serializer import Serializer
from repro.core.tree import TreeTopology
from repro.sim.engine import Simulator
from repro.sim.network import Network

__all__ = ["SaturnService"]


class SaturnService:
    """The distributed metadata service: trees of serializers by epoch."""

    def __init__(self, sim: Simulator, network: Network,
                 replication: ReplicationMap, chain_length: int = 1,
                 local_hop_latency: float = 0.3,
                 beacon_period: float = 0.0,
                 serializer_service_rate: float = 0.0) -> None:
        self.sim = sim
        self.network = network
        self.replication = replication
        self.chain_length = chain_length
        self.local_hop_latency = local_hop_latency
        #: liveness-beacon period for every serializer (0 disables; see
        #: repro.datacenter.failover for the matching detector).
        self.beacon_period = beacon_period
        #: finite ingress service capacity in labels/ms for every
        #: serializer (0 = infinite; see repro.datacenter.overload)
        self.serializer_service_rate = serializer_service_rate
        self._trees: Dict[int, Tuple[TreeTopology, Dict[str, Serializer]]] = {}
        self.current_epoch = 0
        #: opt-in label-lifecycle tracer, inherited by every serializer
        #: installed after it is set (repro.obs)
        self.obs = None
        #: opt-in queue-metrics registry, inherited the same way
        self.queue_obs = None

    # ------------------------------------------------------------------

    @staticmethod
    def serializer_process_name(epoch: int, tree_name: str) -> str:
        return f"ser:e{epoch}:{tree_name}"

    def install_tree(self, topology: TreeTopology, epoch: int = 0) -> None:
        """Create the serializer processes of *topology* for *epoch*."""
        if epoch in self._trees:
            raise ValueError(f"epoch {epoch} already installed")
        # Epoch changes invalidate both memoizations that assume a static
        # tree: interest sets cached on the replication map (their universe
        # of datacenters may differ under the new attachment/replication
        # view) and the routing views cached on the topology (stale if the
        # caller repaired a topology by mutating its fields in place).
        self.replication.interest_cache.clear()
        topology.rebuild_routing()

        def peer_name(tree_name: str, _epoch: int = epoch) -> str:
            return self.serializer_process_name(_epoch, tree_name)

        processes: Dict[str, Serializer] = {}
        for tree_name, site in topology.serializer_sites.items():
            proc = Serializer(
                self.sim,
                name=self.serializer_process_name(epoch, tree_name),
                tree_name=tree_name,
                topology=topology,
                replication=self.replication,
                delivery_name=dc_process_name,
                peer_process_name=peer_name,
                epoch=epoch,
                chain_length=self.chain_length,
                local_hop_latency=self.local_hop_latency,
                service_rate=self.serializer_service_rate,
            )
            proc.obs = self.obs
            proc.queue_obs = self.queue_obs
            proc.attach_network(self.network)
            self.network.place(proc.name, site)
            proc.start_beacons(self.beacon_period)
            processes[tree_name] = proc
        self._trees[epoch] = (topology, processes)

    def next_epoch(self) -> int:
        return max(self._trees) + 1 if self._trees else 0

    def epochs(self) -> List[int]:
        """Installed epochs, oldest first."""
        return sorted(self._trees)

    # ------------------------------------------------------------------

    def topology(self, epoch: Optional[int] = None) -> TreeTopology:
        epoch = self.current_epoch if epoch is None else epoch
        return self._trees[epoch][0]

    def serializers(self, epoch: Optional[int] = None) -> Dict[str, Serializer]:
        epoch = self.current_epoch if epoch is None else epoch
        return dict(self._trees[epoch][1])

    def ingress_process(self, dc_name: str, epoch: int) -> Optional[str]:
        """Process the datacenter's label sink should stream into."""
        entry = self._trees.get(epoch)
        if entry is None:
            return None
        topology, _ = entry
        serializer = topology.attachments.get(dc_name)
        if serializer is None:
            return None
        return self.serializer_process_name(epoch, serializer)

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------

    def fail_serializer(self, tree_name: str, epoch: Optional[int] = None) -> None:
        epoch = self.current_epoch if epoch is None else epoch
        self._trees[epoch][1][tree_name].fail()

    def crash_replica(self, tree_name: str, epoch: Optional[int] = None) -> None:
        epoch = self.current_epoch if epoch is None else epoch
        self._trees[epoch][1][tree_name].crash_replica()

    def fail_tree(self, epoch: Optional[int] = None) -> None:
        """Total outage of one tree (all serializer groups down)."""
        epoch = self.current_epoch if epoch is None else epoch
        for serializer in self._trees[epoch][1].values():
            serializer.fail()

    def restart_serializer(self, tree_name: str,
                           epoch: Optional[int] = None) -> None:
        """Fail-recover one serializer group (no-op if it never crashed)."""
        epoch = self.current_epoch if epoch is None else epoch
        self._trees[epoch][1][tree_name].restart()

    def restart_tree(self, epoch: Optional[int] = None) -> None:
        epoch = self.current_epoch if epoch is None else epoch
        for tree_name in sorted(self._trees[epoch][1]):
            self._trees[epoch][1][tree_name].restart()
