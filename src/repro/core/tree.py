"""Serializer tree topology (§5.3).

Serializers and datacenters form a tree: datacenters are leaves, each
attached to exactly one serializer; serializers are internal nodes connected
by FIFO channels.  Labels are propagated along the shared tree from the
source datacenter outward, and each edge may add a configured artificial
delay (§5.4).

This module is the *static* description: node placement, edges, delays,
attachment points, plus derived routing tables (which datacenters are
reachable through each edge — the basis of genuine partial replication) and
path-latency computation used by the configuration solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

__all__ = ["TreeTopology", "TopologyError", "SerializerRouting"]


class TopologyError(ValueError):
    """Raised when a topology description is not a valid serializer tree."""


@dataclass(frozen=True)
class SerializerRouting:
    """Precomputed per-serializer routing view (see :meth:`TreeTopology.routing`).

    Everything a serializer needs on its forwarding hot path, resolved once:
    tree neighbors, datacenters reachable through each neighbor, locally
    attached datacenters, and the artificial delay of each outgoing edge.
    """

    neighbors: Tuple[str, ...]
    reachable: Dict[str, FrozenSet[str]]
    attached: Tuple[str, ...]
    delays: Dict[str, float]


@dataclass
class TreeTopology:
    """A serializer tree.

    Parameters
    ----------
    serializer_sites:
        serializer name -> geographic site (latency-matrix row).
    edges:
        undirected serializer-serializer edges.
    attachments:
        datacenter -> serializer it connects to.
    delays:
        optional artificial delay in ms for the *directed* edge
        ``(from_serializer, to_serializer)``.
    """

    serializer_sites: Dict[str, str]
    edges: List[Tuple[str, str]]
    attachments: Dict[str, str]
    delays: Dict[Tuple[str, str], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._validate()
        self._adjacency: Dict[str, List[str]] = {s: [] for s in self.serializer_sites}
        for a, b in self.edges:
            self._adjacency[a].append(b)
            self._adjacency[b].append(a)
        self._attached_dcs: Dict[str, List[str]] = {s: [] for s in self.serializer_sites}
        for dc, ser in self.attachments.items():
            self._attached_dcs[ser].append(dc)
        self._reachable: Dict[Tuple[str, str], FrozenSet[str]] = {}
        self._compute_reachability()
        self._routing: Dict[str, SerializerRouting] = {}

    # -- validation -----------------------------------------------------------

    def _validate(self) -> None:
        names = set(self.serializer_sites)
        if not names:
            raise TopologyError("tree needs at least one serializer")
        for a, b in self.edges:
            if a not in names or b not in names:
                raise TopologyError(f"edge ({a}, {b}) references unknown serializer")
            if a == b:
                raise TopologyError(f"self-loop on serializer {a}")
        if len(self.edges) != len(names) - 1:
            raise TopologyError(
                f"{len(names)} serializers need exactly {len(names) - 1} edges "
                f"to form a tree, got {len(self.edges)}"
            )
        # connectivity check (BFS); with |E| = |V|-1 this also rules out cycles
        adjacency: Dict[str, List[str]] = {s: [] for s in names}
        for a, b in self.edges:
            adjacency[a].append(b)
            adjacency[b].append(a)
        seen = set()
        frontier = [next(iter(sorted(names)))]
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(adjacency[node])
        if seen != names:
            raise TopologyError("serializer graph is not connected")
        for dc, ser in self.attachments.items():
            if ser not in names:
                raise TopologyError(f"datacenter {dc} attached to unknown serializer {ser}")

    # -- derived structure ------------------------------------------------------

    @property
    def serializers(self) -> List[str]:
        return sorted(self.serializer_sites)

    @property
    def datacenters(self) -> List[str]:
        return sorted(self.attachments)

    def neighbors(self, serializer: str) -> List[str]:
        return list(self._adjacency[serializer])

    def attached_datacenters(self, serializer: str) -> List[str]:
        return list(self._attached_dcs[serializer])

    def delay(self, src: str, dst: str) -> float:
        return self.delays.get((src, dst), 0.0)

    def _compute_reachability(self) -> None:
        """For every directed serializer edge (s -> n), the set of
        datacenters living in the subtree entered through n."""

        def collect(node: str, parent: str) -> FrozenSet[str]:
            found = set(self._attached_dcs[node])
            for nxt in self._adjacency[node]:
                if nxt != parent:
                    found |= collect(nxt, node)
            return frozenset(found)

        for s in self.serializer_sites:
            for n in self._adjacency[s]:
                self._reachable[(s, n)] = collect(n, s)

    def reachable_dcs(self, serializer: str, via_neighbor: str) -> FrozenSet[str]:
        return self._reachable[(serializer, via_neighbor)]

    def routing(self, serializer: str) -> SerializerRouting:
        """Cached hot-path routing view for one serializer.

        The topology is immutable after construction (reconfiguration
        builds a new :class:`TreeTopology`), so the view is computed once
        per serializer and shared by every lookup."""
        view = self._routing.get(serializer)
        if view is None:
            neighbors = tuple(self._adjacency[serializer])
            view = SerializerRouting(
                neighbors=neighbors,
                reachable={n: self._reachable[(serializer, n)] for n in neighbors},
                attached=tuple(self._attached_dcs[serializer]),
                delays={n: self.delays.get((serializer, n), 0.0) for n in neighbors},
            )
            self._routing[serializer] = view
        return view

    def rebuild_routing(self) -> None:
        """Re-derive every memoized structure from the public fields.

        Reconfiguration normally builds a fresh :class:`TreeTopology`, but a
        repaired tree is sometimes produced by mutating ``attachments`` /
        ``edges`` / ``delays`` of a copy in place.  Any such mutation makes
        ``_reachable`` and the cached :class:`SerializerRouting` views stale
        — and serializers resolve their routing from here at construction —
        so callers installing a mutated topology must rebuild first.
        ``SaturnService.install_tree`` does this on every epoch change.
        """
        self.__post_init__()

    # -- paths (used by the configuration solver and tests) ---------------------

    def serializer_path(self, dc_from: str, dc_to: str) -> List[str]:
        """Ordered serializers on the metadata path between two datacenters."""
        start = self.attachments[dc_from]
        goal = self.attachments[dc_to]
        if start == goal:
            return [start]
        parents: Dict[str, Optional[str]] = {start: None}
        frontier = [start]
        while frontier:
            node = frontier.pop(0)
            if node == goal:
                break
            for nxt in self._adjacency[node]:
                if nxt not in parents:
                    parents[nxt] = node
                    frontier.append(nxt)
        path = [goal]
        while parents[path[-1]] is not None:
            path.append(parents[path[-1]])  # type: ignore[arg-type]
        path.reverse()
        return path

    def path_latency(self, dc_from: str, dc_to: str,
                     site_latency, dc_sites: Dict[str, str]) -> float:
        """Metadata-path latency ΛM(i, j): dc -> serializers -> dc.

        ``site_latency(a, b)`` returns one-way latency between sites;
        ``dc_sites`` maps datacenter names to their sites.
        """
        path = self.serializer_path(dc_from, dc_to)
        total = site_latency(dc_sites[dc_from], self.serializer_sites[path[0]])
        for a, b in zip(path, path[1:]):
            total += site_latency(self.serializer_sites[a], self.serializer_sites[b])
            total += self.delay(a, b)
        total += site_latency(self.serializer_sites[path[-1]], dc_sites[dc_to])
        return total

    def with_delays(self, delays: Dict[Tuple[str, str], float]) -> "TreeTopology":
        """Copy of this topology with different artificial delays."""
        return TreeTopology(
            serializer_sites=dict(self.serializer_sites),
            edges=list(self.edges),
            attachments=dict(self.attachments),
            delays=dict(delays),
        )

    @classmethod
    def star(cls, serializer_site: str, dc_sites: Dict[str, str],
             name: str = "S1") -> "TreeTopology":
        """Single-serializer star (the paper's S-configuration)."""
        return cls(
            serializer_sites={name: serializer_site},
            edges=[],
            attachments={dc: name for dc in dc_sites},
        )
