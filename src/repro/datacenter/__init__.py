"""Per-datacenter components (§4): frontends, gears, label sink, remote
proxy, storage, and the client library."""

from repro.datacenter.client import ClientProcess
from repro.datacenter.datacenter import (DatacenterParams, SaturnDatacenter,
                                         dc_process_name)
from repro.datacenter.frontend import Frontend
from repro.datacenter.gear import Gear
from repro.datacenter.label_sink import LabelSink
from repro.datacenter.remote_proxy import RemoteProxy
from repro.datacenter.storage import (Partition, PartitionedStore,
                                      StoredValue, responsible_partition)

__all__ = [
    "ClientProcess", "DatacenterParams", "SaturnDatacenter",
    "dc_process_name", "Frontend", "Gear", "LabelSink", "RemoteProxy",
    "Partition", "PartitionedStore", "StoredValue", "responsible_partition",
]
