"""Client library and closed-loop client process.

The client library keeps the client's causal past as an opaque *stamp*
(Saturn: the greatest :class:`~repro.core.label.Label` observed; GentleRain:
a scalar; Cure: a vector).  The stamp is piggybacked on every request and
folded with every label returned by the store, exactly as §4.1 prescribes.

:class:`ClientProcess` is a Basho-Bench-style closed-loop load generator:
it attaches to its preferred datacenter and then issues operations with zero
think time, pulling each next operation from a workload generator.  Remote
reads follow the full migration dance of §4.4 (migrate out, attach, read,
migrate back, attach home).

The *pacing* decisions are isolated in two overridable hooks so arrival
models other than the closed loop can reuse the whole state machine:
``_on_ready`` fires once the initial attach completes and ``_on_op_complete``
after every finished operation; both default to issuing the next workload
operation immediately (the closed loop).  The open-loop subclass
(:class:`repro.workloads.openloop.OpenLoopClient`) overrides them to hand
control back to its arrival-process source instead.

Admission control (:mod:`repro.datacenter.overload`) may reject an update
before it reaches storage; the client counts the rejection (``ops_rejected``)
without folding any stamp and lets the arrival model decide what happens
next — a closed-loop client simply issues its next operation.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.label import label_max
from repro.core.naming import dc_process_name
from repro.datacenter.messages import (AttachOk, ClientAttach, ClientMigrate,
                                       ClientRead, ClientUpdate, MigrateReply,
                                       ReadReply, UpdateReply)
from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.workloads.ops import ReadOp, RemoteReadOp, UpdateOp

__all__ = ["ClientProcess"]


class ClientProcess(Process):
    """A closed-loop client bound to a preferred datacenter.

    Parameters
    ----------
    workload:
        callable ``workload(client) -> op`` producing the next operation,
        or ``None`` to stop the client.
    merge:
        stamp merge function (defaults to Saturn's ``label_max``).
    metrics:
        optional recorder with ``record_op(kind, latency, at)``.
    """

    def __init__(self, sim: Simulator, client_id: str, home_dc: str,
                 workload: Callable[["ClientProcess"], object],
                 merge: Callable[[object, object], object] = label_max,
                 metrics=None, max_ops: Optional[int] = None,
                 execution_log=None) -> None:
        super().__init__(sim, f"client:{client_id}")
        self.client_id = client_id
        self.home_dc = home_dc
        self.current_dc = home_dc
        self.workload = workload
        self.merge = merge
        self.metrics = metrics
        self.max_ops = max_ops
        self.execution_log = execution_log
        #: exact causal past: every version (ts, src) this client observed
        self._observed: set = set()
        self._observed_max_per_key: dict = {}

        self.stamp: object = None
        self.ops_completed = 0
        self.ops_rejected = 0
        self._op: Optional[object] = None
        self._op_started = 0.0
        self._phase = "idle"
        self._running = False

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Attach to the preferred datacenter, then start the op loop."""
        self._running = True
        self._phase = "initial-attach"
        self._send_dc(self.current_dc, ClientAttach(self.client_id, None))

    def stop(self) -> None:
        self._running = False

    def _send_dc(self, dc: str, message) -> None:
        self.send(dc_process_name(dc), message)

    def _observe(self, stamp: object) -> None:
        if stamp is not None:
            self.stamp = self.merge(self.stamp, stamp)

    # ------------------------------------------------------------------
    # operation loop
    # ------------------------------------------------------------------

    def _next_op(self) -> None:
        if not self._running:
            return
        if self.max_ops is not None and self.ops_completed >= self.max_ops:
            self._running = False
            return
        op = self.workload(self)
        if op is None:
            self._running = False
            return
        self._dispatch(op)

    def _dispatch(self, op: object) -> None:
        """Issue one operation (the op-type -> request-message mapping)."""
        self._op = op
        self._op_started = self.sim.now
        if isinstance(op, ReadOp):
            self._phase = "read"
            self._send_dc(self.current_dc, ClientRead(self.client_id, op.key))
        elif isinstance(op, UpdateOp):
            self._phase = "update"
            self._send_dc(self.current_dc,
                          ClientUpdate(self.client_id, op.key, op.value_size,
                                       self.stamp))
        elif isinstance(op, RemoteReadOp):
            self._phase = "migrate-out"
            self._send_dc(self.current_dc,
                          ClientMigrate(self.client_id, op.target_dc, self.stamp))
        else:
            raise TypeError(f"unknown operation {op!r}")

    def _complete_op(self, kind: str) -> None:
        self.ops_completed += 1
        if self.metrics is not None:
            self.metrics.record_op(kind, self.sim.now - self._op_started,
                                   self.sim.now)
        self._op = None
        self._phase = "idle"
        self._on_op_complete()

    # -- arrival-model hooks ------------------------------------------------

    def _on_ready(self) -> None:
        """Initial attach finished; the closed loop starts issuing."""
        self._next_op()

    def _on_op_complete(self) -> None:
        """An operation finished; the closed loop issues the next one."""
        self._next_op()

    def _on_op_rejected(self) -> None:
        """Admission control refused the update (no stamp to fold)."""
        self.ops_rejected += 1
        self._op = None
        self._phase = "idle"
        self._on_op_complete()

    # ------------------------------------------------------------------
    # replies
    # ------------------------------------------------------------------

    def receive(self, sender: str, message) -> None:
        if isinstance(message, AttachOk):
            self._on_attach_ok()
        elif isinstance(message, ReadReply):
            self._observe(message.label)
            self._log_read(message)
            self._on_read_reply(message)
        elif isinstance(message, UpdateReply):
            if message.rejected:
                self._on_op_rejected()
            else:
                self._observe(message.label)
                self._log_update(message)
                self._complete_op("update")
        elif isinstance(message, MigrateReply):
            self._observe(message.label)
            self._on_migrate_reply()
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected message {message!r}")

    # -- execution-log hooks (only active when a checker is attached) -------

    def _log_read(self, message: ReadReply) -> None:
        if self.execution_log is None:
            return
        observed_max = self._observed_max_per_key.get(message.key)
        self.execution_log.record_read(self.client_id, self.current_dc,
                                       message.key, message.version,
                                       observed_max)
        if message.version is not None:
            self._track_version(message.key, message.version)

    def _log_update(self, message: UpdateReply) -> None:
        if self.execution_log is None:
            return
        if message.version is not None:
            self.execution_log.record_update_deps(message.version,
                                                  frozenset(self._observed))
            self._track_version(message.key, message.version)

    def _track_version(self, key: str, version) -> None:
        self._observed.add(version)
        current = self._observed_max_per_key.get(key)
        if current is None or version > current:
            self._observed_max_per_key[key] = version

    def _on_attach_ok(self) -> None:
        if self._phase == "initial-attach":
            self._on_ready()
        elif self._phase == "attach-remote":
            op = self._op
            assert isinstance(op, RemoteReadOp)
            self._phase = "remote-read"
            self._send_dc(self.current_dc, ClientRead(self.client_id, op.key))
        elif self._phase == "attach-home":
            self._complete_op("remote_read")
        else:  # pragma: no cover - protocol error
            raise RuntimeError(f"unexpected AttachOk in phase {self._phase}")

    def _on_read_reply(self, message: ReadReply) -> None:
        if self._phase == "read":
            self._complete_op("read")
        elif self._phase == "remote-read":
            op = self._op
            assert isinstance(op, RemoteReadOp)
            self._phase = "migrate-back"
            self._send_dc(self.current_dc,
                          ClientMigrate(self.client_id, self.home_dc, self.stamp))
        else:  # pragma: no cover - protocol error
            raise RuntimeError(f"unexpected ReadReply in phase {self._phase}")

    def _on_migrate_reply(self) -> None:
        if self._phase == "migrate-out":
            op = self._op
            assert isinstance(op, RemoteReadOp)
            self.current_dc = op.target_dc
            self._phase = "attach-remote"
            self._send_dc(self.current_dc,
                          ClientAttach(self.client_id, self.stamp))
        elif self._phase == "migrate-back":
            self.current_dc = self.home_dc
            self._phase = "attach-home"
            self._send_dc(self.current_dc,
                          ClientAttach(self.client_id, self.stamp))
        else:  # pragma: no cover - protocol error
            raise RuntimeError(f"unexpected MigrateReply in phase {self._phase}")
