"""Datacenter assembly: the abstract decomposition of §4 wired together.

One :class:`SaturnDatacenter` is a single simulated process containing the
paper's per-datacenter components — stateless frontend logic, one gear per
storage partition, the label sink, and the remote proxy.  Inter-datacenter
traffic (bulk payloads, heartbeats) and Saturn label batches are real
network messages.

``consistency`` selects the system variant:

* ``"saturn"``  — labels stream through the Saturn serializer tree; remote
  updates apply in Saturn order (the paper's full system);
* ``"timestamp"`` — the P-configuration: no tree, remote updates apply in
  conservative timestamp order using bulk-channel stability;
* ``"eventual"`` — the baseline: remote updates apply on payload arrival
  with no ordering (throughput upper-bound / latency lower-bound).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.label import Label, LabelType
from repro.core.naming import dc_process_name
from repro.core.replication import ReplicationMap
from repro.datacenter.frontend import Frontend
from repro.datacenter.gear import Gear
from repro.datacenter.failover import SinkFailoverDetector
from repro.datacenter.label_sink import LabelSink
from repro.datacenter.messages import (BulkHeartbeat, ClientAttach,
                                       ClientMigrate, ClientRead, ClientUpdate,
                                       LabelBatch, LabelCredit, Ping, Pong,
                                       RemotePayload, SerializerBeacon)
from repro.datacenter.overload import AdmissionController
from repro.datacenter.remote_proxy import RemoteProxy
from repro.datacenter.storage import PartitionedStore
from repro.sim.clock import PhysicalClock
from repro.sim.cpu import CostModel
from repro.sim.engine import Simulator
from repro.sim.process import Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.service import SaturnService

# dc_process_name moved to repro.core.naming (the serializer needs it and
# core must not import upward); re-exported here for compatibility.
__all__ = ["DatacenterParams", "SaturnDatacenter", "dc_process_name"]


@dataclass
class DatacenterParams:
    """Static configuration of one datacenter."""

    name: str
    site: str
    num_partitions: int = 2
    consistency: str = "saturn"  # "saturn" | "timestamp" | "eventual"
    sink_batch_period: float = 1.0
    sink_heartbeat_period: float = 10.0
    bulk_heartbeat_period: float = 5.0
    parallel_concurrent_apply: bool = True
    remote_apply_factor: float = 0.6
    #: Saturn outage detection: ping the ingress serializer (0 disables)
    ping_period: float = 0.0
    ping_miss_threshold: int = 3
    #: a ping counts as missed only after this long without a pong; must
    #: exceed the worst round trip to the ingress serializer
    ping_timeout: float = 400.0
    #: push-based failure detection: suspect the tree attachment after this
    #: long without a SerializerBeacon (0 disables the detector; pair with
    #: SaturnService(beacon_period=...) — see repro.datacenter.failover)
    beacon_timeout: float = 0.0
    #: suspicion -> degraded delay (a late beacon within it clears suspicion)
    stabilization_wait: float = 4.0
    #: probing of the dead attachment while degraded, with backoff
    probe_period: float = 4.0
    probe_backoff: float = 2.0
    probe_period_max: float = 30.0
    #: fast-path epoch changes stuck longer than this fall back to the
    #: failure path (0 disables; see RemoteProxy._escalate_transition)
    transition_timeout: float = 0.0
    #: how far back (ms) the sink re-sends labels on an emergency epoch
    #: change; -1 auto-sizes from the detection window, 0 disables replay
    label_replay_window: float = -1.0
    #: opt-in overload machinery (repro.datacenter.overload): cap on
    #: admitted-but-unshipped update labels (0 disables admission control)
    sink_buffer_cap: int = 0
    #: flow-control credits towards the ingress serializer (0 disables)
    sink_credits: int = 0

    def __post_init__(self) -> None:
        if self.consistency not in ("saturn", "timestamp", "eventual"):
            raise ValueError(f"unknown consistency {self.consistency!r}")
        if self.label_replay_window < 0:
            # must cover everything possibly swallowed by a dead tree:
            # labels sent after the crash but before degradation (detection
            # window) plus slack for propagation and probe/recovery delays
            self.label_replay_window = (
                2.0 * (self.beacon_timeout + self.stabilization_wait) + 20.0
                if self.beacon_timeout > 0 else 0.0)


class SaturnDatacenter(Process):
    """A geo-replicated datacenter with Saturn hooks."""

    def __init__(self, sim: Simulator, params: DatacenterParams,
                 replication: ReplicationMap, cost_model: CostModel,
                 clock: PhysicalClock, metrics=None, execution_log=None) -> None:
        super().__init__(sim, dc_process_name(params.name))
        self.params = params
        self.dc_name = params.name
        self.site = params.site
        self.consistency = params.consistency
        self.replication = replication
        self.cost_model = cost_model
        self.clock = clock
        self.metrics = metrics
        self.execution_log = execution_log

        self.store = PartitionedStore(sim, params.num_partitions)
        self.gears: List[Gear] = [Gear(self, p) for p in self.store.partitions]
        self.frontend = Frontend(self)
        self.proxy = RemoteProxy(
            self, mode=self._proxy_mode(),
            parallel_concurrent=params.parallel_concurrent_apply)
        self.proxy.transition_timeout = params.transition_timeout
        self.sink = LabelSink(self, batch_period=params.sink_batch_period,
                              heartbeat_period=params.sink_heartbeat_period,
                              replay_window=params.label_replay_window,
                              credits=(params.sink_credits
                                       if params.sink_credits > 0 else None))
        self.admission: Optional[AdmissionController] = None
        if params.sink_buffer_cap > 0 and self.consistency == "saturn":
            self.admission = AdmissionController(
                params.sink_buffer_cap, component=f"admission:{self.dc_name}")
            self.sink.admission = self.admission
        self.failover: Optional[SinkFailoverDetector] = None
        if params.beacon_timeout > 0 and self.consistency == "saturn":
            self.failover = SinkFailoverDetector(
                self, beacon_timeout=params.beacon_timeout,
                stabilization_wait=params.stabilization_wait,
                probe_period=params.probe_period,
                probe_backoff=params.probe_backoff,
                probe_period_max=params.probe_period_max)

        #: wired by the harness: the Saturn metadata service (tree mode only)
        self.saturn: Optional["SaturnService"] = None
        self.sink_epoch = 0
        self.saturn_down = False
        self._ping_seq = 0
        self._outstanding_pings: Dict[int, float] = {}

    def _proxy_mode(self) -> str:
        return {"saturn": "saturn", "timestamp": "timestamp",
                "eventual": "eventual"}[self.consistency]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start periodic machinery; call after network wiring."""
        if self.consistency == "saturn":
            self.sink.start()
        if self.params.bulk_heartbeat_period > 0 and self.consistency != "eventual":
            self.every(self.params.bulk_heartbeat_period, self._bulk_heartbeat)
        if (self.params.ping_period > 0 and self.consistency == "saturn"
                and self.saturn is not None):
            self.every(self.params.ping_period, self._ping_saturn)
        if self.failover is not None and self.saturn is not None:
            self.failover.start()

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------

    def receive(self, sender: str, message) -> None:
        if isinstance(message, ClientRead):
            self.frontend.read(sender, message.key)
        elif isinstance(message, ClientUpdate):
            self.frontend.update(sender, message.key, message.value_size,
                                 message.label)
        elif isinstance(message, ClientAttach):
            self.frontend.attach(sender, message.label)
        elif isinstance(message, ClientMigrate):
            self.frontend.migrate(sender, message.target_dc, message.label)
        elif isinstance(message, RemotePayload):
            self.proxy.on_payload(message)
        elif isinstance(message, BulkHeartbeat):
            self.proxy.on_heartbeat(message)
        elif isinstance(message, LabelBatch):
            self.proxy.on_labels(message)
        elif isinstance(message, Pong):
            self._outstanding_pings.pop(message.seq, None)
            if self.failover is not None:
                self.failover.on_pong(message.seq)
        elif isinstance(message, LabelCredit):
            self.sink.on_credit(message.labels)
        elif isinstance(message, SerializerBeacon):
            if self.failover is not None:
                self.failover.on_beacon(message)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected message {message!r}")

    def reply(self, client: str, message) -> None:
        self.send(client, message)

    # ------------------------------------------------------------------
    # cost helpers
    # ------------------------------------------------------------------

    def read_cost(self, value_size: int) -> float:
        if self.consistency == "eventual":
            return self.cost_model.read_base + self.cost_model.per_byte * value_size
        return self.cost_model.read_cost(value_size)

    def write_cost(self, value_size: int) -> float:
        if self.consistency == "eventual":
            return self.cost_model.write_base + self.cost_model.per_byte * value_size
        return self.cost_model.write_cost(value_size)

    def remote_apply_cost(self, value_size: int) -> float:
        return self.params.remote_apply_factor * self.write_cost(value_size)

    def cpu_for_sink(self, num_labels: int) -> None:
        """Label-sink batching consumes CPU on the first partition server."""
        self.store.partitions[0].cpu.consume(
            self.cost_model.label_sink_per_label * num_labels)

    # ------------------------------------------------------------------
    # outbound traffic
    # ------------------------------------------------------------------

    def send_bulk(self, dc_name: str, payload: RemotePayload,
                  size_bytes: int = 0) -> None:
        if self.network is None:
            return
        self.network.send(self.name, dc_process_name(dc_name), payload,
                          size_bytes=size_bytes)

    def _bulk_heartbeat(self) -> None:
        ts = self.clock.timestamp()
        heartbeat = BulkHeartbeat(origin_dc=self.dc_name, ts=ts)
        for dc in self.replication.datacenters:
            if dc != self.dc_name:
                self.send(dc_process_name(dc), heartbeat)

    def send_to_saturn(self, labels: Sequence[Label],
                       replayed: bool = False) -> None:
        if self.consistency != "saturn" or self.saturn is None:
            return
        ingress = self.saturn.ingress_process(self.dc_name, self.sink_epoch)
        if ingress is None:
            return
        self.send(ingress, LabelBatch(tuple(labels), epoch=self.sink_epoch,
                                      replayed=replayed))

    # ------------------------------------------------------------------
    # reconfiguration (§6.2)
    # ------------------------------------------------------------------

    def switch_tree(self, new_epoch: int, emergency: bool = False) -> None:
        """Move this datacenter's label stream from C1 to the C2 tree."""
        if not emergency:
            ts = self.clock.timestamp()
            label = Label(LabelType.EPOCH_CHANGE, src=f"{self.dc_name}/sink",
                          ts=ts, target=str(new_epoch), origin_dc=self.dc_name)
            self.sink.add(label)
            self.sink.flush()
        self.sink_epoch = new_epoch
        if self.failover is not None:
            self.failover.on_switch(new_epoch)
        if emergency:
            # re-propagate through C2 whatever the dead tree may have
            # swallowed: the parked backlog plus the recent-send window
            # (duplicates are discarded by the remote proxies' dedup)
            self.sink.replay_recent()
        self.proxy.begin_transition(new_epoch, emergency=emergency)

    # ------------------------------------------------------------------
    # outage detection
    # ------------------------------------------------------------------

    def _ping_saturn(self) -> None:
        if self.saturn_down or self.saturn is None:
            return
        deadline = self.sim.now - self.params.ping_timeout
        missed = sum(1 for sent_at in self._outstanding_pings.values()
                     if sent_at <= deadline)
        if missed >= self.params.ping_miss_threshold:
            self.saturn_down = True
            self.proxy.enter_fallback()
            return
        ingress = self.saturn.ingress_process(self.dc_name, self.sink_epoch)
        if ingress is None:
            return
        self._ping_seq += 1
        self._outstanding_pings[self._ping_seq] = self.sim.now
        self.send(ingress, Ping(seq=self._ping_seq, origin=self.name))

    # ------------------------------------------------------------------
    # observation hooks
    # ------------------------------------------------------------------

    def on_local_update(self, label: Label, created_at: float) -> None:
        if self.execution_log is not None:
            self.execution_log.record_update(label, self.dc_name, created_at)

    def on_remote_visible(self, payload: RemotePayload) -> None:
        if self.metrics is not None:
            self.metrics.record_visibility(
                payload.label.origin_dc, self.dc_name,
                self.sim.now - payload.created_at)
        if self.execution_log is not None:
            self.execution_log.record_visible(payload.label, self.dc_name,
                                              self.sim.now)
