"""Sink failover state machine: detect a dead tree attachment, degrade,
probe, and re-attach (§2.3 / §6.2 robustness machinery).

Each Saturn datacenter can run one :class:`SinkFailoverDetector` next to its
label sink.  Serializers push :class:`~repro.datacenter.messages.SerializerBeacon`
liveness beacons to every attached sink (see
:meth:`repro.core.serializer.Serializer.start_beacons`); the detector expects
one every ``beacon_period`` ms and walks a three-state machine on silence:

``ATTACHED`` --(no beacon for ``beacon_timeout`` ms)--> ``SUSPECTED``
    Suspicion is tentative: a beacon arriving within ``stabilization_wait``
    ms clears it (late beacons, transient congestion).

``SUSPECTED`` --(still silent after ``stabilization_wait`` ms)--> ``DEGRADED``
    The datacenter gives up on the tree: the proxy falls back to the
    timestamp total order of labels piggybacked on bulk payloads (always
    available, §2.3 — buffered entries drain in ``(ts, source)`` order once
    stable), and the sink *parks* outgoing labels for later replay.  The
    detector then probes the dead attachment with ``Ping`` at
    ``probe_period`` ms, backing off by ``probe_backoff``× per attempt up
    to ``probe_period_max``.

``DEGRADED`` --(recovered tree's beacon after an epoch change)--> ``ATTACHED``
    Connectivity evidence (a probe's ``Pong``, or a beacon from the failed
    epoch's restarted serializer) is *reported* to the coordinator
    (:class:`repro.core.failover.AutoFailover`), which triggers an
    emergency epoch-change reconfiguration once every suspected datacenter
    can reach the tree again.  The detector only re-attaches after the
    switch raised the watched epoch past the failed one: re-attaching to
    the *same* epoch would strand the proxy in emergency mode with no
    transition target, since the labels swallowed by the dead tree are
    re-propagated by the sink replay only through the *new* epoch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional, Set, Tuple

from repro.datacenter.messages import Ping, SerializerBeacon

if TYPE_CHECKING:  # pragma: no cover
    from repro.datacenter.datacenter import SaturnDatacenter

__all__ = ["SinkFailoverDetector", "ATTACHED", "SUSPECTED", "DEGRADED"]

ATTACHED = "attached"
SUSPECTED = "suspected"
DEGRADED = "degraded"


class SinkFailoverDetector:
    """Per-datacenter serializer-liveness detector with degraded fallback."""

    def __init__(self, dc: "SaturnDatacenter", beacon_timeout: float,
                 stabilization_wait: float = 4.0,
                 probe_period: float = 4.0, probe_backoff: float = 2.0,
                 probe_period_max: float = 30.0) -> None:
        if beacon_timeout <= 0:
            raise ValueError("beacon_timeout must be positive")
        self.dc = dc
        self.beacon_timeout = beacon_timeout
        self.stabilization_wait = stabilization_wait
        self.probe_period = probe_period
        self.probe_backoff = probe_backoff
        self.probe_period_max = probe_period_max
        #: coordinator with on_suspected / on_suspicion_cleared /
        #: on_reachable / on_reattached callbacks (may stay None)
        self.coordinator: Optional[Any] = None

        self.state = ATTACHED
        #: (sim time, new state) history, for tests and experiments
        self.transitions: List[Tuple[float, str]] = []
        #: (degraded_at, reattached_at) closed intervals
        self.degraded_spans: List[Tuple[float, float]] = []

        self._last_beacon = 0.0
        self._watched_epoch = 0
        self._failed_epoch = -1
        self._degraded_at = 0.0
        self._check_timer = None
        self._degrade_event = None
        self._probe_event = None
        self._probe_interval = probe_period
        #: detector-owned ping sequence space: negative so it can never
        #: collide with the datacenter's own outage-detection pings
        self._probe_seq = 0
        self._probe_seqs: Set[int] = set()
        self._reachable_reported = False
        #: highest beacon incarnation seen from the watched epoch's tree
        self._seen_incarnation = 0
        #: opt-in label-lifecycle tracer (repro.obs)
        self.obs = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Arm the detector; call after network wiring (grace period starts
        now, so a freshly booted tree has ``beacon_timeout`` to speak up)."""
        self._last_beacon = self.dc.sim.now
        self._check_timer = self.dc.every(self.beacon_timeout / 2, self._check)

    # -- inputs -------------------------------------------------------------

    def on_beacon(self, beacon: SerializerBeacon) -> None:
        if beacon.epoch != self._watched_epoch:
            # a stale epoch speaking again (restarted serializer of the
            # tree we already gave up on): connectivity evidence only
            if self.state == DEGRADED and beacon.epoch == self._failed_epoch:
                self._report_reachable()
            return
        if beacon.incarnation > self._seen_incarnation:
            # the watched tree crashed and restarted: every label batch it
            # held — or that was sent at it while down — is gone.  Liveness
            # is not continuity: even if the beacon returns before the
            # silence was noticed (a fast fail-recover inside the suspicion
            # window), the only safe path is degrade + emergency epoch
            # change, whose sink replay re-propagates the swallowed labels.
            self._seen_incarnation = beacon.incarnation
            self._tree_lost_state()
            return
        if self.state == ATTACHED:
            self._last_beacon = self.dc.sim.now
        elif self.state == SUSPECTED:
            self._last_beacon = self.dc.sim.now
            self._cancel_degrade()
            self._enter(ATTACHED)
            if self.coordinator is not None:
                self.coordinator.on_suspicion_cleared(self.dc.dc_name)
        elif self.state == DEGRADED:
            if self._watched_epoch > self._failed_epoch:
                self._last_beacon = self.dc.sim.now
                self._reattach()
            else:
                self._report_reachable()

    def on_pong(self, seq: int) -> None:
        """A probe came back: the failed attachment answers again."""
        if seq in self._probe_seqs:
            self._probe_seqs.discard(seq)
            if self.state == DEGRADED:
                self._report_reachable()

    def on_switch(self, new_epoch: int) -> None:
        """The datacenter moved its sink to *new_epoch* (any reconfiguration,
        planned or emergency)."""
        self._watched_epoch = new_epoch
        self._last_beacon = self.dc.sim.now  # grace for the new tree
        self._seen_incarnation = 0  # fresh processes, fresh count
        self._cancel_probes()
        if self.state == SUSPECTED:
            # a planned switch outran the stabilization wait
            self._cancel_degrade()
            self._enter(ATTACHED)
            if self.coordinator is not None:
                self.coordinator.on_suspicion_cleared(self.dc.dc_name)

    # -- state machine ------------------------------------------------------

    def _enter(self, state: str) -> None:
        self.state = state
        self.transitions.append((self.dc.sim.now, state))
        if self.obs is not None:
            self.obs.annotate(self.dc.sim.now, "failover", self.dc.dc_name,
                              state=state)

    def _check(self) -> None:
        if self.state != ATTACHED:
            return
        if self.dc.sim.now - self._last_beacon <= self.beacon_timeout:
            return
        self._failed_epoch = self._watched_epoch
        self._enter(SUSPECTED)
        if self.coordinator is not None:
            self.coordinator.on_suspected(self.dc.dc_name, self._failed_epoch)
        self._degrade_event = self.dc.set_timer(self.stabilization_wait,
                                                self._degrade)

    def _tree_lost_state(self) -> None:
        """Definitive failure evidence for the watched epoch (a restarted
        serializer's first beacon): skip the silence heuristics and force
        the degrade -> recover arc.  The beacon itself proves the tree is
        reachable, so the coordinator can fire the epoch change at once."""
        if self.state == DEGRADED:
            self._report_reachable()
            return
        self._cancel_degrade()
        if self.state == ATTACHED:
            self._failed_epoch = self._watched_epoch
            self._enter(SUSPECTED)
            if self.coordinator is not None:
                self.coordinator.on_suspected(self.dc.dc_name,
                                              self._failed_epoch)
        self._degrade()
        self._report_reachable()

    def _degrade(self) -> None:
        if self.state != SUSPECTED:
            return
        self._enter(DEGRADED)
        self._degraded_at = self.dc.sim.now
        self._reachable_reported = False
        self.dc.saturn_down = True
        self.dc.sink.park()
        self.dc.proxy.enter_fallback()
        self._probe_interval = self.probe_period
        self._schedule_probe()

    def _reattach(self) -> None:
        self._cancel_probes()
        self.dc.saturn_down = False
        if self.dc.sink.parked:
            # a *planned* switch moved us to the new epoch while degraded
            # (the emergency path replays at switch time instead): unpark
            # and push the backlog through the live tree
            self.dc.sink.replay_recent()
        self.degraded_spans.append((self._degraded_at, self.dc.sim.now))
        self._enter(ATTACHED)
        if self.coordinator is not None:
            self.coordinator.on_reattached(self.dc.dc_name)

    def _report_reachable(self) -> None:
        if self._reachable_reported:
            return
        self._reachable_reported = True
        if self.coordinator is not None:
            self.coordinator.on_reachable(self.dc.dc_name)

    # -- probing (retry with backoff) ---------------------------------------

    def _schedule_probe(self) -> None:
        self._probe_event = self.dc.set_timer(self._probe_interval,
                                              self._probe)

    def _probe(self) -> None:
        if self.state != DEGRADED:
            return
        if self.dc.saturn is not None:
            ingress = self.dc.saturn.ingress_process(self.dc.dc_name,
                                                     self._failed_epoch)
            if ingress is not None:
                self._probe_seq -= 1
                self._probe_seqs.add(self._probe_seq)
                self.dc.send(ingress, Ping(seq=self._probe_seq,
                                           origin=self.dc.name))
        self._probe_interval = min(self._probe_interval * self.probe_backoff,
                                   self.probe_period_max)
        self._schedule_probe()

    # -- timer bookkeeping --------------------------------------------------

    def _cancel_degrade(self) -> None:
        if self._degrade_event is not None:
            self._degrade_event.cancel()
            self._degrade_event = None

    def _cancel_probes(self) -> None:
        if self._probe_event is not None:
            self._probe_event.cancel()
            self._probe_event = None
        self._probe_seqs.clear()
