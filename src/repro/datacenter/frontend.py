"""Stateless frontends (§4, Alg. 1).

Frontends shield clients from the datacenter internals: they enforce the
attach condition (the client's causal past must be visible locally before it
may operate), forward reads/updates to the responsible storage server, and
forward migration requests to any gear.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.label import Label, LabelType
from repro.datacenter.messages import (AttachOk, MigrateReply, ReadReply,
                                       UpdateReply)

if TYPE_CHECKING:  # pragma: no cover
    from repro.datacenter.datacenter import SaturnDatacenter

__all__ = ["Frontend"]


class Frontend:
    """Client request handling for one datacenter."""

    def __init__(self, dc: "SaturnDatacenter") -> None:
        self.dc = dc
        self._migrate_rr = 0

    # -- attach (Alg. 1, ATTACH) -------------------------------------------

    def attach(self, client: str, label: Optional[Label]) -> None:
        dc = self.dc

        def _ok() -> None:
            dc.reply(client, AttachOk(client_id=client))

        if label is None or label.origin_dc == dc.dc_name:
            _ok()
            return
        if dc.consistency == "eventual":
            _ok()
            return
        if label.type is LabelType.MIGRATION:
            dc.proxy.wait_for(lambda: dc.proxy.migration_processed(label), _ok)
        else:
            dc.proxy.wait_for(lambda: dc.proxy.update_stable(label), _ok)

    # -- read (Alg. 1, READ) --------------------------------------------------

    def read(self, client: str, key: str) -> None:
        dc = self.dc
        partition = dc.store.partition_for(key)
        gear = dc.gears[partition.index]

        def _done() -> None:
            stored = gear.read(key)
            if stored is None:
                dc.reply(client, ReadReply(client_id=client, key=key,
                                           label=None, value_size=0))
            else:
                dc.reply(client, ReadReply(
                    client_id=client, key=key, label=stored.label,
                    value_size=stored.value_size,
                    version=(stored.label.ts, stored.label.src)))

        size = 0
        stored_now = partition.get(key)
        if stored_now is not None:
            size = stored_now.value_size
        partition.cpu.submit(dc.read_cost(size), _done)

    # -- update (Alg. 1, UPDATE) ------------------------------------------------

    def update(self, client: str, key: str, value_size: int,
               client_label: Optional[Label]) -> None:
        dc = self.dc
        if dc.admission is not None and not dc.admission.try_admit(dc.sim.now):
            # Overload configuration: shed load *before* it costs storage
            # CPU — a rejected update never existed, so causal visibility
            # of everything admitted is unaffected.
            dc.reply(client, UpdateReply(client_id=client, key=key,
                                         label=None, rejected=True))
            return
        partition = dc.store.partition_for(key)
        gear = dc.gears[partition.index]

        def _done() -> None:
            label = gear.update(key, value_size, client_label)
            dc.reply(client, UpdateReply(client_id=client, key=key, label=label,
                                         version=(label.ts, label.src)))

        partition.cpu.submit(dc.write_cost(value_size), _done)

    # -- migrate (Alg. 1, MIGRATE) ------------------------------------------------

    def migrate(self, client: str, target_dc: str,
                client_label: Optional[Label]) -> None:
        dc = self.dc
        gear = dc.gears[self._migrate_rr % len(dc.gears)]
        self._migrate_rr += 1

        def _done() -> None:
            label = gear.migration(target_dc, client_label)
            dc.reply(client, MigrateReply(client_id=client, label=label))

        gear.partition.cpu.submit(dc.cost_model.attach_check, _done)
