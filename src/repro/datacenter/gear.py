"""Gears (§4, Alg. 2).

A gear is attached to each storage server (partition).  It intercepts update
requests, generates the update's label (timestamp strictly greater than the
client's causal past), persists the value, ships the payload to remote
replicas through the bulk-data transfer service, and hands the label to the
label sink.  It also mints migration labels (§4.4).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.core.label import Label, LabelType
from repro.datacenter.messages import RemotePayload
from repro.datacenter.storage import Partition, StoredValue

if TYPE_CHECKING:  # pragma: no cover
    from repro.datacenter.datacenter import SaturnDatacenter

__all__ = ["Gear"]


class Gear:
    """Label generation and update propagation for one partition."""

    def __init__(self, dc: "SaturnDatacenter", partition: Partition) -> None:
        self.dc = dc
        self.partition = partition
        self.gear_id = f"{dc.dc_name}/g{partition.index}"
        self.labels_generated = 0

    def _next_timestamp(self, client_label: Optional[Label]) -> float:
        at_least = client_label.ts if client_label is not None else None
        return self.dc.clock.timestamp(at_least=at_least)

    def update(self, key: str, value_size: int,
               client_label: Optional[Label]) -> Label:
        """Apply a local update (Alg. 2, UPDATE): generate the label, write
        the store, ship payload to replicas, hand the label to the sink."""
        ts = self._next_timestamp(client_label)
        label = Label(LabelType.UPDATE, src=self.gear_id, ts=ts, target=key,
                      origin_dc=self.dc.dc_name)
        self.partition.put(key, StoredValue(label=label, value_size=value_size))
        self.labels_generated += 1
        created_at = self.dc.sim.now
        payload = RemotePayload(label=label, key=key, value_size=value_size,
                                created_at=created_at)
        for replica in sorted(self.dc.replication.replicas(key)):
            if replica != self.dc.dc_name:
                self.dc.send_bulk(replica, payload, size_bytes=value_size)
        self.dc.sink.add(label)
        self.dc.on_local_update(label, created_at)
        return label

    def migration(self, target_dc: str, client_label: Optional[Label]) -> Label:
        """Mint a migration label greater than the client's causal past
        (Alg. 2, MIGRATION) and hand it to the sink."""
        ts = self._next_timestamp(client_label)
        label = Label(LabelType.MIGRATION, src=self.gear_id, ts=ts,
                      target=target_dc, origin_dc=self.dc.dc_name)
        self.labels_generated += 1
        self.dc.sink.add(label)
        return label

    def read(self, key: str) -> Optional[StoredValue]:
        """Return the most recent local version of *key* (Alg. 2, READ)."""
        return self.partition.get(key)
