"""Wire messages exchanged between clients, datacenters, and Saturn.

These are small frozen dataclasses: the simulator passes them by reference,
and ``payload_size`` fields let the network account for bytes without
materializing actual values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.label import Label

__all__ = [
    "ClientAttach", "ClientRead", "ClientUpdate", "ClientMigrate",
    "AttachOk", "ReadReply", "UpdateReply", "MigrateReply",
    "RemotePayload", "BulkHeartbeat", "LabelBatch", "StabilizationMsg",
    "Ping", "Pong", "SerializerBeacon",
]


# -- client -> datacenter ----------------------------------------------------

@dataclass(frozen=True)
class ClientAttach:
    client_id: str
    label: Optional[Label]


@dataclass(frozen=True)
class ClientRead:
    client_id: str
    key: str


@dataclass(frozen=True)
class ClientUpdate:
    client_id: str
    key: str
    value_size: int
    label: Optional[Label]


@dataclass(frozen=True)
class ClientMigrate:
    client_id: str
    target_dc: str
    label: Optional[Label]


# -- datacenter -> client ----------------------------------------------------

@dataclass(frozen=True)
class AttachOk:
    client_id: str


@dataclass(frozen=True)
class ReadReply:
    client_id: str
    key: str
    label: Optional[Label]
    value_size: int
    #: (ts, src) identity of the returned version (for the offline checker)
    version: Optional[Tuple[float, str]] = None


@dataclass(frozen=True)
class UpdateReply:
    client_id: str
    key: str
    label: Label
    #: (ts, src) identity of the written version (for the offline checker)
    version: Optional[Tuple[float, str]] = None


@dataclass(frozen=True)
class MigrateReply:
    client_id: str
    label: Label


# -- datacenter <-> datacenter (bulk-data transfer) ---------------------------

@dataclass(frozen=True)
class RemotePayload:
    """An update's payload shipped by the bulk-data transfer service.

    The label is piggybacked (the paper relies on this for the
    timestamp-order fallback) together with the true creation time used for
    visibility-latency measurement.
    """

    label: Label
    key: str
    value_size: int
    created_at: float


@dataclass(frozen=True)
class BulkHeartbeat:
    """Periodic per-origin timestamp announcement on the bulk channel.

    Drives timestamp-order stability (fallback mode, P-configuration, and
    the conservative attach path for remote update labels)."""

    origin_dc: str
    ts: float


# -- datacenter <-> Saturn ----------------------------------------------------

@dataclass(frozen=True)
class LabelBatch:
    """A causally ordered batch of labels travelling through Saturn."""

    labels: Tuple[Label, ...]
    #: id of the tree configuration that carried the batch (epoch changes)
    epoch: int = 0
    #: True when the batch is a sink replay after an emergency epoch change:
    #: it may repeat labels the receiver already processed, so proxies relax
    #: their dedup for these labels (see RemoteProxy._pump_saturn)
    replayed: bool = False


# -- stabilization (GentleRain / Cure baselines) -------------------------------

@dataclass(frozen=True)
class StabilizationMsg:
    """Periodic metadata exchange between stabilization managers."""

    origin_dc: str
    #: scalar LST for GentleRain, tuple vector for Cure
    value: object = None


# -- liveness probes (Saturn outage detection) ---------------------------------

@dataclass(frozen=True)
class Ping:
    seq: int
    origin: str


@dataclass(frozen=True)
class Pong:
    seq: int


@dataclass(frozen=True)
class SerializerBeacon:
    """Periodic liveness beacon from a serializer to its attached sinks.

    Push-style complement to Ping/Pong: each datacenter's failure detector
    expects a beacon every ``beacon_period`` ms and raises suspicion after
    ``beacon_timeout`` ms of silence (see repro.datacenter.failover).

    ``incarnation`` counts fail-recover cycles of the sending serializer.
    A beacon with a higher incarnation than previously seen proves the
    tree crashed and lost its volatile state — *liveness* evidence is not
    *continuity* evidence, and the detector must force the recovery path
    even if the beacon arrives before the silence was ever noticed."""

    epoch: int
    tree_name: str
    ts: float
    incarnation: int = 0
