"""Wire messages exchanged between clients, datacenters, and Saturn.

These are small frozen dataclasses: the simulator passes them by reference,
and ``payload_size`` fields let the network account for bytes without
materializing actual values.

Everything here is **wire-safe plain data** (see ``arch_contract.toml`` and
the ARCH2xx audit rules): frozen, slotted, and composed only of scalars,
tuples, and the :class:`~repro.core.label.Label` value type, so a message
can be serialized byte-for-byte once a real transport replaces the
simulated network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.core.label import Label

__all__ = [
    "ClientAttach", "ClientRead", "ClientUpdate", "ClientMigrate",
    "AttachOk", "ReadReply", "UpdateReply", "MigrateReply",
    "RemotePayload", "BulkHeartbeat", "LabelBatch", "StabilizationMsg",
    "Ping", "Pong", "SerializerBeacon", "LabelCredit", "Stamp",
]

#: A client's causal past as carried on the wire.  The concrete shape is
#: system-specific: Saturn ships its greatest :class:`Label`, GentleRain a
#: scalar timestamp, Cure a sorted ``(dc, ts)`` tuple vector.  The
#: explicit-dependency baseline extends this union with its own frozen
#: plain-data ``DepContext`` (repro.baselines.explicit) — core cannot name
#: it here without importing upward, but it obeys the same wire rules.
Stamp = Union[None, Label, float, Tuple[Tuple[str, float], ...]]


# -- client -> datacenter ----------------------------------------------------

@dataclass(frozen=True, slots=True)
class ClientAttach:
    client_id: str
    label: Stamp


@dataclass(frozen=True, slots=True)
class ClientRead:
    client_id: str
    key: str


@dataclass(frozen=True, slots=True)
class ClientUpdate:
    client_id: str
    key: str
    value_size: int
    label: Stamp


@dataclass(frozen=True, slots=True)
class ClientMigrate:
    client_id: str
    target_dc: str
    label: Stamp


# -- datacenter -> client ----------------------------------------------------

@dataclass(frozen=True, slots=True)
class AttachOk:
    client_id: str


@dataclass(frozen=True, slots=True)
class ReadReply:
    client_id: str
    key: str
    label: Stamp
    value_size: int
    #: (ts, src) identity of the returned version (for the offline checker)
    version: Optional[Tuple[float, str]] = None


@dataclass(frozen=True, slots=True)
class UpdateReply:
    client_id: str
    key: str
    label: Stamp
    #: (ts, src) identity of the written version (for the offline checker)
    version: Optional[Tuple[float, str]] = None
    #: True when admission control refused the update before it reached
    #: storage (label/version are None); see repro.datacenter.overload
    rejected: bool = False


@dataclass(frozen=True, slots=True)
class MigrateReply:
    client_id: str
    #: migration label in Saturn; None in the stabilization baselines,
    #: which re-attach at the target with the client's current stamp
    label: Stamp


# -- datacenter <-> datacenter (bulk-data transfer) ---------------------------

@dataclass(frozen=True, slots=True)
class RemotePayload:
    """An update's payload shipped by the bulk-data transfer service.

    The label is piggybacked (the paper relies on this for the
    timestamp-order fallback) together with the true creation time used for
    visibility-latency measurement.
    """

    label: Label
    key: str
    value_size: int
    created_at: float


@dataclass(frozen=True, slots=True)
class BulkHeartbeat:
    """Periodic per-origin timestamp announcement on the bulk channel.

    Drives timestamp-order stability (fallback mode, P-configuration, and
    the conservative attach path for remote update labels)."""

    origin_dc: str
    ts: float


# -- datacenter <-> Saturn ----------------------------------------------------

@dataclass(frozen=True, slots=True)
class LabelBatch:
    """A causally ordered batch of labels travelling through Saturn."""

    labels: Tuple[Label, ...]
    #: id of the tree configuration that carried the batch (epoch changes)
    epoch: int = 0
    #: True when the batch is a sink replay after an emergency epoch change:
    #: it may repeat labels the receiver already processed, so proxies relax
    #: their dedup for these labels (see RemoteProxy._pump_saturn)
    replayed: bool = False


@dataclass(frozen=True, slots=True)
class LabelCredit:
    """Flow-control grant from an ingress serializer to a label sink.

    Under the overload configuration (:mod:`repro.datacenter.overload`)
    a sink may only have a bounded number of labels outstanding at its
    ingress serializer; the serializer returns the credit as it services
    each batch.  A sink with no credits defers its periodic flush — the
    buffered labels coalesce into a larger batch — which is how queue
    growth inside Saturn propagates back to admission control at the
    frontends without ever dropping a label."""

    labels: int
    tree_name: str = ""


# -- stabilization (GentleRain / Cure baselines) -------------------------------

@dataclass(frozen=True, slots=True)
class StabilizationMsg:
    """Periodic metadata exchange between stabilization managers.

    Both baselines broadcast a scalar — the origin's local clock floor
    (partition LST).  Cure's stable *vector* is never shipped: receivers
    assemble it from these per-origin scalars (see
    ``StabilizedDatacenter._remote_info``)."""

    origin_dc: str
    value: Optional[float] = None


# -- liveness probes (Saturn outage detection) ---------------------------------

@dataclass(frozen=True, slots=True)
class Ping:
    seq: int
    origin: str


@dataclass(frozen=True, slots=True)
class Pong:
    seq: int


@dataclass(frozen=True, slots=True)
class SerializerBeacon:
    """Periodic liveness beacon from a serializer to its attached sinks.

    Push-style complement to Ping/Pong: each datacenter's failure detector
    expects a beacon every ``beacon_period`` ms and raises suspicion after
    ``beacon_timeout`` ms of silence (see repro.datacenter.failover).

    ``incarnation`` counts fail-recover cycles of the sending serializer.
    A beacon with a higher incarnation than previously seen proves the
    tree crashed and lost its volatile state — *liveness* evidence is not
    *continuity* evidence, and the detector must force the recovery path
    even if the beacon arrives before the silence was ever noticed."""

    epoch: int
    tree_name: str
    ts: float
    incarnation: int = 0
