"""Overload machinery: bounded queues, backpressure, admission control.

The paper's evaluation never pushes Saturn past saturation (closed-loop
clients cannot), so it never has to answer what happens when label sinks
and serializers queue up.  This module adds the missing machinery as a
strictly opt-in configuration (:class:`OverloadConfig`); with it unset,
every component behaves — and schedules — exactly as before, which the
golden digests pin.

The backpressure chain, outermost-in:

1. **Serializer service queue** — an ingress serializer services sink
   batches at ``serializer_service_rate`` labels/ms instead of routing
   them for free.  Arriving batches wait in a FIFO; the serializer
   returns a :class:`~repro.datacenter.messages.LabelCredit` to the
   originating sink as each batch is serviced.
2. **Sink flow control** — a sink may have at most ``sink_credits``
   labels outstanding (sent, credit not yet returned).  With no credits
   the periodic flush defers and the buffered labels *coalesce* into a
   larger batch; with partial credits a timestamp-ordered prefix ships
   (a prefix of a sorted batch is itself causally valid).  The ingress
   queue therefore never holds more than ``attached_sinks ×
   sink_credits`` labels — the bound is structural, not best-effort.
3. **Admission control** — the number of update labels admitted but not
   yet shipped to Saturn (in partition CPUs, or buffered in the sink) is
   capped at ``sink_buffer_cap``.  A frontend rejects further updates
   (``UpdateReply(rejected=True)``) before they cost storage CPU, which
   is the only place load is shed: once a label exists it is never
   dropped, so every *admitted* update stays causally visible.

Accounting is exact by construction: every offered update is either
rejected at admission, still in flight (admitted-but-unshipped or
unserviced), or shipped through Saturn — the backpressure invariant
tests reconcile these counters against the open-loop source's offered
count with zero tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["OverloadConfig", "AdmissionController"]


@dataclass(frozen=True)
class OverloadConfig:
    """Opt-in overload knobs for one cluster (0 disables a knob).

    ``sink_buffer_cap`` bounds admitted-but-unshipped update labels per
    datacenter (admission control); ``sink_credits`` bounds labels
    outstanding at the ingress serializer per sink (flow control);
    ``serializer_service_rate`` (labels/ms) is the ingress serializers'
    finite service capacity.  Flow control without a service rate (or
    vice versa) is almost always a configuration mistake, so the pair is
    validated together.
    """

    sink_buffer_cap: int = 0
    sink_credits: int = 0
    serializer_service_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.sink_buffer_cap < 0 or self.sink_credits < 0:
            raise ValueError("caps must be non-negative")
        if self.serializer_service_rate < 0:
            raise ValueError("serializer_service_rate must be non-negative")
        if (self.serializer_service_rate > 0) != (self.sink_credits > 0):
            raise ValueError("serializer_service_rate and sink_credits "
                             "must be enabled together")

    @property
    def enabled(self) -> bool:
        return (self.sink_buffer_cap > 0 or self.sink_credits > 0
                or self.serializer_service_rate > 0)


class AdmissionController:
    """Bounded count of admitted-but-unshipped update labels.

    ``try_admit`` is called by the frontend before submitting an update's
    storage CPU cost; ``on_shipped`` by the label sink as update labels
    leave for Saturn.  The inflight counter therefore covers both the
    partition CPU queues and the sink buffer, and the bound is strict:
    at no instant can more than ``cap`` update labels exist between
    admission and the serializer tree.
    """

    __slots__ = ("cap", "inflight", "admitted", "rejected", "peak_inflight",
                 "obs", "component")

    def __init__(self, cap: int, component: str = "admission") -> None:
        if cap <= 0:
            raise ValueError("cap must be positive")
        self.cap = cap
        self.inflight = 0
        self.admitted = 0
        self.rejected = 0
        self.peak_inflight = 0
        #: opt-in metrics registry (repro.obs.MetricsRegistry) + key
        self.obs = None
        self.component = component

    def try_admit(self, at: float = 0.0) -> bool:
        if self.inflight >= self.cap:
            self.rejected += 1
            if self.obs is not None:
                self.obs.counter(self.component, "rejected").inc(at=at)
            return False
        self.inflight += 1
        self.admitted += 1
        if self.inflight > self.peak_inflight:
            self.peak_inflight = self.inflight
        if self.obs is not None:
            self.obs.counter(self.component, "admitted").inc(at=at)
            self.obs.gauge(self.component, "inflight").set(self.inflight, at)
        return True

    def on_shipped(self, count: int, at: float = 0.0) -> None:
        if count <= 0:
            return
        self.inflight = max(0, self.inflight - count)
        if self.obs is not None:
            self.obs.gauge(self.component, "inflight").set(self.inflight, at)
