"""Remote proxy (§4.3): applies remote operations locally in causal order.

The proxy combines the two serialization sources the paper describes:

* the per-datacenter label serialization provided by **Saturn** (the tree),
  which is the fast path;
* the **timestamp total order** of labels piggybacked on bulk payloads,
  which is the conservative fallback used by the P-configuration, during
  Saturn outages, and during the failure-path reconfiguration (§6.2).

Application is *pipelined*: the proxy dispatches remote operations to the
local storage servers as soon as their turn in the serialization comes and
their payload has arrived (*data readiness*), without waiting for earlier
operations to finish executing — the paper's §4.3 optimization of issuing
multiple remote operations in parallel to the local datacenter.  What is
strictly ordered is the *visibility point*: an update only becomes visible
(installed in the store, counted in watermarks, reported to metrics) once
every operation before it in the serialization is visible.  Setting
``parallel_concurrent=False`` shrinks the dispatch window to one, which
serializes execution completely (used as an ablation).

Timestamp mode buffers payloads in a min-heap and applies an update once it
is *stable*: every other datacenter has announced (payload or bulk
heartbeat) a timestamp at least as large, so nothing earlier can still
arrive on any FIFO bulk channel.

The proxy also maintains per-origin applied watermarks and the set of
processed migration labels, which back the frontend's attach conditions
(Alg. 1), and implements both epoch-change protocols of §6.2.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.core.label import Label, LabelType
from repro.datacenter.messages import BulkHeartbeat, LabelBatch, RemotePayload
from repro.datacenter.storage import StoredValue

if TYPE_CHECKING:  # pragma: no cover
    from repro.datacenter.datacenter import SaturnDatacenter

__all__ = ["RemoteProxy"]

LabelKey = Tuple[float, str]

#: maximum remote operations dispatched to storage servers at once
DISPATCH_WINDOW = 64

#: how many applications between prunes of the dedup set
APPLIED_PRUNE_INTERVAL = 4096


def _key(label: Label) -> LabelKey:
    return (label.ts, label.src)


class _Slot:
    """One position in the in-order visibility pipeline."""

    __slots__ = ("label", "payload", "done")

    def __init__(self, label: Label, payload: Optional[RemotePayload],
                 done: bool) -> None:
        self.label = label
        self.payload = payload
        self.done = done


class RemoteProxy:
    """Per-datacenter application of remote updates in causal order."""

    def __init__(self, dc: "SaturnDatacenter", mode: str = "saturn",
                 parallel_concurrent: bool = True) -> None:
        if mode not in ("saturn", "timestamp", "eventual"):
            raise ValueError(f"unknown proxy mode {mode!r}")
        self.dc = dc
        self.mode = mode
        self.parallel_concurrent = parallel_concurrent
        self.window = DISPATCH_WINDOW if parallel_concurrent else 1
        self.current_epoch = 0

        # Saturn-order machinery
        self._queue: Deque[Label] = deque()
        self._dispatch: Deque[_Slot] = deque()
        self._epoch_buffers: Dict[int, List[Label]] = {}
        self._pending_payloads: Dict[LabelKey, RemotePayload] = {}

        # timestamp-order machinery
        self._ts_heap: List[Tuple[float, str, RemotePayload]] = []
        self._ts_dispatch: Deque[_Slot] = deque()
        self._ts_watermark = float("-inf")

        # shared state
        self._applied: Set[LabelKey] = set()
        #: UPDATE labels that arrived via a sink replay batch: dedup for
        #: these may consult the applied watermark (entries are discarded
        #: as the labels are processed)
        self._replayed_keys: Set[LabelKey] = set()
        self.applied_ts: Dict[str, float] = {}
        self.seen_bulk_ts: Dict[str, float] = {}
        self._migrations_done: Set[LabelKey] = set()
        self._waiters: List[Tuple[Callable[[], bool], Callable[[], None]]] = []

        # epoch-change state
        self._epoch_marks: Dict[int, Set[str]] = {}
        self._transition_target: Optional[int] = None
        self._transition_started_at: Optional[float] = None
        self._emergency = False
        self.reconfiguration_times: List[float] = []
        #: fast-path transitions stuck longer than this escalate to the
        #: failure path (0 disables) — covers C1 dying mid-reconfiguration,
        #: when the epoch-change labels it should carry are lost
        self.transition_timeout = 0.0
        self.transitions_escalated = 0

        # statistics
        self.labels_processed = 0
        self.updates_applied = 0
        self._prune_countdown = APPLIED_PRUNE_INTERVAL
        #: opt-in label-lifecycle tracer (repro.obs)
        self.obs = None

    # ------------------------------------------------------------------
    # event entry points (called by the datacenter process)
    # ------------------------------------------------------------------

    def on_labels(self, batch: LabelBatch) -> None:
        """A label batch delivered by Saturn."""
        obs = self.obs
        if obs is not None:
            if self.mode == "eventual":
                disposition = "ignored-eventual"
            elif batch.epoch > self.current_epoch:
                disposition = "buffered-future-epoch"
            elif batch.epoch < self.current_epoch:
                disposition = "stale-dropped"
            elif self._emergency:
                disposition = "emergency-dropped"
            else:
                disposition = "queued"
            now = self.dc.sim.now
            dc_name = self.dc.dc_name
            for label in batch.labels:
                obs.on_deliver(label, now, dc_name, batch.epoch, disposition)
        if self.mode == "eventual":
            return
        if batch.replayed:
            for label in batch.labels:
                if label.type is LabelType.UPDATE:
                    self._replayed_keys.add(_key(label))
        if batch.epoch != self.current_epoch:
            if batch.epoch > self.current_epoch:
                self._epoch_buffers.setdefault(batch.epoch, []).extend(batch.labels)
                self._maybe_finish_emergency()
            return
        if self._emergency:
            # the current tree was abandoned: its serialization can no
            # longer be trusted (a resurrected serializer forwards labels
            # whose causal past died with it).  Correctness is owned by
            # the timestamp fallback and the new epoch's sink replay now,
            # so late batches from the old tree are dropped instead of
            # queued behind the transition.
            return
        self._queue.extend(batch.labels)
        self._pump_saturn()

    def on_payload(self, payload: RemotePayload) -> None:
        """An update payload delivered by the bulk-data transfer service."""
        origin = payload.label.origin_dc
        self.seen_bulk_ts[origin] = max(
            self.seen_bulk_ts.get(origin, float("-inf")), payload.label.ts)
        if self.mode == "eventual":
            self._apply_now(payload)
        elif self._in_timestamp_mode():
            heapq.heappush(self._ts_heap,
                           (payload.label.ts, payload.label.src, payload))
            self._pump_timestamp()
        else:
            self._pending_payloads[_key(payload.label)] = payload
            self._pump_saturn()

    def on_heartbeat(self, heartbeat: BulkHeartbeat) -> None:
        """A bulk-channel heartbeat advancing an origin's stability cut."""
        self.seen_bulk_ts[heartbeat.origin_dc] = max(
            self.seen_bulk_ts.get(heartbeat.origin_dc, float("-inf")),
            heartbeat.ts)
        if self._in_timestamp_mode():
            self._pump_timestamp()

    # ------------------------------------------------------------------
    # attach conditions (used by the frontend, Alg. 1)
    # ------------------------------------------------------------------

    def consumes_label_order(self, epoch: int) -> bool:
        """Will a label batch of *epoch* enter the saturn-order pipeline —
        now, or at adoption time for a buffered future epoch?

        Used by the runtime oracle (:class:`repro.analysis.runtime.HazardMonitor`)
        to scope its delivery-order/visibility-order cross-check: labels the
        proxy ignores (abandoned-tree remnants while in the timestamp
        fallback, anything in eventual mode) impose no ordering obligation —
        their updates become visible through the timestamp total order,
        which the causal-order check validates directly.
        """
        if self.mode == "eventual":
            return False
        if epoch > self.current_epoch:
            return True
        return epoch == self.current_epoch and not self._in_timestamp_mode()

    def migration_processed(self, label: Label) -> bool:
        if _key(label) in self._migrations_done:
            return True
        # fallback: timestamp stability also proves the causal past is in
        if self._in_timestamp_mode():
            return self._ts_watermark >= label.ts
        return False

    def update_stable(self, label: Label) -> bool:
        """Every remote datacenter has applied something >= label.ts."""
        if self._in_timestamp_mode():
            return self._ts_watermark >= label.ts
        for dc in self.dc.replication.datacenters:
            if dc == self.dc.dc_name:
                continue
            if self.applied_ts.get(dc, float("-inf")) < label.ts:
                return False
        return True

    def wait_for(self, predicate: Callable[[], bool],
                 callback: Callable[[], None]) -> None:
        """Run *callback* once *predicate* holds (checked on state changes)."""
        if predicate():
            callback()
        else:
            self._waiters.append((predicate, callback))

    def _check_waiters(self) -> None:
        if not self._waiters:
            return
        still_waiting = []
        for predicate, callback in self._waiters:
            if predicate():
                callback()
            else:
                still_waiting.append((predicate, callback))
        self._waiters = still_waiting

    # ------------------------------------------------------------------
    # Saturn-order application
    # ------------------------------------------------------------------

    def _in_timestamp_mode(self) -> bool:
        return self.mode == "timestamp" or self._emergency

    def _pump_saturn(self) -> None:
        """Dispatch ready labels into the pipeline, then drain it."""
        if self._in_timestamp_mode():
            return
        while self._queue and len(self._dispatch) < self.window:
            label = self._queue[0]
            key = _key(label)
            if label.type is LabelType.UPDATE and key not in self._applied:
                payload = self._pending_payloads.get(key)
                if payload is None:
                    # a *replayed* UPDATE below the origin's applied
                    # watermark was already applied (per-origin streams
                    # are FIFO and ts-ordered), but its dedup entry may
                    # have been pruned: without this check the replay
                    # would head-of-line block forever waiting for a
                    # payload that was consumed long ago
                    if (key in self._replayed_keys
                            and label.ts <= self.applied_ts.get(
                                label.origin_dc, float("-inf"))):
                        self._queue.popleft()
                        self._replayed_keys.discard(key)
                        self._dispatch.append(_Slot(label, None, done=True))
                        continue
                    break  # data readiness: wait for the bulk transfer
                self._queue.popleft()
                del self._pending_payloads[key]
                self._replayed_keys.discard(key)
                slot = _Slot(label, payload, done=False)
                self._dispatch.append(slot)
                self._start_apply(slot)
            else:
                # heartbeat / migration / epoch-change / duplicate update:
                # no storage work, completes as soon as its turn comes
                self._queue.popleft()
                self._pending_payloads.pop(key, None)
                self._replayed_keys.discard(key)
                self._dispatch.append(_Slot(label, None, done=True))
        self._drain_saturn()

    def _start_apply(self, slot: _Slot) -> None:
        payload = slot.payload
        cost = self.dc.remote_apply_cost(payload.value_size)
        partition = self.dc.store.partition_for(payload.key)

        def _done() -> None:
            slot.done = True
            self._pump_saturn()

        partition.cpu.submit(cost, _done)

    def _drain_saturn(self) -> None:
        """Finalize (make visible) the completed prefix of the pipeline."""
        progressed = False
        while self._dispatch and self._dispatch[0].done:
            slot = self._dispatch.popleft()
            self._finalize(slot)
            progressed = True
        if progressed:
            self._check_waiters()
            self._maybe_finish_transition()

    def _finalize(self, slot: _Slot) -> None:
        label = slot.label
        key = _key(label)
        self.labels_processed += 1
        obs = self.obs
        applied_update = False
        if label.type is LabelType.UPDATE:
            if slot.payload is not None:
                self._applied.add(key)
                self.dc.store.put(slot.payload.key,
                                  StoredValue(label=label,
                                              value_size=slot.payload.value_size))
                self.updates_applied += 1
                self.dc.on_remote_visible(slot.payload)
                applied_update = True
                if obs is not None:
                    obs.on_visible(label, self.dc.sim.now, self.dc.dc_name,
                                   "saturn")
        elif label.type is LabelType.MIGRATION:
            self._migrations_done.add(key)
        elif label.type is LabelType.EPOCH_CHANGE:
            self._record_epoch_mark(label)
            if obs is not None:
                obs.on_finalized(label, self.dc.sim.now, self.dc.dc_name)
            return  # epoch marks do not advance origin watermarks
        if obs is not None and not applied_update:
            obs.on_finalized(label, self.dc.sim.now, self.dc.dc_name)
        self._advance_watermark(label)

    def _advance_watermark(self, label: Label) -> None:
        origin = label.origin_dc
        if label.ts > self.applied_ts.get(origin, float("-inf")):
            self.applied_ts[origin] = label.ts
        self._prune_countdown -= 1
        if self._prune_countdown <= 0:
            self._prune_countdown = APPLIED_PRUNE_INTERVAL
            self._prune_applied()

    def _prune_applied(self) -> None:
        """Drop dedup entries below every origin's applied watermark: both
        serialization sources only revisit labels above it, so the set
        stays bounded on long runs."""
        if not self.applied_ts:
            return
        floor = min(self.applied_ts.get(dc, float("-inf"))
                    for dc in self.dc.replication.datacenters
                    if dc != self.dc.dc_name)
        if floor == float("-inf"):
            return
        self._applied = {key for key in self._applied if key[0] >= floor}
        self._migrations_done = {key for key in self._migrations_done
                                 if key[0] >= floor}

    # ------------------------------------------------------------------
    # timestamp-order application (P-configuration / fallback)
    # ------------------------------------------------------------------

    def _stability_cut(self) -> float:
        """Largest ts below which no datacenter can still send anything."""
        cut = float("inf")
        for dc in self.dc.replication.datacenters:
            if dc == self.dc.dc_name:
                continue
            cut = min(cut, self.seen_bulk_ts.get(dc, float("-inf")))
        return cut

    def _pump_timestamp(self) -> None:
        cut = self._stability_cut()
        while (self._ts_heap and self._ts_heap[0][0] <= cut
               and len(self._ts_dispatch) < self.window):
            ts, src, payload = heapq.heappop(self._ts_heap)
            if (ts, src) in self._applied:
                continue
            slot = _Slot(payload.label, payload, done=False)
            self._ts_dispatch.append(slot)
            self._start_ts_apply(slot)
        self._drain_timestamp(cut)

    def _start_ts_apply(self, slot: _Slot) -> None:
        payload = slot.payload
        cost = self.dc.remote_apply_cost(payload.value_size)
        partition = self.dc.store.partition_for(payload.key)

        def _done() -> None:
            slot.done = True
            self._pump_timestamp()

        partition.cpu.submit(cost, _done)

    def _drain_timestamp(self, cut: float) -> None:
        progressed = False
        while self._ts_dispatch and self._ts_dispatch[0].done:
            slot = self._ts_dispatch.popleft()
            payload = slot.payload
            self._applied.add(_key(slot.label))
            self.dc.store.put(payload.key,
                              StoredValue(label=slot.label,
                                          value_size=payload.value_size))
            self._advance_watermark(slot.label)
            self.updates_applied += 1
            self.dc.on_remote_visible(payload)
            if self.obs is not None:
                self.obs.on_visible(slot.label, self.dc.sim.now,
                                    self.dc.dc_name, "ts-drain")
            progressed = True
        # the stability watermark advances once everything below the cut
        # has been applied
        if (not self._ts_dispatch
                and (not self._ts_heap or self._ts_heap[0][0] > cut)):
            self._advance_ts_watermark(cut)
        if progressed:
            self._check_waiters()
            self._maybe_finish_emergency()

    def _advance_ts_watermark(self, cut: float) -> None:
        if cut == float("inf") or cut <= self._ts_watermark:
            return
        self._ts_watermark = cut
        for dc in self.dc.replication.datacenters:
            if dc != self.dc.dc_name:
                if cut > self.applied_ts.get(dc, float("-inf")):
                    self.applied_ts[dc] = cut
        self._check_waiters()
        self._maybe_finish_emergency()

    # ------------------------------------------------------------------
    # fault handling: Saturn outage -> timestamp fallback
    # ------------------------------------------------------------------

    def enter_fallback(self) -> None:
        """Saturn outage detected: apply by timestamp order from now on."""
        if self._in_timestamp_mode():
            return
        self._emergency = True
        if self.obs is not None:
            self.obs.annotate(self.dc.sim.now, "enter-fallback",
                              self.dc.dc_name)
        self._queue.clear()
        # operations already dispatched will complete; their slots are
        # drained here so nothing is lost
        for slot in self._dispatch:
            if slot.payload is not None and not slot.done:
                # let the in-flight apply finish through the ts path
                heapq.heappush(self._ts_heap, (slot.label.ts, slot.label.src,
                                               slot.payload))
        self._dispatch.clear()
        for key, payload in sorted(self._pending_payloads.items()):
            heapq.heappush(self._ts_heap, (key[0], key[1], payload))
        self._pending_payloads.clear()
        self._pump_timestamp()

    # ------------------------------------------------------------------
    # epoch-change reconfiguration (§6.2)
    # ------------------------------------------------------------------

    def begin_transition(self, new_epoch: int, emergency: bool = False) -> None:
        """The local datacenter switched its sink to the C2 tree."""
        self._transition_target = new_epoch
        self._transition_started_at = self.dc.sim.now
        if self.obs is not None:
            self.obs.annotate(self.dc.sim.now, "begin-transition",
                              self.dc.dc_name, epoch=new_epoch,
                              emergency=emergency)
        if emergency:
            self.enter_fallback()
        elif self.transition_timeout > 0:
            self.dc.set_timer(self.transition_timeout,
                              lambda: self._escalate_transition(new_epoch))
        self._maybe_finish_transition()
        self._maybe_finish_emergency()

    def _escalate_transition(self, epoch: int) -> None:
        """Fast path timed out (a peer's epoch-change label is missing —
        C1 broke mid-switch): finish through the failure path instead."""
        if (self._transition_target != epoch or self._emergency
                or self.current_epoch == epoch):
            return
        self.transitions_escalated += 1
        self.enter_fallback()
        self._maybe_finish_emergency()

    def _record_epoch_mark(self, label: Label) -> None:
        epoch = int(label.target or 0)
        self._epoch_marks.setdefault(epoch, set()).add(label.origin_dc)
        self._maybe_finish_transition()

    def _maybe_finish_transition(self) -> None:
        """Fast-path switch: every datacenter's epoch-change label was
        processed through C1 and all C1 labels have been applied."""
        if self._transition_target is None or self._emergency:
            return
        target = self._transition_target
        marks = self._epoch_marks.get(target, set())
        others = set(self.dc.replication.datacenters) - {self.dc.dc_name}
        if not others <= marks:
            return
        if self._dispatch or self._queue:
            return
        self._adopt_epoch(target)

    def _maybe_finish_emergency(self) -> None:
        """Failure-path switch: start applying C2 labels once the update of
        the first C2 label is stable in timestamp order."""
        if self._transition_target is None or not self._emergency:
            return
        buffered = self._epoch_buffers.get(self._transition_target)
        if not buffered:
            return
        first = buffered[0]
        if self._ts_watermark < first.ts:
            return
        if self._ts_dispatch:
            return
        # unapplied buffered payloads move back to the Saturn path on
        # adoption, so each needs its label to eventually arrive through
        # C2: hold the switch while any of them predates everything C2
        # has delivered from its origin (it would be stranded forever;
        # staying in ts mode applies it once it stabilizes instead)
        if self._ts_heap:
            first_by_origin: Dict[str, float] = {}
            for label in buffered:
                origin = label.origin_dc
                known = first_by_origin.get(origin)
                if known is None or label.ts < known:
                    first_by_origin[origin] = label.ts
            for ts, src, payload in self._ts_heap:
                if (ts, src) in self._applied:
                    continue
                floor = first_by_origin.get(payload.label.origin_dc)
                if floor is None or ts < floor:
                    return
        self._emergency = False
        self._adopt_epoch(self._transition_target)

    def _adopt_epoch(self, epoch: int) -> None:
        self.current_epoch = epoch
        self._transition_target = None
        if self.obs is not None:
            self.obs.annotate(self.dc.sim.now, "epoch-adopt",
                              self.dc.dc_name, epoch=epoch)
        buffered = self._epoch_buffers.pop(epoch, [])
        self._queue.extend(buffered)
        # payloads that were parked for timestamp-order application but
        # never became stable move back to the Saturn path, otherwise the
        # new tree's labels would head-of-line block on them forever
        while self._ts_heap:
            ts, src, payload = heapq.heappop(self._ts_heap)
            if (ts, src) not in self._applied:
                self._pending_payloads[(ts, src)] = payload
        if self._transition_started_at is not None:
            self.reconfiguration_times.append(
                self.dc.sim.now - self._transition_started_at)
            self._transition_started_at = None
        self._pump_saturn()

    # ------------------------------------------------------------------
    # eventual mode
    # ------------------------------------------------------------------

    def _apply_now(self, payload: RemotePayload) -> None:
        cost = self.dc.remote_apply_cost(payload.value_size)
        partition = self.dc.store.partition_for(payload.key)

        def _done() -> None:
            self.dc.store.put(
                payload.key,
                StoredValue(label=payload.label, value_size=payload.value_size))
            self._advance_watermark(payload.label)
            self.updates_applied += 1
            self.dc.on_remote_visible(payload)
            if self.obs is not None:
                self.obs.on_visible(payload.label, self.dc.sim.now,
                                    self.dc.dc_name, "eventual")
            self._check_waiters()

        partition.cpu.submit(cost, _done)
