"""Partitioned, linearizable per-datacenter key-value store.

The paper assumes each datacenter is linearizable (§2); inside our simulator
a datacenter is a single process, so its store is trivially linearizable.
The store is partitioned across storage servers (``RESPONSIBLE(key)`` in
Alg. 1 is a stable hash), and each partition owns a
:class:`~repro.sim.cpu.ServerCPU` so that operations on different partitions
proceed in parallel while operations on one partition serialize.

Values are represented by their size plus the label (= version id) of the
writing update; actual bytes are never materialized.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.label import Label
from repro.sim.cpu import ServerCPU
from repro.sim.engine import Simulator

__all__ = ["StoredValue", "Partition", "PartitionedStore", "responsible_partition"]


def responsible_partition(key: str, num_partitions: int) -> int:
    """Stable key -> partition mapping (same on every datacenter)."""
    return zlib.crc32(key.encode()) % num_partitions


@dataclass
class StoredValue:
    """Most recent version of a key at this datacenter."""

    label: Label
    value_size: int


class Partition:
    """One storage server's shard: a versioned map plus its CPU queue."""

    def __init__(self, sim: Simulator, index: int) -> None:
        self.index = index
        self.cpu = ServerCPU(sim)
        self._data: Dict[str, StoredValue] = {}
        self.writes_applied = 0

    def get(self, key: str) -> Optional[StoredValue]:
        return self._data.get(key)

    def put(self, key: str, value: StoredValue) -> bool:
        """Install *value* unless a newer version is already present.

        Last-writer-wins by label order (labels are totally ordered and the
        order respects causality), so concurrent replication streams
        converge.  Returns True if the store changed.
        """
        current = self._data.get(key)
        if current is not None and current.label >= value.label:
            return False
        self._data[key] = value
        self.writes_applied += 1
        return True

    def __len__(self) -> int:
        return len(self._data)


class PartitionedStore:
    """All partitions of one datacenter."""

    def __init__(self, sim: Simulator, num_partitions: int) -> None:
        if num_partitions <= 0:
            raise ValueError("need at least one partition")
        self.partitions: List[Partition] = [
            Partition(sim, i) for i in range(num_partitions)
        ]

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def partition_for(self, key: str) -> Partition:
        return self.partitions[responsible_partition(key, len(self.partitions))]

    def get(self, key: str) -> Optional[StoredValue]:
        return self.partition_for(key).get(key)

    def put(self, key: str, value: StoredValue) -> bool:
        return self.partition_for(key).put(key, value)

    def total_keys(self) -> int:
        return sum(len(p) for p in self.partitions)
