"""Deterministic fault injection for the simulated Saturn deployment.

``repro.faults`` turns failures into data: a :class:`~repro.faults.plan.FaultPlan`
is a JSON-serializable script of crash / restart / partition / delay /
reconfigure actions at simulated times, and a
:class:`~repro.faults.injector.FaultInjector` schedules it onto a running
scenario.  Because the simulator is deterministic and the plan is explicit,
any faulty execution replays bit-identically — the property the chaos suite
(``tests/chaos``) asserts with double-run digests.

Fault *timing* can also be left open (``at_choices``) and resolved by the
model checker's schedule controller, which makes crash instants part of the
explored schedule space (see :mod:`repro.analysis.mc`).

Run scripted scenarios from the CLI::

    python -m repro.faults --list
    python -m repro.faults --scenario serializer-crash --check-determinism
    saturn-repro faults --scenario root-partition --json out.json
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultAction, FaultPlan

__all__ = ["FaultAction", "FaultPlan", "FaultInjector"]
