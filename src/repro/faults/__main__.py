"""CLI for the chaos suite: run scripted fault scenarios and check them.

Usage (also reachable as ``saturn-repro faults ...``)::

    python -m repro.faults --list
    python -m repro.faults --scenario serializer-crash --check-determinism
    python -m repro.faults --scenario root-partition --json out.json
    python -m repro.faults --plan my-plan.json --plan-out resolved.json

``--scenario`` runs one of the built-in chaos scenarios
(:data:`repro.faults.scenarios.CHAOS_SCENARIOS`); ``--plan`` runs an
external :class:`~repro.faults.plan.FaultPlan` JSON file against the same
hardened chain3 deployment the built-ins use.  Every run is evaluated by
the model checker's oracles (FIFO discipline, causal visibility, partial
replication, completeness, liveness); ``--check-determinism`` executes
the scenario twice from scratch and compares the SHA-256 delivery-trace
digests.  Exit status: 0 clean, 2 on violations or a digest mismatch.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, List, Optional

from repro.analysis.mc.oracles import evaluate_oracles
from repro.analysis.mc.scenario import Scenario, build_chain3
from repro.faults.plan import FaultPlan
from repro.faults.scenarios import (CHAOS_SCENARIOS, _BEACON_PERIOD,
                                    _DETECTOR, _chaos_specs,
                                    build_chaos_scenario)

__all__ = ["main"]


def _external_plan_builder(plan: FaultPlan) -> Callable[[], Scenario]:
    """Run an external plan on the hardened chain3 deployment."""
    def build() -> Scenario:
        return build_chain3(
            plan.name, horizon=260.0, specs=_chaos_specs(),
            beacon_period=_BEACON_PERIOD, dc_extra=dict(_DETECTOR),
            auto_failover=True, fault_plan=plan, min_expected_updates=5)
    return build


def _summarize(scenario: Scenario, violations: List[str]) -> dict:
    # baseline scenarios run StabilizedDatacenter subclasses, which have
    # no failover detector, remote proxy, or label sink — guard every
    # Saturn-specific field so one summary shape serves both
    detectors = {}
    for name, dc in sorted(scenario.datacenters.items()):
        failover = getattr(dc, "failover", None)
        if failover is not None:
            detectors[name] = {
                "state": failover.state,
                "transitions": [[t, s] for t, s in failover.transitions],
                "degraded_spans": [[a, b]
                                   for a, b in failover.degraded_spans],
            }
    return {
        "scenario": scenario.name,
        "violations": violations,
        "digest": scenario.digest(),
        "faults_fired": ([[t, kind, at]
                          for t, kind, at in scenario.injector.fired]
                         if scenario.injector is not None else []),
        "detectors": detectors,
        "recoveries": ([[t, e] for t, e in scenario.failover.recoveries]
                       if scenario.failover is not None else []),
        "transitions_escalated": {
            name: dc.proxy.transitions_escalated
            for name, dc in sorted(scenario.datacenters.items())
            if hasattr(dc, "proxy")},
        "sink_replays": {name: dc.sink.replays
                         for name, dc in sorted(scenario.datacenters.items())
                         if hasattr(dc, "sink")},
        "updates_recorded": len(scenario.log.updates),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Run scripted fault-injection scenarios and check the "
                    "causal-consistency oracles over the whole "
                    "degrade/recover arc.")
    parser.add_argument("--list", action="store_true",
                        help="list the built-in chaos scenarios and exit")
    parser.add_argument("--scenario", choices=sorted(CHAOS_SCENARIOS),
                        help="built-in chaos scenario to run")
    parser.add_argument("--plan", metavar="FILE",
                        help="run an external FaultPlan JSON file instead")
    parser.add_argument("--check-determinism", action="store_true",
                        help="run twice and require identical trace digests")
    parser.add_argument("--json", metavar="FILE", dest="json_out",
                        help="write the run summary as JSON")
    parser.add_argument("--plan-out", metavar="FILE",
                        help="write the scenario's fault plan as JSON")
    parser.add_argument("--trace-out", metavar="FILE",
                        help="trace the run with repro.obs and write the "
                             "JSONL label-lifecycle export")
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(CHAOS_SCENARIOS):
            print(name)
        return 0
    if bool(args.scenario) == bool(args.plan):
        parser.error("exactly one of --scenario/--plan is required")

    if args.plan:
        plan = FaultPlan.from_json(Path(args.plan).read_text())
        build = _external_plan_builder(plan)
    else:
        build = lambda: build_chaos_scenario(args.scenario)  # noqa: E731

    scenario = build()
    hub = None
    if args.trace_out:
        from repro.obs import attach_tracer
        hub = attach_tracer(scenario)
    if args.plan_out and scenario.fault_plan is not None:
        Path(args.plan_out).write_text(scenario.fault_plan.to_json() + "\n")
    scenario.run()
    violations = evaluate_oracles(scenario)
    summary = _summarize(scenario, violations)
    if hub is not None:
        meta = {"scenario": summary["scenario"]}
        Path(args.trace_out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.trace_out).write_text(hub.export_jsonl(meta=meta))
        summary["obs_digest"] = hub.digest(meta=meta)

    if args.check_determinism:
        second = build()
        hub2 = None
        if hub is not None:
            from repro.obs import attach_tracer
            hub2 = attach_tracer(second)
        second.run()
        evaluate_oracles(second)
        summary["deterministic"] = second.digest() == summary["digest"]
        if not summary["deterministic"]:
            violations.append(
                f"nondeterministic execution: digests differ "
                f"({summary['digest']} vs {second.digest()})")
            summary["violations"] = violations
        if hub2 is not None:
            obs_ok = (hub2.digest(meta={"scenario": summary["scenario"]})
                      == summary["obs_digest"])
            summary["obs_deterministic"] = obs_ok
            if not obs_ok:
                violations.append(
                    "nondeterministic trace export: obs digests differ")
                summary["deterministic"] = False
                summary["violations"] = violations

    if args.json_out:
        Path(args.json_out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.json_out).write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n")

    print(f"scenario   : {summary['scenario']}")
    print(f"digest     : {summary['digest']}")
    if args.check_determinism:
        print(f"determinism: "
              f"{'OK' if summary['deterministic'] else 'MISMATCH'}")
    for name, info in summary["detectors"].items():
        arcs = " -> ".join(s for _, s in info["transitions"]) or "attached"
        print(f"detector {name} : {arcs}")
    if summary["recoveries"]:
        spans = ", ".join(f"epoch {e} at t={t:.2f}"
                          for t, e in summary["recoveries"])
        print(f"recoveries : {spans}")
    print(f"violations : {len(violations)}")
    for violation in violations[:10]:
        print(f"  - {violation}")
    return 2 if violations else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
