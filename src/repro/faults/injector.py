"""Schedules a :class:`~repro.faults.plan.FaultPlan` onto a deployment.

The injector owns the mapping from declarative fault actions to the
simulator's fault hooks: :meth:`Process.crash`/:meth:`Process.restart`
through :class:`~repro.core.service.SaturnService`, link faults through
:class:`~repro.sim.network.Network`, and epoch changes through
:class:`~repro.core.reconfig.ReconfigurationManager`.

Determinism: ``apply`` schedules every action up front at plan-resolution
time, so the fault events participate in the kernel's (time, seq) order
exactly like protocol events — the same plan on the same scenario yields a
bit-identical execution.  Actions with ``at_choices`` ask the installed
``chooser`` (the model checker's schedule controller) to pick the instant;
with no chooser the first candidate is used, so a plan with open timing
still runs standalone.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional, Tuple

from repro.faults.plan import FaultAction, FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.reconfig import ReconfigurationManager
    from repro.core.service import SaturnService
    from repro.core.tree import TreeTopology
    from repro.sim.engine import Simulator
    from repro.sim.network import Network

__all__ = ["FaultInjector"]


class FaultInjector:
    """Applies fault plans to a built scenario."""

    def __init__(self, sim: "Simulator", network: "Network",
                 service: Optional["SaturnService"] = None,
                 manager: Optional["ReconfigurationManager"] = None,
                 repair_topology: Optional[Callable[[], "TreeTopology"]] = None,
                 clocks: Optional[dict] = None) -> None:
        self.sim = sim
        self.network = network
        self.service = service
        self.manager = manager
        self.repair_topology = repair_topology
        #: datacenter name -> PhysicalClock, for clock-skew actions
        self.clocks = clocks or {}
        #: optional fault-timing chooser: ``choose_fault(name, k) -> int``
        #: (the model checker's schedule controller); None means default
        self.chooser: Optional[Any] = None
        #: (fired-at, kind, resolved-at) audit trail, in firing order
        self.fired: List[Tuple[float, str, float]] = []
        self.applied = False

    def apply(self, plan: FaultPlan) -> None:
        """Resolve timing and schedule every action of *plan*."""
        if self.applied:
            raise RuntimeError("injector already applied a plan")
        self.applied = True
        for index, action in enumerate(plan.actions):
            at = self._resolve_time(plan.name, index, action)
            self.sim.schedule_at(
                at, lambda a=action, t=at: self._fire(a, t))

    def _resolve_time(self, plan_name: str, index: int,
                      action: FaultAction) -> float:
        if action.at is not None:
            return action.at
        choices = action.at_choices or ()
        if self.chooser is None:
            return choices[0]
        pick = self.chooser.choose_fault(
            f"{plan_name}[{index}]:{action.kind}", len(choices))
        return choices[pick]

    def _fire(self, action: FaultAction, at: float) -> None:
        handler = getattr(self, "_do_" + action.kind.replace("-", "_"))
        handler(action.args)
        self.fired.append((self.sim.now, action.kind, at))

    # -- handlers ----------------------------------------------------------

    def _need_service(self) -> "SaturnService":
        if self.service is None:
            raise RuntimeError("fault plan targets serializers but the "
                               "injector has no SaturnService")
        return self.service

    def _do_crash_serializer(self, args: dict) -> None:
        self._need_service().fail_serializer(args["tree"], args.get("epoch"))

    def _do_restart_serializer(self, args: dict) -> None:
        self._need_service().restart_serializer(args["tree"],
                                                args.get("epoch"))

    def _do_crash_replica(self, args: dict) -> None:
        self._need_service().crash_replica(args["tree"], args.get("epoch"))

    def _do_crash_tree(self, args: dict) -> None:
        self._need_service().fail_tree(args.get("epoch"))

    def _do_restart_tree(self, args: dict) -> None:
        self._need_service().restart_tree(args.get("epoch"))

    def _do_isolate(self, args: dict) -> None:
        self.network.isolate(args["process"])

    def _do_rejoin(self, args: dict) -> None:
        self.network.rejoin(args["process"])

    def _do_partition_link(self, args: dict) -> None:
        self.network.partition(args["src"], args["dst"],
                               symmetric=bool(args.get("symmetric", True)))

    def _do_heal_link(self, args: dict) -> None:
        self.network.heal(args["src"], args["dst"],
                          symmetric=bool(args.get("symmetric", True)))

    def _do_delay_spike(self, args: dict) -> None:
        self.network.inject_extra_delay(
            args["src"], args["dst"], float(args["extra"]),
            symmetric=bool(args.get("symmetric", True)))

    def _do_clear_delay(self, args: dict) -> None:
        self.network.inject_extra_delay(
            args["src"], args["dst"], 0.0,
            symmetric=bool(args.get("symmetric", True)))

    def _do_clock_skew(self, args: dict) -> None:
        try:
            clock = self.clocks[args["dc"]]
        except KeyError:
            raise RuntimeError(
                f"fault plan skews the clock of {args['dc']!r} but the "
                f"injector only knows {sorted(self.clocks)}") from None
        clock.skew = float(args["skew"])

    def _do_reconfigure(self, args: dict) -> None:
        if self.manager is None:
            raise RuntimeError("fault plan asks for a reconfiguration but "
                               "the injector has no ReconfigurationManager")
        if self.repair_topology is not None:
            topology = self.repair_topology()
        else:
            topology = self.manager.service.topology()
        self.manager.reconfigure(topology,
                                 emergency=bool(args.get("emergency", False)))
