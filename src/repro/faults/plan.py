"""Fault plans: JSON-replayable scripts of scheduled fault actions.

A :class:`FaultPlan` is an ordered list of :class:`FaultAction` entries.
Each action fires at a fixed simulated time (``at``) or at one of several
candidate times (``at_choices``) left open for the model checker, which
resolves the choice through the schedule controller — fault timing then
becomes part of the recorded, shrinkable decision list.

The JSON form is the interchange format between the chaos test suite, the
``python -m repro.faults`` CLI, and CI artifacts; it is versioned the same
way as the model checker's counterexample files.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["FaultAction", "FaultPlan", "KINDS"]

#: bump when the JSON layout changes incompatibly
FORMAT_VERSION = 1

#: action kind -> required argument names
KINDS: Dict[str, Tuple[str, ...]] = {
    "crash-serializer": ("tree",),
    "restart-serializer": ("tree",),
    "crash-replica": ("tree",),
    "crash-tree": (),
    "restart-tree": (),
    "isolate": ("process",),
    "rejoin": ("process",),
    "partition-link": ("src", "dst"),
    "heal-link": ("src", "dst"),
    "delay-spike": ("src", "dst", "extra"),
    "clear-delay": ("src", "dst"),
    "clock-skew": ("dc", "skew"),
    "reconfigure": (),
}


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault.

    Exactly one of ``at`` (fixed simulated time, ms) and ``at_choices``
    (candidate times for the model checker; strictly ascending, the first
    is the default) must be given.  ``args`` are kind-specific:

    ==================  =====================================================
    kind                args
    ==================  =====================================================
    crash-serializer    tree, [epoch]          fail-stop one serializer group
    restart-serializer  tree, [epoch]          fail-recover it
    crash-replica       tree, [epoch]          shorten its replica chain
    crash-tree          [epoch]                fail every serializer
    restart-tree        [epoch]                restart every serializer
    isolate             process                cut a process off entirely
    rejoin              process                undo isolate (held traffic
                                               is then released in order)
    partition-link      src, dst, [symmetric]  sever one link (reliable
                                               channel: traffic is held)
    heal-link           src, dst, [symmetric]  undo partition-link
    delay-spike         src, dst, extra,       add extra ms to one link
                        [symmetric]
    clear-delay         src, dst, [symmetric]  remove the extra delay
    clock-skew          dc, skew               set one datacenter's
                                               physical-clock skew (ms;
                                               0.0 models an NTP resync)
    reconfigure         [emergency]            trigger an epoch change
    ==================  =====================================================
    """

    kind: str
    at: Optional[float] = None
    at_choices: Optional[Tuple[float, ...]] = None
    args: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {sorted(KINDS)}")
        if (self.at is None) == (self.at_choices is None):
            raise ValueError(
                f"{self.kind}: exactly one of at/at_choices must be set")
        if self.at is not None and self.at < 0:
            raise ValueError(f"{self.kind}: at must be non-negative")
        if self.at_choices is not None:
            object.__setattr__(self, "at_choices", tuple(self.at_choices))
            choices = self.at_choices
            if not choices:
                raise ValueError(f"{self.kind}: at_choices must be non-empty")
            if any(b <= a for a, b in zip(choices, choices[1:])):
                raise ValueError(
                    f"{self.kind}: at_choices must be strictly ascending")
            if choices[0] < 0:
                raise ValueError(f"{self.kind}: times must be non-negative")
        missing = [name for name in KINDS[self.kind] if name not in self.args]
        if missing:
            raise ValueError(f"{self.kind}: missing args {missing}")

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind}
        if self.at is not None:
            out["at"] = self.at
        else:
            out["at_choices"] = list(self.at_choices or ())
        if self.args:
            out["args"] = dict(self.args)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultAction":
        choices = data.get("at_choices")
        return cls(kind=data["kind"], at=data.get("at"),
                   at_choices=tuple(choices) if choices is not None else None,
                   args=dict(data.get("args", {})))


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, replayable fault script."""

    actions: Tuple[FaultAction, ...]
    name: str = "fault-plan"

    def __post_init__(self) -> None:
        object.__setattr__(self, "actions", tuple(self.actions))

    @property
    def is_open(self) -> bool:
        """True if any action's timing is left to the model checker."""
        return any(action.at_choices is not None for action in self.actions)

    # -- serialization -----------------------------------------------------

    def to_json(self) -> str:
        return json.dumps({
            "format_version": FORMAT_VERSION,
            "name": self.name,
            "actions": [action.to_dict() for action in self.actions],
        }, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        version = data.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError(f"fault plan format version {version!r} not "
                             f"supported (expected {FORMAT_VERSION})")
        return cls(
            actions=tuple(FaultAction.from_dict(entry)
                          for entry in data.get("actions", ())),
            name=data.get("name", "fault-plan"))


def sequential(name: str, actions: Sequence[FaultAction]) -> FaultPlan:
    """Convenience constructor used by the scenario catalog."""
    return FaultPlan(actions=tuple(actions), name=name)
