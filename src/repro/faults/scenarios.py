"""Scripted chaos scenarios: fault plans on the chain3 deployment.

Each scenario pairs the model checker's deterministic 3-datacenter
deployment (:func:`repro.analysis.mc.scenario.build_chain3`) with a
:class:`~repro.faults.plan.FaultPlan` and the robustness machinery turned
on — serializer beacons, the per-sink failure detector, and the
:class:`~repro.core.failover.AutoFailover` recovery coordinator.  All
fault times are fixed (``at=...``), so a scenario runs bit-identically
without a schedule controller; the *model-checked* variant with open
fault timing lives in the mc catalog as ``crash-chain3``.

* ``serializer-crash`` — datacenter I's attachment serializer dies
  mid-stream and restarts later.  I degrades to the timestamp total
  order (parking its outgoing labels), keeps writing while degraded, and
  the restarted serializer's first beacon triggers the emergency epoch
  change that replays the backlog.
* ``root-partition`` — the root serializer sF is isolated from the
  network before the first label batch crosses it, so the batch reaches
  neither F nor T by tree.  F degrades and recovers; T (whose own
  attachment stayed healthy) only sees the updates once the emergency
  transition's timestamp fallback drains its buffered payloads.
* ``crash-during-epoch-change`` — sI crashes just before a *planned*
  reconfiguration, swallowing epoch-change marks so the fast path can
  never complete.  The proxies' transition timeout escalates the stuck
  switch onto the failure path (§6.2) and the run converges anyway.

Two scenarios target the stabilization baselines instead of Saturn
(:func:`repro.analysis.mc.scenario.build_baseline_chain3`):

* ``eunomia-seq-crash`` — datacenter I's site sequencer is isolated and
  later rejoins: local writes stay unobtrusive, remote visibility of
  I's updates stalls until the held FIFO stream replays.
* ``okapi-clock-skew`` — an 8 ms clock-skew spike (and the resync that
  removes it) must be absorbed by the hybrid logical/physical clock
  without a single causal violation.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.analysis.mc.scenario import (KEY_A, KEY_B, KEY_C, KEY_P, KEY_Y,
                                        Scenario, _baseline_specs, _poll_then,
                                        _then_poll_then, build_baseline_chain3,
                                        build_chain3)
from repro.core.service import SaturnService
from repro.faults.plan import FaultAction, FaultPlan
from repro.workloads.ops import ReadOp, UpdateOp

__all__ = ["CHAOS_SCENARIOS", "build_chaos_scenario"]

#: detector tuning shared by every chaos scenario: beacons every 2 ms,
#: suspicion after 7 ms of silence, degradation 4 ms later, probes with
#: exponential backoff capped at 16 ms
_BEACON_PERIOD = 2.0
_DETECTOR = dict(beacon_timeout=7.0, stabilization_wait=4.0,
                 probe_period=4.0, probe_backoff=2.0, probe_period_max=16.0)


def _chaos_specs(relay_cap: int = 200, reader_cap: int = 200,
                 writer_cap: int = 300):
    """The chain3 causal workload, hardened for fault runs: generous poll
    caps (visibility can lag by a whole detection + recovery cycle) and a
    fourth update ``g0:c`` written by I only after it has seen ``g0:y`` —
    under the crash scenarios that write happens while I is degraded, so
    ``c`` exercises the park/replay path end to end."""
    return [
        ("writer-I", "I", _then_poll_then(
            [UpdateOp(KEY_A, 2), UpdateOp(KEY_B, 2), UpdateOp(KEY_P, 2)],
            KEY_Y, cap=writer_cap, then=[UpdateOp(KEY_C, 2)])),
        ("relay-F", "F", _poll_then(KEY_B, cap=relay_cap,
                                    then=[UpdateOp(KEY_Y, 2)])),
        ("reader-T", "T", _poll_then(KEY_Y, cap=reader_cap,
                                     then=[ReadOp(KEY_A)])),
    ]


def _serializer_crash() -> Scenario:
    # t=6: after the first label batch cleared sI (~t=2.5) but before the
    # y label comes back through it (~t=12) — y's branch toward I is
    # swallowed, and everything I writes afterwards parks until recovery
    plan = FaultPlan(name="serializer-crash", actions=(
        FaultAction(kind="crash-serializer", at=6.0,
                    args={"tree": "sI", "epoch": 0}),
        FaultAction(kind="restart-serializer", at=40.0,
                    args={"tree": "sI", "epoch": 0}),
    ))
    return build_chain3(
        "serializer-crash", horizon=150.0, specs=_chaos_specs(),
        beacon_period=_BEACON_PERIOD, dc_extra=dict(_DETECTOR),
        auto_failover=True, fault_plan=plan, min_expected_updates=5)


def _root_partition() -> Scenario:
    # t=3: the first batch is already in flight from sI (sent ~t=2.5, so
    # it still lands on sF), but every send to or *from* the isolated sF
    # is held by the reliable channels — F and T get payloads with no
    # labels until the outage ends and the emergency switch replays
    root = SaturnService.serializer_process_name(0, "sF")
    plan = FaultPlan(name="root-partition", actions=(
        FaultAction(kind="isolate", at=3.0, args={"process": root}),
        FaultAction(kind="rejoin", at=45.0, args={"process": root}),
    ))
    return build_chain3(
        "root-partition", horizon=200.0, specs=_chaos_specs(),
        beacon_period=_BEACON_PERIOD, dc_extra=dict(_DETECTOR),
        auto_failover=True, fault_plan=plan, min_expected_updates=5)


def _crash_during_epoch_change() -> Scenario:
    # sI dies at t=6; a *planned* reconfiguration fires at t=15.  The
    # epoch-change marks routed through the dead serializer never arrive,
    # so the fast path stalls at every proxy; the transition timeout
    # escalates the switch onto the failure path instead.  No automatic
    # recovery here — the planned switch itself replaces the dead tree.
    plan = FaultPlan(name="crash-during-epoch-change", actions=(
        FaultAction(kind="crash-serializer", at=6.0,
                    args={"tree": "sI", "epoch": 0}),
    ))
    return build_chain3(
        "crash-during-epoch-change", horizon=200.0,
        reconfigure_at=15.0, specs=_chaos_specs(),
        beacon_period=_BEACON_PERIOD,
        dc_extra=dict(_DETECTOR, transition_timeout=30.0),
        fault_plan=plan, min_expected_updates=5)


def _eunomia_seq_crash() -> Scenario:
    """Datacenter I's site sequencer is cut off mid-stream.

    t=3: the first batch tick (t=2) already shipped ``g0:a``, but ``b``
    and ``p`` are still buffered (or in flight to) the sequencer when it
    is isolated — and so are I's subsequent clock-floor ticks, so I's
    stable floor freezes everywhere.  Remote visibility of I's updates
    stalls (deferred stabilization's liveness cost) while local writes
    keep completing (the "unobtrusive" claim: the client path never
    touches the sequencer).  After the rejoin at t=40 the held FIFO
    traffic replays in order; the oracles check the whole arc — nothing
    lost, nothing misordered, every client terminates."""
    seq_i = "seq:I"
    plan = FaultPlan(name="eunomia-seq-crash", actions=(
        FaultAction(kind="isolate", at=3.0, args={"process": seq_i}),
        FaultAction(kind="rejoin", at=40.0, args={"process": seq_i}),
    ))
    return build_baseline_chain3(
        "eunomia", name="eunomia-seq-crash", horizon=300.0,
        specs=_baseline_specs(relay_cap=200, reader_cap=250, writer_cap=300),
        fault_plan=plan, min_expected_updates=5)


def _okapi_clock_skew() -> Scenario:
    """Datacenter I's physical clock jumps 8 ms ahead mid-run, then an
    NTP-style resync at t=60 yanks it back.

    The hybrid clock must absorb both edges: timestamps stay monotone
    through the backward step (logical bumps carry the HLC until
    physical time catches up), receivers merge the skewed values into
    their own clocks, and the global-cut stabilization keeps advancing
    because Okapi's GSV follows *received HLCs*, not local wall clocks.
    ``g0:c`` is written while the skew is active, so a future-stamped
    update flows through the whole pipeline."""
    plan = FaultPlan(name="okapi-clock-skew", actions=(
        FaultAction(kind="clock-skew", at=10.0,
                    args={"dc": "I", "skew": 8.0}),
        FaultAction(kind="clock-skew", at=60.0,
                    args={"dc": "I", "skew": 0.0}),
    ))
    return build_baseline_chain3(
        "okapi", name="okapi-clock-skew", horizon=300.0,
        specs=_baseline_specs(relay_cap=200, reader_cap=250, writer_cap=300),
        fault_plan=plan, min_expected_updates=5)


CHAOS_SCENARIOS: Dict[str, Callable[[], Scenario]] = {
    "serializer-crash": _serializer_crash,
    "root-partition": _root_partition,
    "crash-during-epoch-change": _crash_during_epoch_change,
    "eunomia-seq-crash": _eunomia_seq_crash,
    "okapi-clock-skew": _okapi_clock_skew,
}


def build_chaos_scenario(name: str) -> Scenario:
    """Build chaos scenario *name* (not yet run)."""
    try:
        builder = CHAOS_SCENARIOS[name]
    except KeyError:
        raise ValueError(f"unknown chaos scenario {name!r}; "
                         f"expected one of {sorted(CHAOS_SCENARIOS)}") from None
    return builder()
