"""Experiment harness: cluster runner, per-figure experiments, reports."""

from repro.harness.runner import (Cluster, ClusterConfig, MetricsHub,
                                  RunResults, SYSTEMS)

__all__ = ["Cluster", "ClusterConfig", "MetricsHub", "RunResults", "SYSTEMS"]
