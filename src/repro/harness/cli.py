"""Command-line interface: run any paper experiment from the shell.

Installed as the ``saturn-repro`` console script::

    saturn-repro list                      # available experiments/systems
    saturn-repro run fig4                  # regenerate a figure
    saturn-repro run fig5 --scale smoke --json out.json
    saturn-repro bench --system saturn     # one ad-hoc cluster run
    saturn-repro configure                 # print the M-configuration
    saturn-repro mc --scenario chain3      # schedule-space model checking
    saturn-repro faults --list             # scripted chaos scenarios
    saturn-repro obs --pair T S            # per-edge visibility breakdown
    saturn-repro arch                      # architecture audit (ARCHxxx)
    saturn-repro conc                      # concurrency audit (CONCxxx)
    saturn-repro net run --dcs 3           # real asyncio TCP cluster
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, Optional

from repro.config.latencies import EC2_REGIONS, ec2_latency
from repro.harness import experiments
from repro.harness.report import format_cdf_summary, format_table
from repro.harness.runner import SYSTEMS
from repro.metrics.stats import mean

__all__ = ["main", "build_parser", "EXPERIMENTS"]

EXPERIMENTS: Dict[str, Callable] = {
    "fig1a": experiments.fig1a,
    "fig1b": experiments.fig1b,
    "fig4": experiments.fig4,
    "fig5": experiments.fig5,
    "fig6": experiments.fig6,
    "fig7": experiments.fig7,
    "fig8": experiments.fig8,
    "five-way": experiments.five_way,
    "overload": experiments.overload,
    "reconfiguration": experiments.reconfiguration,
    "visibility-under-failure": experiments.visibility_under_failure,
    "ablation-sink-batching": experiments.ablation_sink_batching,
    "ablation-artificial-delays": experiments.ablation_artificial_delays,
    "ablation-parallel-apply": experiments.ablation_parallel_apply,
    "ablation-genuine-partial": experiments.ablation_genuine_partial,
}

_SCALES = {"smoke": experiments.SMOKE, "default": experiments.DEFAULT}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="saturn-repro",
        description="Reproduction of Saturn (EuroSys 2017): run the "
                    "paper's experiments on the simulated testbed.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and systems")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.add_argument("--scale", choices=sorted(_SCALES), default="default")
    run.add_argument("--json", metavar="PATH",
                     help="also dump the raw result dict as JSON")

    bench = sub.add_parser("bench", help="one ad-hoc cluster run")
    bench.add_argument("--system", choices=SYSTEMS, default="saturn")
    bench.add_argument("--duration", type=float, default=1000.0,
                       help="simulated milliseconds (default 1000)")
    bench.add_argument("--clients", type=int, default=8,
                       help="clients per datacenter")
    bench.add_argument("--read-ratio", type=float, default=0.9)
    bench.add_argument("--value-size", type=int, default=2)
    bench.add_argument("--correlation", default="exponential")
    bench.add_argument("--remote-reads", type=float, default=0.0)
    bench.add_argument("--seed", type=int, default=1)

    conf = sub.add_parser("configure",
                          help="run Algorithm 3 over the EC2 regions")
    conf.add_argument("--beam-width", type=int, default=8)

    mc = sub.add_parser(
        "mc", help="schedule-space model checking (repro.analysis.mc)",
        add_help=False)
    mc.add_argument("mc_args", nargs=argparse.REMAINDER,
                    help="arguments forwarded to python -m repro.analysis.mc")

    faults = sub.add_parser(
        "faults", help="scripted fault-injection scenarios (repro.faults)",
        add_help=False)
    faults.add_argument("faults_args", nargs=argparse.REMAINDER,
                        help="arguments forwarded to python -m repro.faults")

    obs = sub.add_parser(
        "obs", help="label-lifecycle tracing + per-edge visibility "
                    "breakdown (repro.obs)",
        add_help=False)
    obs.add_argument("obs_args", nargs=argparse.REMAINDER,
                     help="arguments forwarded to python -m repro.obs")

    arch = sub.add_parser(
        "arch", help="transport-readiness architecture audit "
                     "(repro.analysis.arch)",
        add_help=False)
    arch.add_argument("arch_args", nargs=argparse.REMAINDER,
                      help="arguments forwarded to "
                           "python -m repro.analysis.arch")

    conc = sub.add_parser(
        "conc", help="async-concurrency audit (repro.analysis.conc)",
        add_help=False)
    conc.add_argument("conc_args", nargs=argparse.REMAINDER,
                      help="arguments forwarded to "
                           "python -m repro.analysis.conc")

    net = sub.add_parser(
        "net", help="real asyncio TCP cluster over localhost (repro.net)",
        add_help=False)
    net.add_argument("net_args", nargs=argparse.REMAINDER,
                     help="arguments forwarded to python -m repro.net")

    return parser


def _summarize(name: str, result: Dict) -> str:
    lines = [f"== {name} =="]
    if "rows" in result:
        rows = result["rows"]
        if rows:
            headers = list(rows[0])  # dicts preserve column insertion order
            lines.append(format_table(
                headers, [[row.get(h, "") for h in headers] for row in rows]))
    if "series" in result:
        for series_name, series in result["series"].items():
            for pair in result.get("pairs", []):
                samples = series.get(pair, [])
                lines.append(format_cdf_summary(
                    f"{series_name} {pair[0]}->{pair[1]}", samples))
    for key in ("means", "max_ms", "completed", "optimal_mean_overall",
                "max_sustainable_ops_s", "p99_slo_ms", "goodput_floor"):
        if key in result:
            lines.append(f"{key}: {result[key]}")
    return "\n".join(lines)


def _jsonable(value):
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


def main(argv: Optional[list] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "mc":
        # forwarded before argparse sees it: REMAINDER cannot capture a
        # leading --flag, and the model checker owns its own --help
        from repro.analysis.mc.__main__ import main as mc_main
        return mc_main(list(argv[1:]))
    if argv and argv[0] == "faults":
        from repro.faults.__main__ import main as faults_main
        return faults_main(list(argv[1:]))
    if argv and argv[0] == "obs":
        from repro.obs.__main__ import main as obs_main
        return obs_main(list(argv[1:]))
    if argv and argv[0] == "arch":
        from repro.analysis.arch.__main__ import main as arch_main
        return arch_main(list(argv[1:]))
    if argv and argv[0] == "conc":
        from repro.analysis.conc.__main__ import main as conc_main
        return conc_main(list(argv[1:]))
    if argv and argv[0] == "net":
        from repro.net.cli import main as net_main
        return net_main(list(argv[1:]))
    args = build_parser().parse_args(argv)

    if args.command == "list":
        print("experiments:")
        for name, func in sorted(EXPERIMENTS.items()):
            doc = (func.__doc__ or "").strip().splitlines()[0]
            print(f"  {name:28s} {doc}")
        print("systems:", ", ".join(SYSTEMS))
        return 0

    if args.command == "run":
        scale = _SCALES[args.scale]
        result = EXPERIMENTS[args.experiment](scale)
        print(_summarize(args.experiment, result))
        if args.json:
            with open(args.json, "w") as handle:
                json.dump(_jsonable(result), handle, indent=2)
            print(f"raw results written to {args.json}")
        return 0

    if args.command == "bench":
        from repro.harness.runner import Cluster, ClusterConfig
        from repro.workloads.synthetic import SyntheticWorkload
        workload_kwargs = dict(read_ratio=args.read_ratio,
                               value_size=args.value_size,
                               correlation=args.correlation,
                               remote_read_fraction=args.remote_reads)
        if args.correlation == "degree":
            workload_kwargs["degree"] = 2
        workload = SyntheticWorkload(**workload_kwargs)
        config = ClusterConfig(system=args.system,
                               clients_per_dc=args.clients, seed=args.seed)
        if args.system == "saturn":
            config.saturn_topology = experiments.m_configuration()
        cluster = Cluster(config, workload)
        results = cluster.run(duration=args.duration,
                              warmup=min(200.0, args.duration / 4))
        print(f"system:           {args.system}")
        print(f"throughput:       {results.throughput:.0f} ops/s")
        print(f"ops completed:    {results.ops_completed}")
        if results.visibility.count():
            print(f"visibility mean:  {results.visibility.mean():.1f} ms")
            print(f"visibility p90:   {results.visibility.percentile(90):.1f} ms")
        return 0

    if args.command == "configure":
        from repro.config.placement import find_configuration, fuse_topology
        dc_sites = {r: r for r in EC2_REGIONS}
        solved = find_configuration(EC2_REGIONS, dc_sites, ec2_latency,
                                    beam_width=args.beam_width)
        topology = fuse_topology(solved.topology)
        print(f"score: {solved.score:.1f} weighted-ms")
        for serializer, site in sorted(topology.serializer_sites.items()):
            attached = sorted(dc for dc, s in topology.attachments.items()
                              if s == serializer)
            print(f"  {serializer} @ {site} <- {attached}")
        print(f"  edges: {topology.edges}")
        print(f"  delays: {topology.delays or '(none needed)'}")
        return 0

    return 1  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
