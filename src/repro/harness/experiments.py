"""One experiment function per table/figure of the paper's evaluation.

Every function takes a :class:`Scale` so the same experiment can run as a
quick smoke (tests), a benchmark (default), or a long high-fidelity run.
Each returns a plain dict of rows/series ready for
:mod:`repro.harness.report` formatting; benchmark files print them as the
paper's tables.

Index (see DESIGN.md §4):

* :func:`fig1a` — throughput vs data-freshness tradeoff, 3→7 datacenters
* :func:`fig1b` — staleness overhead vs replication degree 5→2
* :func:`fig4`  — S/M/P configuration visibility CDFs
* :func:`fig5`  — throughput vs value size / R:W / correlation / remote reads
* :func:`fig6`  — latency-variability injection (T1 vs T2 serializer)
* :func:`fig7`  — visibility CDFs vs the state of the art
* :func:`fig8`  — Facebook benchmark (throughput + visibility)
* :func:`reconfiguration` — §6.2 epoch-change timing (fast + failure path)
* :func:`ablation_sink_batching`, :func:`ablation_artificial_delays`,
  :func:`ablation_parallel_apply`, :func:`ablation_genuine_partial`
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.config.latencies import EC2_REGIONS, ec2_latency
from repro.config.objective import pair_weights_from_replication
from repro.config.placement import find_configuration
from repro.core.tree import TreeTopology
from repro.harness.runner import Cluster, ClusterConfig, RunResults
from repro.sim.network import LatencyModel
from repro.workloads.facebook import FacebookWorkload
from repro.workloads.synthetic import SyntheticWorkload

__all__ = [
    "Scale", "SMOKE", "DEFAULT",
    "m_configuration", "run_once",
    "fig1a", "fig1b", "fig4", "fig5", "fig6", "fig7", "fig8",
    "five_way", "five_way_smoke_summary", "FIVE_WAY_SYSTEMS",
    "overload", "overload_smoke_summary", "OVERLOAD_SYSTEMS",
    "reconfiguration", "visibility_under_failure",
    "ablation_sink_batching", "ablation_artificial_delays",
    "ablation_parallel_apply", "ablation_genuine_partial",
]


@dataclass(frozen=True)
class Scale:
    """Run sizing: simulated milliseconds and client population."""

    duration: float = 800.0
    warmup: float = 200.0
    clients_per_dc: int = 8
    facebook_clients_per_dc: int = 48
    num_partitions: int = 2
    seed: int = 1
    beam_width: int = 6


SMOKE = Scale(duration=400.0, warmup=100.0, clients_per_dc=4,
              facebook_clients_per_dc=24, beam_width=3)
DEFAULT = Scale()

_mconf_cache: Dict[Tuple, TreeTopology] = {}


def m_configuration(sites: Sequence[str] = tuple(EC2_REGIONS),
                    beam_width: int = 6,
                    weights: Optional[Dict] = None) -> TreeTopology:
    """The paper's M-configuration: Algorithm 3 over the given sites."""
    key = (tuple(sites), beam_width, None if weights is None
           else tuple(sorted(weights.items())))
    if key not in _mconf_cache:
        solved = find_configuration(list(sites), {s: s for s in sites},
                                    ec2_latency, weights=weights,
                                    beam_width=beam_width)
        _mconf_cache[key] = solved.topology
    return _mconf_cache[key]


def run_once(system: str, workload, scale: Scale,
             sites: Sequence[str] = tuple(EC2_REGIONS),
             topology: Optional[TreeTopology] = None,
             clients_per_dc: Optional[int] = None,
             before_run: Optional[Callable[[Cluster], None]] = None,
             **config_overrides) -> RunResults:
    """Build and run one cluster; the workhorse behind every experiment."""
    if system == "saturn" and topology is None:
        topology = m_configuration(sites, beam_width=scale.beam_width)
    config = ClusterConfig(
        system=system, sites=tuple(sites),
        num_partitions=scale.num_partitions,
        clients_per_dc=clients_per_dc or scale.clients_per_dc,
        seed=scale.seed, saturn_topology=topology, **config_overrides)
    cluster = Cluster(config, workload)
    if before_run is not None:
        before_run(cluster)
    return cluster.run(duration=scale.duration, warmup=scale.warmup)


def _staleness_overhead(result: RunResults, baseline: RunResults) -> float:
    """Extra mean visibility latency relative to eventual consistency, %."""
    optimal = baseline.visibility.mean()
    if optimal <= 0:
        return 0.0
    return 100.0 * (result.visibility.mean() - optimal) / optimal


def _throughput_penalty(result: RunResults, baseline: RunResults) -> float:
    if baseline.throughput <= 0:
        return 0.0
    return 100.0 * (result.throughput - baseline.throughput) / baseline.throughput


# ---------------------------------------------------------------------------
# Fig. 1 — motivation: the problems of GentleRain and Cure
# ---------------------------------------------------------------------------

def fig1a(scale: Scale = DEFAULT) -> Dict:
    """Throughput penalty and staleness overhead vs number of datacenters
    (full geo-replication), for GentleRain and Cure, vs eventual."""
    rows = []
    for n in range(3, len(EC2_REGIONS) + 1):
        sites = EC2_REGIONS[:n]
        workload = SyntheticWorkload(correlation="full")
        baseline = run_once("eventual", workload, scale, sites=sites)
        entry = {"datacenters": n}
        for system in ("gentlerain", "cure"):
            result = run_once(system, workload, scale, sites=sites)
            entry[f"{system}_throughput_penalty_pct"] = _throughput_penalty(
                result, baseline)
            entry[f"{system}_staleness_overhead_pct"] = _staleness_overhead(
                result, baseline)
        rows.append(entry)
    return {"rows": rows}


def fig1b(scale: Scale = DEFAULT) -> Dict:
    """Staleness overhead vs replication degree (5 -> 2) for GentleRain:
    partial replication does not help a single-scalar GST."""
    rows = []
    sites = list(EC2_REGIONS)
    for degree in (5, 4, 3, 2):
        workload = SyntheticWorkload(correlation="degree", degree=degree)
        baseline = run_once("eventual", workload, scale, sites=sites)
        result = run_once("gentlerain", workload, scale, sites=sites)
        rows.append({
            "replication_degree": degree,
            "gentlerain_staleness_overhead_pct": _staleness_overhead(
                result, baseline),
            "optimal_visibility_ms": baseline.visibility.mean(),
            "gentlerain_visibility_ms": result.visibility.mean(),
        })
    return {"rows": rows}


# ---------------------------------------------------------------------------
# Fig. 4 — Saturn configuration matters (S / M / P)
# ---------------------------------------------------------------------------

def fig4(scale: Scale = DEFAULT) -> Dict:
    """Visibility CDFs under the single-serializer (Ireland), the
    multi-serializer (Algorithm 3), and the peer-to-peer configuration,
    for Ireland->Frankfurt and Tokyo->Sydney (90% reads)."""
    sites = list(EC2_REGIONS)
    workload = SyntheticWorkload(correlation="exponential", read_ratio=0.9,
                                 groups_per_dc=6)
    # weights reflecting the exponential correlation, as §5.4 suggests
    probe = Cluster(ClusterConfig(system="eventual", sites=tuple(sites),
                                  clients_per_dc=1, seed=scale.seed),
                    SyntheticWorkload(correlation="exponential",
                                      groups_per_dc=6))
    weights = pair_weights_from_replication(probe.replication)
    configs = {
        "S-conf": ("saturn", TreeTopology.star("I", {s: s for s in sites})),
        "M-conf": ("saturn", m_configuration(sites, scale.beam_width, weights)),
        "P-conf": ("saturn-ts", None),
    }
    pairs = [("I", "F"), ("T", "S")]
    baseline = run_once("eventual", workload, scale, sites=sites)
    out = {"pairs": pairs, "series": {}, "baseline": {
        pair: baseline.visibility.samples(*pair) for pair in pairs}}
    for name, (system, topology) in configs.items():
        result = run_once(system, workload, scale, sites=sites,
                          topology=topology)
        out["series"][name] = {
            pair: result.visibility.samples(*pair) for pair in pairs}
        out["series"][name]["mean_overall"] = result.visibility.mean()
    out["optimal_mean_overall"] = baseline.visibility.mean()
    return out


# ---------------------------------------------------------------------------
# Fig. 5 — throughput vs workload parameters
# ---------------------------------------------------------------------------

FIG5_SYSTEMS = ("eventual", "saturn", "gentlerain", "cure")


def fig5(scale: Scale = DEFAULT,
         panels: Sequence[str] = ("a", "b", "c", "d")) -> Dict:
    """The dynamic-workload throughput experiments (defaults: 2 B values,
    9:1 reads, exponential correlation, 0% remote reads)."""
    sweeps = {
        "a": ("value_size", [8, 32, 128, 512, 2048]),
        "b": ("read_ratio", [0.50, 0.75, 0.90, 0.99]),
        "c": ("correlation", ["exponential", "proportional", "uniform",
                              "full"]),
        "d": ("remote_read_fraction", [0.0, 0.05, 0.10, 0.20, 0.40]),
    }
    rows = []
    for panel in panels:
        parameter, values = sweeps[panel]
        for value in values:
            workload_kwargs = {parameter: value}
            # remote reads block clients on WAN round trips; to keep the
            # cluster CPU-saturated (the paper deploys "as many clients as
            # necessary"), the client pool grows with the remote fraction
            clients = scale.clients_per_dc
            if parameter == "remote_read_fraction" and value > 0:
                clients = scale.clients_per_dc * (2 + int(40 * value))
            for system in FIG5_SYSTEMS:
                workload = SyntheticWorkload(**workload_kwargs)
                result = run_once(system, workload, scale,
                                  clients_per_dc=clients)
                rows.append({"panel": panel, "parameter": parameter,
                             "value": value, "system": system,
                             "throughput": result.throughput})
    return {"rows": rows}


# ---------------------------------------------------------------------------
# Fig. 6 — impact of latency variability
# ---------------------------------------------------------------------------

def fig6(scale: Scale = DEFAULT,
         injected: Sequence[float] = (0, 25, 50, 75, 100, 125)) -> Dict:
    """Three datacenters (NC, O, I); extra latency injected on the NC-O
    link; single-serializer configurations T1 (Oregon) vs T2 (Ireland);
    reported as extra mean visibility latency vs eventual consistency."""
    sites = ["NC", "O", "I"]
    workload = SyntheticWorkload(correlation="full")
    rows = []
    for extra in injected:
        def inject(cluster: Cluster, extra=extra) -> None:
            if extra > 0:
                cluster.network.inject_site_delay("NC", "O", extra)

        baseline = run_once("eventual", workload, scale, sites=sites,
                            before_run=inject)
        entry = {"injected_delay_ms": extra}
        for name, serializer_site in (("T1", "O"), ("T2", "I")):
            topology = TreeTopology.star(serializer_site,
                                         {s: s for s in sites})
            result = run_once("saturn", workload, scale, sites=sites,
                              topology=topology, before_run=inject)
            entry[f"{name}_extra_visibility_ms"] = (
                result.visibility.mean() - baseline.visibility.mean())
        rows.append(entry)
    return {"rows": rows}


# ---------------------------------------------------------------------------
# Fig. 7 — visibility latencies vs the state of the art
# ---------------------------------------------------------------------------

def fig7(scale: Scale = DEFAULT) -> Dict:
    """Visibility CDFs for Ireland->Frankfurt (best case: no extra tree
    delay) and Ireland->Sydney (worst case: whole-tree traversal)."""
    sites = list(EC2_REGIONS)
    workload = SyntheticWorkload(correlation="full")
    pairs = [("I", "F"), ("I", "S")]
    out = {"pairs": pairs, "series": {}, "means": {}}
    for system in ("eventual", "saturn", "gentlerain", "cure"):
        result = run_once(system, workload, scale, sites=sites)
        out["series"][system] = {
            pair: result.visibility.samples(*pair) for pair in pairs}
        out["means"][system] = result.visibility.mean()
    return out


# ---------------------------------------------------------------------------
# five-way comparison — Fig. 4 / Fig. 6 extended with Eunomia and Okapi
# ---------------------------------------------------------------------------

FIVE_WAY_SYSTEMS = ("saturn", "gentlerain", "cure", "eunomia", "okapi")

#: nominal wire size of one Saturn label (type + src + ts + target +
#: origin); same convention as the baselines' stamp_wire_bytes, so the
#: cross-system *ratios* are the meaningful result
SATURN_LABEL_BYTES = 32


def _metadata_bytes(cluster: Cluster) -> int:
    """Total dependency-metadata bytes moved during one run.

    Baselines count *sent-side* (update stamps + stabilization /
    sequencer traffic); Saturn counts *received-side* labels (each
    label is processed once per interested datacenter, which is the
    genuine-partial-replication win being measured).  The asymmetry is
    documented in EXPERIMENTS.md; within a family the numbers compose.
    """
    system = cluster.config.system
    total = 0
    if system in ("saturn", "saturn-ts"):
        for dc in cluster.datacenters.values():
            total += SATURN_LABEL_BYTES * dc.proxy.labels_processed
    elif system in ("cops", "cops-noprune"):
        for dc in cluster.datacenters.values():
            total += 16 * sum(dc.dep_list_sizes)
    else:
        for dc in cluster.datacenters.values():
            total += getattr(dc, "metadata_bytes_sent", 0)
            sequencer = getattr(dc, "sequencer", None)
            if sequencer is not None:
                total += sequencer.metadata_bytes_sent
    return total


def five_way(scale: Scale = DEFAULT,
             sites: Optional[Sequence[str]] = None,
             pairs: Sequence[Tuple[str, str]] = (("I", "F"), ("I", "S"))) -> Dict:
    """Five-way saturn / gentlerain / cure / eunomia / okapi comparison:
    visibility-latency CDFs per pair, metadata bytes-per-update, and
    throughput, on one topology (default: the 7 EC2 regions)."""
    sites = list(sites) if sites is not None else list(EC2_REGIONS)
    pairs = [pair for pair in pairs if pair[0] in sites and pair[1] in sites]
    workload_args = dict(correlation="full")
    rows = []
    series: Dict[str, Dict] = {}
    for system in FIVE_WAY_SYSTEMS:
        result = run_once(system, SyntheticWorkload(**workload_args), scale,
                          sites=sites)
        visibility = result.visibility
        count = visibility.count()
        rows.append({
            "system": system,
            "throughput": result.throughput,
            "ops_completed": result.ops_completed,
            "visible_updates": count,
            "mean_visibility_ms": visibility.mean() if count else None,
            "p90_visibility_ms": visibility.percentile(90) if count else None,
            "metadata_bytes_per_update": (
                _metadata_bytes(result.cluster) / count if count else 0.0),
        })
        series[system] = {pair: visibility.samples(*pair) for pair in pairs}
    return {"rows": rows, "pairs": pairs, "series": series}


def five_way_smoke_summary() -> Dict:
    """Fixed-shape smoke five-way run for golden pinning and CI.

    Every parameter is pinned here (instead of taking a Scale) so the
    output is a deterministic function of the codebase alone — the JSON
    digest of this dict is committed under ``tests/harness/golden/`` and
    regenerating it must be byte-identical (mirrors ``tests/obs/golden``).
    """
    scale = Scale(duration=400.0, warmup=100.0, clients_per_dc=4,
                  num_partitions=2, seed=11, beam_width=3)
    result = five_way(scale, sites=("I", "F", "T"),
                      pairs=(("I", "F"), ("I", "T")))
    summary = {}
    for row in result["rows"]:
        summary[row["system"]] = {
            "throughput": round(row["throughput"], 6),
            "ops_completed": row["ops_completed"],
            "visible_updates": row["visible_updates"],
            "mean_visibility_ms": (None if row["mean_visibility_ms"] is None
                                   else round(row["mean_visibility_ms"], 6)),
            "p90_visibility_ms": (None if row["p90_visibility_ms"] is None
                                  else round(row["p90_visibility_ms"], 6)),
            "metadata_bytes_per_update": round(
                row["metadata_bytes_per_update"], 6),
        }
    return summary


# ---------------------------------------------------------------------------
# overload study — open-loop saturation sweep (beyond the paper)
# ---------------------------------------------------------------------------

OVERLOAD_SYSTEMS = ("saturn", "gentlerain")


def _overload_topology(sites: Sequence[str]) -> TreeTopology:
    """A serializer chain co-located with the datacenters (worst-case
    metadata path: every label crosses the whole chain)."""
    names = [f"s{site}" for site in sites]
    return TreeTopology(
        serializer_sites={name: site for name, site in zip(names, sites)},
        edges=[(a, b) for a, b in zip(names, names[1:])],
        attachments={site: f"s{site}" for site in sites})


def overload(scale: Scale = DEFAULT,
             systems: Sequence[str] = OVERLOAD_SYSTEMS,
             sites: Sequence[str] = ("I", "F", "T"),
             rates: Sequence[float] = (500.0, 2000.0, 8000.0, 20000.0),
             p99_slo_ms: float = 400.0,
             goodput_floor: float = 0.95,
             num_users: int = 4000,
             overload_config: Optional["OverloadConfig"] = None) -> Dict:
    """Open-loop saturation sweep: offered load vs delivered quality.

    For each system, sweep per-datacenter Poisson arrival rates over the
    streaming social workload and find the *max sustainable* offered rate:
    the largest rate at which p99 remote-update visibility stays under
    ``p99_slo_ms`` **and** at least ``goodput_floor`` of offered
    operations complete (rejections and queue growth both count against
    goodput).  The closed loop cannot measure this — it throttles itself.

    Saturn runs with the bounded-queue/backpressure/admission chain
    (:class:`~repro.datacenter.overload.OverloadConfig`); the baselines
    have no label path, so their overload behaviour is pure CPU queueing.
    """
    from repro.datacenter.overload import OverloadConfig
    from repro.workloads.arrivals import PoissonArrivals
    from repro.workloads.streaming import StreamingFacebookWorkload

    if overload_config is None:
        overload_config = OverloadConfig(sink_buffer_cap=50, sink_credits=20,
                                         serializer_service_rate=2.0)
    topology = _overload_topology(sites)
    rows = []
    max_sustainable: Dict[str, Optional[float]] = {}
    for system in systems:
        best: Optional[float] = None
        for rate in rates:
            workload = StreamingFacebookWorkload(num_users=num_users,
                                                 min_replicas=2,
                                                 max_replicas=min(3, len(sites)))
            result = run_once(
                system, workload, scale, sites=sites,
                topology=topology if system == "saturn" else None,
                arrivals=PoissonArrivals(rate_ops_s=rate),
                overload=overload_config if system == "saturn" else None)
            cluster = result.cluster
            offered = sum(s.offered for s in cluster.sources)
            completed = sum(s.completed for s in cluster.sources)
            rejected = sum(s.rejected for s in cluster.sources)
            goodput = completed / offered if offered else 0.0
            visibility = result.visibility
            vis_p99 = (visibility.percentile(99) if visibility.count()
                       else None)
            sustainable = (goodput >= goodput_floor
                           and vis_p99 is not None and vis_p99 <= p99_slo_ms)
            if sustainable:
                best = rate if best is None else max(best, rate)
            rows.append({
                "system": system,
                "offered_ops_s_per_dc": rate,
                "offered": offered,
                "completed": completed,
                "rejected": rejected,
                "goodput": goodput,
                "throughput": result.throughput,
                "op_p99_ms": result.ops.latency_percentile(
                    99, start=scale.warmup),
                "visibility_p99_ms": vis_p99,
                "sustainable": sustainable,
            })
        max_sustainable[system] = best
    return {"rows": rows, "max_sustainable_ops_s": max_sustainable,
            "p99_slo_ms": p99_slo_ms, "goodput_floor": goodput_floor}


def overload_smoke_summary() -> Dict:
    """Fixed-shape smoke overload sweep for golden pinning and CI.

    Every parameter is pinned (mirrors :func:`five_way_smoke_summary`):
    the returned dict is a deterministic function of the codebase alone,
    committed as ``tests/harness/golden/overload_smoke.json``.
    """
    scale = Scale(duration=400.0, warmup=100.0, num_partitions=2, seed=11)
    result = overload(scale, systems=("saturn", "gentlerain"),
                      sites=("I", "F", "T"),
                      rates=(500.0, 2000.0, 8000.0),
                      num_users=4000)
    rows = []
    for row in result["rows"]:
        rows.append({
            "system": row["system"],
            "offered_ops_s_per_dc": row["offered_ops_s_per_dc"],
            "offered": row["offered"],
            "completed": row["completed"],
            "rejected": row["rejected"],
            "goodput": round(row["goodput"], 6),
            "throughput": round(row["throughput"], 6),
            "op_p99_ms": round(row["op_p99_ms"], 6),
            "visibility_p99_ms": (None if row["visibility_p99_ms"] is None
                                  else round(row["visibility_p99_ms"], 6)),
            "sustainable": row["sustainable"],
        })
    return {"rows": rows,
            "max_sustainable_ops_s": result["max_sustainable_ops_s"],
            "p99_slo_ms": result["p99_slo_ms"],
            "goodput_floor": result["goodput_floor"]}


# ---------------------------------------------------------------------------
# Fig. 8 — Facebook benchmark
# ---------------------------------------------------------------------------

def fig8(scale: Scale = DEFAULT,
         max_replicas_sweep: Sequence[int] = (2, 3, 4, 5),
         cdf_max_replicas: int = 3) -> Dict:
    """Social-network workload: throughput vs the max number of replicas
    per item (8a) and visibility CDFs for I->F (best) and I->T (worst) (8b).
    """
    sites = list(EC2_REGIONS)
    rows = []
    for max_replicas in max_replicas_sweep:
        for system in FIG5_SYSTEMS:
            workload = FacebookWorkload(max_replicas=max_replicas)
            result = run_once(system, workload, scale, sites=sites,
                              clients_per_dc=scale.facebook_clients_per_dc)
            rows.append({"max_replicas": max_replicas, "system": system,
                         "throughput": result.throughput})
    pairs = [("I", "F"), ("I", "T")]
    series = {}
    means = {}
    for system in FIG5_SYSTEMS:
        workload = FacebookWorkload(max_replicas=cdf_max_replicas)
        result = run_once(system, workload, scale, sites=sites,
                          clients_per_dc=scale.facebook_clients_per_dc)
        series[system] = {pair: result.visibility.samples(*pair)
                          for pair in pairs}
        means[system] = result.visibility.mean()
    return {"rows": rows, "pairs": pairs, "series": series, "means": means}


# ---------------------------------------------------------------------------
# §6.2 — reconfiguration timing
# ---------------------------------------------------------------------------

def reconfiguration(scale: Scale = DEFAULT, emergency: bool = False) -> Dict:
    """Run Saturn, switch the tree mid-run (star -> M-configuration), and
    measure per-datacenter transition times.  With ``emergency=True`` the
    C1 tree is failed first and the failure-path protocol is exercised."""
    from repro.core.reconfig import ReconfigurationManager

    sites = list(EC2_REGIONS)
    workload = SyntheticWorkload(correlation="full")
    c1 = TreeTopology.star("I", {s: s for s in sites})
    c2 = m_configuration(sites, scale.beam_width)
    config = ClusterConfig(system="saturn", sites=tuple(sites),
                           clients_per_dc=scale.clients_per_dc,
                           num_partitions=scale.num_partitions,
                           seed=scale.seed, saturn_topology=c1)
    cluster = Cluster(config, workload)
    manager = ReconfigurationManager(
        cluster.service, list(cluster.datacenters.values()))
    switch_at = scale.warmup + 50.0
    # the switch needs runway: C1's longest metadata path is ~260 ms, and
    # the failure path additionally waits for timestamp stabilization
    duration = max(scale.duration, switch_at + 800.0)

    def switch() -> None:
        if emergency:
            cluster.service.fail_tree(epoch=0)
        manager.reconfigure(c2, emergency=emergency)

    cluster.sim.schedule(switch_at, switch)
    result = cluster.run(duration=duration, warmup=scale.warmup)
    times = manager.reconfiguration_times()
    all_times = [t for per_dc in times.values() for t in per_dc]
    return {
        "completed": manager.complete(),
        "per_dc_ms": times,
        "max_ms": max(all_times) if all_times else None,
        "throughput": result.throughput,
        "mean_visibility_ms": result.visibility.mean(),
    }


# ---------------------------------------------------------------------------
# fault tolerance: visibility through a serializer outage
# ---------------------------------------------------------------------------

def visibility_under_failure(scale: Scale = DEFAULT) -> Dict:
    """Crash the serializer tree mid-run and restart it later: the beacon
    detectors degrade every datacenter to the timestamp total order, the
    restarted tree's beacons trigger the automatic emergency epoch change,
    and remote visibility must return to (near) its pre-fault level.

    Reported: mean visibility in the pre-fault steady state, during the
    outage (degraded mode keeps updates flowing, just staler), and after
    recovery, plus the detector/recovery timeline."""
    sites = ["I", "F", "T"]
    workload = SyntheticWorkload(correlation="full")
    topology = TreeTopology.star("I", {s: s for s in sites})
    crash_at = scale.warmup + 100.0
    restart_at = crash_at + 200.0
    # runway: detection (~150 ms) + recovery beacons crossing the WAN
    # (~300 ms) + the emergency transition's stabilization wait
    duration = max(scale.duration, restart_at + 1200.0)

    def inject(cluster: Cluster) -> None:
        cluster.sim.schedule(
            crash_at, lambda: cluster.service.fail_tree(epoch=0))
        cluster.sim.schedule(
            restart_at, lambda: cluster.service.restart_tree(epoch=0))

    result = run_once(
        "saturn", workload,
        Scale(duration=duration, warmup=scale.warmup,
              clients_per_dc=scale.clients_per_dc,
              num_partitions=scale.num_partitions, seed=scale.seed,
              beam_width=scale.beam_width),
        sites=sites, topology=topology, before_run=inject,
        beacon_period=25.0, beacon_timeout=100.0, stabilization_wait=50.0,
        probe_period=50.0, auto_failover=True)
    cluster = result.cluster
    recoveries = cluster.failover.recoveries if cluster.failover else []
    recovered_at = max((t for t, _ in recoveries), default=None)
    spans = {name: list(dc.failover.degraded_spans)
             for name, dc in cluster.datacenters.items()
             if dc.failover is not None}
    visibility = result.visibility
    post_from = ((recovered_at + 300.0) if recovered_at is not None
                 else duration)
    return {
        "crash_at_ms": crash_at,
        "restart_at_ms": restart_at,
        "recovered": bool(recoveries),
        "recovery_epochs": [[t, e] for t, e in recoveries],
        "degraded_spans": spans,
        "pre_fault_visibility_ms": visibility.mean_in_window(
            scale.warmup, crash_at),
        "outage_visibility_ms": visibility.mean_in_window(
            crash_at, post_from),
        "post_recovery_visibility_ms": visibility.mean_in_window(
            post_from, duration),
        "throughput": result.throughput,
    }


# ---------------------------------------------------------------------------
# ablations (DESIGN.md design-choice benches)
# ---------------------------------------------------------------------------

def ablation_sink_batching(scale: Scale = DEFAULT,
                           periods: Sequence[float] = (0.5, 1.0, 2.0, 5.0,
                                                       10.0)) -> Dict:
    """Label-sink batching period: throughput vs visibility tradeoff."""
    sites = list(EC2_REGIONS)
    workload = SyntheticWorkload(correlation="full")
    rows = []
    for period in periods:
        result = run_once("saturn", workload, scale, sites=sites,
                          sink_batch_period=period)
        rows.append({"sink_batch_period_ms": period,
                     "throughput": result.throughput,
                     "mean_visibility_ms": result.visibility.mean()})
    return {"rows": rows}


def ablation_artificial_delays(scale: Scale = DEFAULT) -> Dict:
    """Artificial propagation delays (§5.4): with a slow bulk path A-C and
    a fast metadata path A-B-C, premature label delivery at C creates false
    dependencies that delay B's updates; the solver's δ fixes it."""
    sites = ["A", "B", "C"]
    model = LatencyModel(local_latency=0.25)
    model.set("A", "B", 10.0)
    model.set("B", "C", 10.0)
    model.set("A", "C", 80.0)  # bulk A->C is slow (not the shortest path)

    def latency(a: str, b: str) -> float:
        return 0.0 if a == b else model.get(a, b)

    base = TreeTopology(
        serializer_sites={"s0": "A", "s1": "B", "s2": "C"},
        edges=[("s0", "s1"), ("s1", "s2")],
        attachments={"A": "s0", "B": "s1", "C": "s2"})
    # §5.4 weights: the A<->C and B<->C paths carry the hot data, which
    # steers the solver to delay A's labels (edge s0->s1) rather than B's
    from repro.config.solver import optimize_delays
    weights = {("A", "C"): 3.0, ("C", "A"): 3.0,
               ("B", "C"): 2.0, ("C", "B"): 2.0,
               ("A", "B"): 1.0, ("B", "A"): 1.0}
    delays = optimize_delays(base, {s: s for s in sites}, latency, weights)
    tuned = base.with_delays(delays)
    workload = SyntheticWorkload(correlation="full", read_ratio=0.9)
    rows = []
    for name, topology in (("no-delays", base), ("with-delays", tuned)):
        result = run_once("saturn", workload, scale, sites=sites,
                          topology=topology, latency_model=model)
        rows.append({
            "config": name,
            "delays": {k: round(v, 1) for k, v in topology.delays.items()},
            "visibility_B_to_C_ms": result.visibility.mean("B", "C"),
            "visibility_A_to_C_ms": result.visibility.mean("A", "C"),
        })
    return {"rows": rows}


def ablation_parallel_apply(scale: Scale = DEFAULT) -> Dict:
    """§4.3 concurrency optimization: pipelined remote application vs a
    strictly serial remote proxy."""
    sites = list(EC2_REGIONS)
    workload = SyntheticWorkload(correlation="full", read_ratio=0.75)
    rows = []
    for parallel in (True, False):
        result = run_once("saturn", workload, scale, sites=sites,
                          parallel_concurrent_apply=parallel)
        rows.append({"parallel_apply": parallel,
                     "throughput": result.throughput,
                     "mean_visibility_ms": result.visibility.mean()})
    return {"rows": rows}


def ablation_genuine_partial(scale: Scale = DEFAULT) -> Dict:
    """Genuine partial replication: labels processed per datacenter under
    full replication vs degree-2 partial replication."""
    sites = list(EC2_REGIONS)
    rows = []
    for name, workload in (
            ("full", SyntheticWorkload(correlation="full")),
            ("degree-2", SyntheticWorkload(correlation="degree", degree=2))):
        result = run_once("saturn", workload, scale, sites=sites)
        cluster = result.cluster
        labels = {dc: cluster.datacenters[dc].proxy.labels_processed
                  for dc in sites}
        rows.append({"replication": name,
                     "labels_processed_per_dc": labels,
                     "total_labels": sum(labels.values()),
                     "throughput": result.throughput})
    return {"rows": rows}
