"""Formatting helpers: print experiment results the way the paper reports
them (tables of rows / CDF series), plus paper-vs-measured summaries."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["format_table", "format_cdf_summary", "PaperComparison"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Plain-text table with right-aligned numeric columns."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.1f}"
        return str(cell)

    text_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.rjust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_cdf_summary(name: str, samples: Sequence[float],
                       percentiles: Sequence[float] = (50, 90, 99)) -> str:
    """One-line CDF summary (the paper plots full CDFs; we report the
    quantiles that the text discusses)."""
    from repro.metrics.stats import mean, percentile
    if not samples:
        return f"{name}: (no samples)"
    parts = [f"mean={mean(samples):.1f}ms"]
    for p in percentiles:
        parts.append(f"p{int(p)}={percentile(samples, p):.1f}ms")
    return f"{name}: " + "  ".join(parts) + f"  (n={len(samples)})"


class PaperComparison:
    """Collects paper-reported vs measured values for EXPERIMENTS.md."""

    def __init__(self, experiment: str) -> None:
        self.experiment = experiment
        self.rows: List[Tuple[str, str, str, str]] = []

    def add(self, metric: str, paper: str, measured: object,
            verdict: str = "") -> None:
        if isinstance(measured, float):
            measured = f"{measured:.1f}"
        self.rows.append((metric, paper, str(measured), verdict))

    def __str__(self) -> str:
        return format_table(
            ["metric", "paper", "measured", "verdict"], self.rows,
            title=f"[{self.experiment}] paper vs measured")
