"""Experiment harness: build a geo-replicated cluster and drive a workload.

The runner assembles the full simulated system for any of the systems
under study:

* ``"saturn"``     — the paper's system (tree-based metadata dissemination);
* ``"saturn-ts"``  — the P-configuration (timestamp-order fallback only);
* ``"eventual"``   — eventually consistent baseline (upper/lower bound);
* ``"gentlerain"`` — GentleRain [26];
* ``"cure"``       — Cure [3];
* ``"eunomia"``    — Eunomia (per-site sequencer, deferred stabilization);
* ``"okapi"``      — Okapi (HLC vectors, global-cut stabilization);
* ``"cops"`` / ``"cops-noprune"`` — COPS-style explicit dependencies;

places one datacenter per site with Table-1-style latencies, spawns
closed-loop clients, runs for a simulated duration, and returns throughput
and visibility-latency results with a warmup window discarded (the paper
drops the first and last minute of each run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.baselines.base import StabilizedDatacenter
from repro.baselines.cure import CureDatacenter, cure_merge
from repro.baselines.eunomia import EunomiaDatacenter, eunomia_merge
from repro.baselines.explicit import ExplicitDatacenter, explicit_merge
from repro.baselines.gentlerain import GentleRainDatacenter, gentlerain_merge
from repro.baselines.okapi import OkapiDatacenter
from repro.config.latencies import EC2_REGIONS, ec2_latency_model
from repro.core.label import label_max
from repro.core.replication import ReplicationMap
from repro.core.service import SaturnService
from repro.core.tree import TreeTopology
from repro.datacenter.client import ClientProcess
from repro.datacenter.datacenter import DatacenterParams, SaturnDatacenter
from repro.datacenter.overload import OverloadConfig
from repro.workloads.openloop import OpenLoopClient, OpenLoopSource
from repro.metrics import OpRecorder, VisibilityRecorder
from repro.sim.clock import ClockFactory
from repro.sim.cpu import CostModel
from repro.sim.engine import Simulator
from repro.sim.network import LatencyModel, Network
from repro.sim.rng import RngRegistry

__all__ = ["ClusterConfig", "Cluster", "RunResults", "MetricsHub", "SYSTEMS"]

SYSTEMS = ("saturn", "saturn-ts", "eventual", "gentlerain", "cure",
           "eunomia", "okapi", "cops", "cops-noprune")


class MetricsHub:
    """Single sink for all measurements taken during a run."""

    def __init__(self, sim: Simulator, warmup_until: float = 0.0) -> None:
        self.visibility = VisibilityRecorder(warmup_until=warmup_until)
        self.visibility.bind_clock(sim)
        self.ops = OpRecorder()

    def record_visibility(self, origin: str, dest: str, latency: float) -> None:
        self.visibility.record_visibility(origin, dest, latency)

    def record_op(self, kind: str, latency: float, at: float) -> None:
        self.ops.record_op(kind, latency, at)


@dataclass
class ClusterConfig:
    """Static description of one experiment's cluster."""

    system: str = "saturn"
    sites: Sequence[str] = tuple(EC2_REGIONS)
    num_partitions: int = 2
    clients_per_dc: int = 8
    seed: int = 1
    cost_model: CostModel = field(default_factory=CostModel)
    latency_model: Optional[LatencyModel] = None
    local_latency: float = 0.25
    max_clock_skew: float = 0.5
    #: Saturn tree; default is a star on the first site (experiments pass
    #: the configuration generator's output for the M-configuration).
    saturn_topology: Optional[TreeTopology] = None
    sink_batch_period: float = 1.0
    sink_heartbeat_period: float = 10.0
    bulk_heartbeat_period: float = 5.0
    chain_length: int = 1
    parallel_concurrent_apply: bool = True
    ping_period: float = 0.0
    #: serializer liveness beacons + per-sink failure detector (0 = off;
    #: see repro.datacenter.failover for the state machine)
    beacon_period: float = 0.0
    beacon_timeout: float = 0.0
    stabilization_wait: float = 4.0
    probe_period: float = 4.0
    #: wire the AutoFailover coordinator: degraded datacenters trigger an
    #: emergency epoch change once the dead tree is reachable again
    auto_failover: bool = False
    #: stuck fast-path epoch changes escalate to the failure path (0 = off)
    transition_timeout: float = 0.0
    #: Eunomia sequencer batching interval (ms): the staleness /
    #: batching-efficiency knob of the deferred-stabilization design
    sequencer_batch_period: float = 2.0
    #: override the workload's replication map (e.g. Fig. 1b sweeps)
    replication: Optional[ReplicationMap] = None
    #: opt-in runtime FIFO/determinism checker (repro.analysis.runtime);
    #: off by default so the hot path stays uninstrumented
    hazard_monitor: bool = False
    #: opt-in label-lifecycle tracing + metrics registry (repro.obs); the
    #: tracer schedules no events, so the simulated execution is identical
    #: with it on or off
    obs: bool = False
    #: arrival model (repro.workloads.arrivals); None or ClosedLoop keeps
    #: the historical closed-loop client population, an open-loop model
    #: replaces it with per-datacenter OpenLoopSources (clients_per_dc is
    #: then ignored — the pool grows on demand)
    arrivals: Optional[object] = None
    #: opt-in overload machinery (repro.datacenter.overload); None keeps
    #: every queue unbounded and admission disabled
    overload: Optional[OverloadConfig] = None

    def __post_init__(self) -> None:
        if self.system not in SYSTEMS:
            raise ValueError(f"unknown system {self.system!r}; "
                             f"expected one of {SYSTEMS}")
        if self.latency_model is None:
            self.latency_model = ec2_latency_model(self.local_latency)


@dataclass
class RunResults:
    """Outcome of one run."""

    throughput: float
    ops_completed: int
    duration: float
    warmup: float
    visibility: VisibilityRecorder
    ops: OpRecorder
    cluster: "Cluster"

    def mean_visibility(self, origin: Optional[str] = None,
                        dest: Optional[str] = None) -> float:
        return self.visibility.mean(origin, dest)


class Cluster:
    """A fully wired simulated deployment."""

    def __init__(self, config: ClusterConfig, workload) -> None:
        self.config = config
        self.workload = workload
        self.sim = Simulator()
        self.rng = RngRegistry(seed=config.seed)
        self.network = Network(self.sim, latency_model=config.latency_model,
                               default_latency=config.local_latency,
                               rng=self.rng)
        self.metrics = MetricsHub(self.sim)
        self.clocks = ClockFactory(self.sim, self.rng,
                                   max_skew=config.max_clock_skew)
        self.sites = list(config.sites)
        self.hazard_monitor = None
        if config.hazard_monitor:
            from repro.analysis.runtime import HazardMonitor
            self.hazard_monitor = HazardMonitor.install(self.sim, self.network)
        self.obs_hub = None
        if config.obs:
            from repro.obs import ObsHub
            self.obs_hub = ObsHub(self.sim, self.network)
            if self.hazard_monitor is not None:
                # a trace is installed anyway: ride it with the tap (the
                # monitor stays primary, its digest is unchanged).  With
                # no monitor the trace slot stays empty on purpose —
                # installing one would disable same-destination delivery
                # batching and change the untraced event order.
                from repro.analysis.mc.oracles import TraceTee
                self.network.trace = TraceTee(self.hazard_monitor,
                                              self.obs_hub.net_tap)

        def latency(a: str, b: str) -> float:
            if a == b:
                return 0.0
            return config.latency_model.get(a, b)

        self.latency = latency
        self.replication = config.replication or self.workload.replication_map(
            self.sites, latency, self.rng)

        self.service: Optional[SaturnService] = None
        self.datacenters: Dict[str, object] = {}
        self.clients: List[ClientProcess] = []
        self.sources: List[OpenLoopSource] = []
        self.execution_log = None
        self.manager = None
        self.failover = None
        self._build_datacenters()
        if self.open_loop:
            self._build_sources()
        else:
            self._build_clients()
        self._build_failover()

    @property
    def open_loop(self) -> bool:
        return getattr(self.config.arrivals, "open_loop", False)

    # ------------------------------------------------------------------

    def _build_datacenters(self) -> None:
        config = self.config
        if config.system == "saturn":
            topology = config.saturn_topology or TreeTopology.star(
                self.sites[0], {site: site for site in self.sites})
            service_rate = (config.overload.serializer_service_rate
                            if config.overload is not None else 0.0)
            self.service = SaturnService(self.sim, self.network,
                                         self.replication,
                                         chain_length=config.chain_length,
                                         beacon_period=config.beacon_period,
                                         serializer_service_rate=service_rate)
            if self.obs_hub is not None:
                # before install_tree, so the serializers inherit the tracer
                self.service.obs = self.obs_hub.tracer
                self.service.queue_obs = self.obs_hub.registry
            self.service.install_tree(topology, epoch=0)
        for site in self.sites:
            self.datacenters[site] = self._make_datacenter(site)

    def _make_datacenter(self, site: str):
        config = self.config
        clock = self.clocks.create()
        if config.system in ("saturn", "saturn-ts", "eventual"):
            consistency = {"saturn": "saturn", "saturn-ts": "timestamp",
                           "eventual": "eventual"}[config.system]
            params = DatacenterParams(
                name=site, site=site, num_partitions=config.num_partitions,
                consistency=consistency,
                sink_batch_period=config.sink_batch_period,
                sink_heartbeat_period=config.sink_heartbeat_period,
                bulk_heartbeat_period=config.bulk_heartbeat_period,
                parallel_concurrent_apply=config.parallel_concurrent_apply,
                ping_period=config.ping_period,
                beacon_timeout=config.beacon_timeout,
                stabilization_wait=config.stabilization_wait,
                probe_period=config.probe_period,
                transition_timeout=config.transition_timeout,
                sink_buffer_cap=(config.overload.sink_buffer_cap
                                 if config.overload is not None else 0),
                sink_credits=(config.overload.sink_credits
                              if config.overload is not None else 0))
            dc = SaturnDatacenter(self.sim, params, self.replication,
                                  config.cost_model, clock,
                                  metrics=self.metrics,
                                  execution_log=self.execution_log)
            dc.saturn = self.service
            if self.obs_hub is not None:
                tracer = self.obs_hub.tracer
                dc.sink.obs = tracer
                dc.proxy.obs = tracer
                if dc.failover is not None:
                    dc.failover.obs = tracer
                dc.sink.queue_obs = self.obs_hub.registry
                if dc.admission is not None:
                    dc.admission.obs = self.obs_hub.registry
        elif config.system == "gentlerain":
            dc = GentleRainDatacenter(self.sim, site, site, self.replication,
                                      config.cost_model, clock,
                                      num_partitions=config.num_partitions,
                                      metrics=self.metrics,
                                      execution_log=self.execution_log)
        elif config.system == "eunomia":
            dc = EunomiaDatacenter(self.sim, site, site, self.replication,
                                   config.cost_model, clock,
                                   num_partitions=config.num_partitions,
                                   metrics=self.metrics,
                                   execution_log=self.execution_log,
                                   batch_period=config.sequencer_batch_period)
        elif config.system == "okapi":
            dc = OkapiDatacenter(self.sim, site, site, self.replication,
                                 config.cost_model, clock,
                                 num_partitions=config.num_partitions,
                                 metrics=self.metrics,
                                 execution_log=self.execution_log)
        elif config.system in ("cops", "cops-noprune"):
            dc = ExplicitDatacenter(self.sim, site, site, self.replication,
                                    config.cost_model, clock,
                                    num_partitions=config.num_partitions,
                                    prune_on_write=(config.system == "cops"),
                                    metrics=self.metrics,
                                    execution_log=self.execution_log)
        else:  # cure
            dc = CureDatacenter(self.sim, site, site, self.replication,
                                config.cost_model, clock,
                                num_partitions=config.num_partitions,
                                metrics=self.metrics,
                                execution_log=self.execution_log)
        if self.obs_hub is not None and isinstance(dc, StabilizedDatacenter):
            dc.obs = self.obs_hub.tracer
        dc.attach_network(self.network)
        self.network.place(dc.name, site)
        return dc

    def merge_function(self) -> Callable:
        return {
            "saturn": label_max, "saturn-ts": label_max,
            "eventual": label_max,
            "gentlerain": gentlerain_merge,
            "cure": cure_merge,
            "eunomia": eunomia_merge,
            "okapi": cure_merge,
            "cops": explicit_merge, "cops-noprune": explicit_merge,
        }[self.config.system]

    def _build_clients(self) -> None:
        merge = self.merge_function()
        for site in self.sites:
            for index in range(self.config.clients_per_dc):
                client_id = f"{site}-{index}"
                generator = self.workload.client_generator(
                    site, self.replication, self.rng, self.latency,
                    stream_name=f"client-{client_id}")
                client = ClientProcess(self.sim, client_id, site, generator,
                                       merge=merge, metrics=self.metrics)
                client.attach_network(self.network)
                self.network.place(client.name, site)
                self.clients.append(client)

    def _build_sources(self) -> None:
        """One open-loop arrival source per site (clients spawn on demand)."""
        merge = self.merge_function()

        def make_spawn(site: str, source_box: list):
            def spawn(client_id: str) -> OpenLoopClient:
                generator = self.workload.client_generator(
                    site, self.replication, self.rng, self.latency,
                    stream_name=f"client-{client_id}")
                client = OpenLoopClient(
                    self.sim, client_id, site, generator, merge=merge,
                    metrics=self.metrics, execution_log=self.execution_log,
                    source=source_box[0])
                client.attach_network(self.network)
                self.network.place(client.name, site)
                self.clients.append(client)
                return client
            return spawn

        for site in self.sites:
            box: list = [None]
            source = OpenLoopSource(self.sim, site, self.config.arrivals,
                                    spawn=make_spawn(site, box),
                                    stream=self.rng.stream(f"openloop-{site}"))
            box[0] = source
            self.sources.append(source)

    def _build_failover(self) -> None:
        if not self.config.auto_failover or self.service is None:
            return
        from repro.core.failover import AutoFailover
        from repro.core.reconfig import ReconfigurationManager
        self.manager = ReconfigurationManager(
            self.service, list(self.datacenters.values()))
        if self.obs_hub is not None:
            self.manager.obs = self.obs_hub.tracer
        self.failover = AutoFailover(self.manager)
        for dc in self.datacenters.values():
            if getattr(dc, "failover", None) is not None:
                dc.failover.coordinator = self.failover

    # ------------------------------------------------------------------

    def attach_execution_log(self, log) -> None:
        """Install a causal-consistency execution log on every component."""
        self.execution_log = log
        for dc in self.datacenters.values():
            dc.execution_log = log
        for client in self.clients:
            client.execution_log = log

    def start(self) -> None:
        for dc in self.datacenters.values():
            dc.start()
        for source in self.sources:
            source.start()
        for index, client in enumerate(self.clients):
            # stagger starts slightly to avoid lock-step artifacts
            self.sim.schedule(0.01 * index, client.start)

    def run(self, duration: float = 1000.0, warmup: float = 200.0) -> RunResults:
        """Start the cluster and run for *duration* ms of simulated time."""
        if warmup >= duration:
            raise ValueError("warmup must be shorter than duration")
        self.metrics.visibility.warmup_until = warmup
        self.start()
        self.sim.run(until=duration)
        for source in self.sources:
            source.stop()
        for client in self.clients:
            client.stop()
        if self.obs_hub is not None:
            self.obs_hub.sample_kernel()
        throughput = self.metrics.ops.throughput(warmup, duration)
        return RunResults(
            throughput=throughput,
            ops_completed=self.metrics.ops.ops_in_window(warmup, duration),
            duration=duration, warmup=warmup,
            visibility=self.metrics.visibility, ops=self.metrics.ops,
            cluster=self)
