"""Measurement: visibility latency, throughput, statistics."""

from repro.metrics.stats import cdf_points, mean, percentile
from repro.metrics.throughput import OpRecorder
from repro.metrics.visibility import VisibilityRecorder

__all__ = ["cdf_points", "mean", "percentile", "OpRecorder", "VisibilityRecorder"]
