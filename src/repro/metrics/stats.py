"""Small statistics helpers (percentiles, CDFs) shared by the metrics
recorders and the benchmark harness."""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["percentile", "mean", "cdf_points"]


def mean(samples: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    if not samples:
        return 0.0
    return sum(samples) / len(samples)


def percentile(samples: Sequence[float], p: float) -> float:
    """The *p*-th percentile (0..100) with linear interpolation.

    Raises ``ValueError`` on an empty sequence — a silent 0 would corrupt
    latency reports.
    """
    if not samples:
        raise ValueError("percentile of empty sequence")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    # difference form avoids float overshoot when both endpoints are equal
    return ordered[low] + fraction * (ordered[high] - ordered[low])


def cdf_points(samples: Sequence[float]) -> List[Tuple[float, float]]:
    """(value, cumulative fraction) pairs for plotting a CDF."""
    ordered = sorted(samples)
    n = len(ordered)
    return [(value, (i + 1) / n) for i, value in enumerate(ordered)]
