"""Client operation recorder: throughput and operation latency."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from repro.metrics.stats import mean, percentile

__all__ = ["OpRecorder"]


class OpRecorder:
    """Records completed client operations with completion timestamps."""

    def __init__(self) -> None:
        self._completions: List[Tuple[float, str, float]] = []
        self._counts: Dict[str, int] = defaultdict(int)

    def record_op(self, kind: str, latency: float, at: float) -> None:
        self._completions.append((at, kind, latency))
        self._counts[kind] += 1

    # -- queries ---------------------------------------------------------

    def total_ops(self) -> int:
        return len(self._completions)

    def counts(self) -> Dict[str, int]:
        return dict(self._counts)

    def ops_in_window(self, start: float, end: float) -> int:
        return sum(1 for at, _, _ in self._completions if start <= at < end)

    def throughput(self, start: float, end: float) -> float:
        """Completed operations per (simulated) second in [start, end)."""
        if end <= start:
            raise ValueError("window end must be after start")
        window_ms = end - start
        return self.ops_in_window(start, end) / (window_ms / 1000.0)

    def latencies(self, kind: str = None, start: float = 0.0) -> List[float]:
        return [lat for at, k, lat in self._completions
                if at >= start and (kind is None or k == kind)]

    def mean_latency(self, kind: str = None, start: float = 0.0) -> float:
        return mean(self.latencies(kind, start))

    def latency_percentile(self, p: float, kind: str = None,
                           start: float = 0.0) -> float:
        return percentile(self.latencies(kind, start), p)
