"""Remote-update visibility latency recorder.

The paper's key latency metric (§7): the time between an update being
applied at its origin datacenter and becoming visible at a remote replica.
Samples recorded before ``warmup_until`` are discarded, mirroring the
paper's practice of dropping the first minute of each run.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.metrics.stats import cdf_points, mean, percentile

__all__ = ["VisibilityRecorder"]


class VisibilityRecorder:
    """Collects per-(origin, destination) visibility latency samples."""

    def __init__(self, warmup_until: float = 0.0) -> None:
        self.warmup_until = warmup_until
        self._samples: Dict[Tuple[str, str], List[float]] = defaultdict(list)
        #: (recorded-at, origin, dest, latency) in record order — the
        #: windowed queries below slice this for before/after-fault
        #: comparisons (fault-recovery regression tests)
        self._timeline: List[Tuple[float, str, str, float]] = []
        self._clock = None

    def bind_clock(self, sim) -> None:
        """Attach the simulator so warmup filtering can use current time."""
        self._clock = sim

    def record_visibility(self, origin: str, dest: str, latency: float) -> None:
        if self._clock is not None and self._clock.now < self.warmup_until:
            return
        self._samples[(origin, dest)].append(latency)
        if self._clock is not None:
            self._timeline.append((self._clock.now, origin, dest, latency))

    # -- queries ---------------------------------------------------------

    def samples(self, origin: Optional[str] = None,
                dest: Optional[str] = None) -> List[float]:
        """Samples filtered by origin and/or destination (None = any)."""
        collected: List[float] = []
        for (o, d), values in self._samples.items():
            if origin is not None and o != origin:
                continue
            if dest is not None and d != dest:
                continue
            collected.extend(values)
        return collected

    def count(self) -> int:
        return sum(len(v) for v in self._samples.values())

    def mean(self, origin: Optional[str] = None,
             dest: Optional[str] = None) -> float:
        return mean(self.samples(origin, dest))

    def percentile(self, p: float, origin: Optional[str] = None,
                   dest: Optional[str] = None) -> float:
        return percentile(self.samples(origin, dest), p)

    def cdf(self, origin: Optional[str] = None,
            dest: Optional[str] = None) -> List[Tuple[float, float]]:
        return cdf_points(self.samples(origin, dest))

    def pairs(self) -> List[Tuple[str, str]]:
        return sorted(self._samples)

    # -- windowed queries (recorded-at time, not latency) -----------------

    def samples_in_window(self, t0: float, t1: float,
                          origin: Optional[str] = None,
                          dest: Optional[str] = None) -> List[float]:
        """Latency samples recorded in ``[t0, t1)``, optionally filtered.

        Only populated when a clock is bound (the harness always binds
        one); used to compare steady-state visibility before a fault with
        visibility after recovery."""
        return [latency for at, o, d, latency in self._timeline
                if t0 <= at < t1
                and (origin is None or o == origin)
                and (dest is None or d == dest)]

    def mean_in_window(self, t0: float, t1: float,
                       origin: Optional[str] = None,
                       dest: Optional[str] = None) -> float:
        return mean(self.samples_in_window(t0, t1, origin, dest))
