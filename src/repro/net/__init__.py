"""Pluggable transport: the same protocol code on sim or real TCP.

ROADMAP item 1.  Every actor (:class:`~repro.sim.process.Process`
subclass) talks to its peers exclusively through an attached *transport*
— an object satisfying the structural :class:`~repro.net.transport.
Transport` protocol.  Two implementations exist:

* the deterministic in-process :class:`~repro.sim.network.Network`
  (tier-1 path: golden traces, HazardMonitor digests, mc replay), and
* :class:`~repro.net.tcp.TcpTransport` + :class:`~repro.net.kernel.
  RealtimeKernel`: one OS process per datacenter / serializer, frames on
  asyncio TCP, discovery through :mod:`repro.net.directory`.

``python -m repro.net run`` (or ``saturn-repro net run``) boots an N-DC
chain over localhost and drives the causal-visibility smoke workload
end-to-end; see DESIGN.md §10.
"""

from repro.net.codec import (CodecError, decode_message, encode_message,
                             registered_messages)
from repro.net.kernel import RealtimeKernel
from repro.net.spec import ClusterSpec, chain_smoke_spec
from repro.net.transport import Kernel, Transport

__all__ = [
    "Transport", "Kernel", "RealtimeKernel",
    "ClusterSpec", "chain_smoke_spec",
    "CodecError", "encode_message", "decode_message", "registered_messages",
]
