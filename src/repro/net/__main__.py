"""``python -m repro.net`` — alias for ``saturn-repro net``."""

import sys

from repro.net.cli import main

if __name__ == "__main__":
    sys.exit(main())
