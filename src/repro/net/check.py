"""Causal-visibility checker for real-cluster runs.

The sim path has the full :mod:`repro.verify` machinery online; a real
cluster only leaves behind per-node ``visibility.jsonl`` logs (written by
:class:`~repro.net.node.NetRecorder`).  This module replays those logs
against the cluster spec and checks the four properties the net-smoke
job gates on:

1. **completeness** — every scripted update became visible at every
   datacenter that replicates its key's group;
2. **partial replication** — no key ever became visible at a datacenter
   outside its replication group;
3. **causal order** — for every causal edge implied by the client
   scripts (session order, and poll-then-update), the dependency was
   visible *before* the dependent at every datacenter replicating both;
4. **reads** — every scripted plain read returned a version (the
   reader's final ``g0:a`` read is the end-to-end witness).

The checker is pure over the parsed logs, so it is unit-testable without
sockets.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Tuple

from repro.net.spec import ClusterSpec, chain_dependencies

__all__ = ["CheckResult", "check_cluster", "load_events", "check_events"]


@dataclass
class CheckResult:
    """Outcome of a cluster check; ``ok`` iff no problems."""

    problems: List[str] = field(default_factory=list)
    #: dc -> ordered (origin, key) first-visibility sequence
    sequences: Dict[str, List[Tuple[str, str]]] = field(default_factory=dict)
    #: dc -> number of events parsed
    event_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.problems

    def to_json(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "problems": list(self.problems),
            "sequences": {dc: [list(pair) for pair in sequence]
                          for dc, sequence in sorted(self.sequences.items())},
            "event_counts": dict(sorted(self.event_counts.items())),
        }


def load_events(cluster_dir: Path, spec: ClusterSpec
                ) -> Dict[str, List[Dict[str, Any]]]:
    """dc site -> parsed visibility.jsonl events (file order)."""
    events: Dict[str, List[Dict[str, Any]]] = {}
    for site in spec.sites:
        path = Path(cluster_dir) / f"dc-{site}" / "visibility.jsonl"
        if not path.exists():
            events[site] = []
            continue
        parsed = []
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    parsed.append(json.loads(line))
        events[site] = parsed
    return events


def _visible_sequence(events: List[Dict[str, Any]]
                      ) -> List[Tuple[str, str]]:
    """First-visibility (origin, key) order at one datacenter."""
    sequence: List[Tuple[str, str]] = []
    seen = set()
    for event in events:
        if event.get("event") in ("update", "visible"):
            pair = (event["origin"], event["key"])
            if pair not in seen:
                seen.add(pair)
                sequence.append(pair)
    return sequence


def check_events(spec: ClusterSpec,
                 events: Dict[str, List[Dict[str, Any]]]) -> CheckResult:
    """Run all four checks over parsed per-DC event streams."""
    result = CheckResult()
    replication = spec.replication()
    updates = spec.scripted_updates()

    sequences = {}
    for site in spec.sites:
        sequences[site] = _visible_sequence(events.get(site, []))
        result.event_counts[site] = len(events.get(site, []))
    result.sequences = sequences

    # 1. completeness + 2. partial replication
    for origin, key in updates:
        replicas = replication.replicas(key)
        for site in spec.sites:
            visible = (origin, key) in sequences[site]
            if site in replicas and not visible:
                result.problems.append(
                    f"completeness: update {key!r} from {origin} never "
                    f"became visible at replica {site}")
            if site not in replicas and visible:
                result.problems.append(
                    f"partial-replication: {key!r} (group not replicated "
                    f"at {site}) leaked into {site}'s visible set")

    # 3. causal order
    origin_of = dict((key, origin) for origin, key in updates)
    for dep_key, key in chain_dependencies(spec):
        dep_origin = origin_of.get(dep_key)
        origin = origin_of.get(key)
        if dep_origin is None or origin is None:
            continue
        both = set(replication.replicas(dep_key)) & set(
            replication.replicas(key))
        for site in sorted(both):
            sequence = sequences[site]
            try:
                dep_index = sequence.index((dep_origin, dep_key))
                index = sequence.index((origin, key))
            except ValueError:
                continue  # completeness check already reported it
            if dep_index > index:
                result.problems.append(
                    f"causal-order: at {site}, {key!r} became visible "
                    f"before its dependency {dep_key!r}")

    # 4. scripted plain reads returned a version
    for client in spec.clients:
        reads = [op["key"] for op in client["script"]
                 if op["op"] == "read"]
        if not reads:
            continue
        returned = {}
        for event in events.get(client["dc"], []):
            if (event.get("event") == "read"
                    and event.get("client") == client["id"]
                    and event.get("version") is not None):
                returned[event["key"]] = event["version"]
        for key in reads:
            if key not in returned:
                result.problems.append(
                    f"read: client {client['id']} at {client['dc']} never "
                    f"read a version of {key!r}")

    return result


def check_cluster(cluster_dir: Path) -> CheckResult:
    """Load spec + logs from a cluster directory and check them."""
    cluster_dir = Path(cluster_dir)
    spec = ClusterSpec.load(cluster_dir / "spec.json")
    return check_events(spec, load_events(cluster_dir, spec))
