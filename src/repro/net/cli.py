"""``saturn-repro net``: boot and check a real cluster over localhost TCP.

Subcommands
-----------

``run``
    Boot the directory service plus one OS process per datacenter and
    serializer, drive the chain causal-visibility smoke workload to
    completion, stop everything gracefully, and run the causal checker
    over the per-node logs.  Exit 0 on success, 1 on a visibility /
    causal violation, 2 on timeout or unclean shutdown.
``check``
    Re-run the checker over an existing cluster directory.
``spec``
    Print the chain smoke :class:`~repro.net.spec.ClusterSpec` as JSON.

The driver is the only place in the net stack that blocks on wall time:
everything below it is event-driven.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.net.check import check_cluster
from repro.net.directory import DirectoryClient
from repro.net.spec import ClusterSpec, chain_smoke_spec, write_cluster

__all__ = ["main"]

_ENDPOINT_WAIT_S = 15.0
_POLL_PERIOD_S = 0.2
_STOP_GRACE_S = 10.0


def _python_env() -> Dict[str, str]:
    """Child env whose PYTHONPATH can import this very ``repro``."""
    env = dict(os.environ)
    # this file is <src>/repro/net/cli.py — parents[2] is <src>
    src_root = str(Path(__file__).resolve().parents[2])
    extra = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (src_root if not extra
                         else src_root + os.pathsep + extra)
    return env


def _spawn(cmd: List[str], log_path: Path,
           env: Dict[str, str]) -> Tuple[subprocess.Popen, Any]:
    fh = open(log_path, "ab")
    proc = subprocess.Popen(cmd, stdout=fh, stderr=subprocess.STDOUT,
                            env=env)
    return proc, fh


def _wait_endpoint(path: Path) -> Tuple[str, int]:
    deadline = time.monotonic() + _ENDPOINT_WAIT_S  # noqa: SAT001 - driver orchestrates real processes on wall time
    while True:
        if path.exists():
            text = path.read_text(encoding="utf-8").strip()
            if text:
                host, port = text.split()
                return host, int(port)
        if time.monotonic() > deadline:  # noqa: SAT001 - driver orchestrates real processes on wall time
            raise TimeoutError("directory service never wrote its endpoint")
        time.sleep(0.05)


def _expected_by_node(spec: ClusterSpec) -> Dict[str, Set[Tuple[str, str]]]:
    """dc node name -> (origin, key) pairs that must become visible."""
    replication = spec.replication()
    expected: Dict[str, Set[Tuple[str, str]]] = {
        f"dc-{site}": set() for site in spec.sites}
    for origin, key in spec.scripted_updates():
        for site in sorted(replication.replicas(key)):
            expected[f"dc-{site}"].add((origin, key))
    return expected


def _workload_done(directory: DirectoryClient,
                   expected: Dict[str, Set[Tuple[str, str]]]) -> bool:
    reports = directory.snapshot()["state"]["reports"]
    for node, pairs in expected.items():
        report = reports.get(node)
        if report is None or not report.get("clients_done"):
            return False
        visible = {tuple(pair) for pair in report.get("visible", [])}
        if not pairs <= visible:
            return False
    return True


def _run(args: argparse.Namespace) -> int:
    spec = chain_smoke_spec(args.dcs, poll_cap=args.poll_cap)
    cluster_dir = Path(args.cluster_dir)
    cluster_dir.mkdir(parents=True, exist_ok=True)
    env = _python_env()
    children: List[Tuple[str, subprocess.Popen, Any]] = []
    outcome: Dict[str, Any] = {"cluster_dir": str(cluster_dir)}
    exit_code = 2
    try:
        # 1. directory service (endpoint file is the readiness handshake)
        endpoint_path = cluster_dir / "directory.endpoint"
        expected_nodes = sorted(spec.nodes())
        directory_proc, directory_fh = _spawn(
            [sys.executable, "-m", "repro.net.directory",
             "--expected", ",".join(expected_nodes),
             "--state-file", str(cluster_dir / "directory.json"),
             "--endpoint-file", str(endpoint_path)],
            cluster_dir / "directory.log", env)
        children.append(("directory", directory_proc, directory_fh))
        host, port = _wait_endpoint(endpoint_path)
        directory = DirectoryClient(host, port)

        # 2. per-node config dirs, then one OS process per node
        node_dirs = write_cluster(spec, cluster_dir, host, port,
                                  deadline_s=args.timeout,
                                  sanitize=args.sanitize,
                                  stall_ms=args.stall_ms)
        for node, node_dir in sorted(node_dirs.items()):
            proc, fh = _spawn(
                [sys.executable, "-m", "repro.net.node",
                 "--dir", str(node_dir)],
                node_dir / "node.log", env)
            children.append((node, proc, fh))

        # 3. wait for the workload: every client done, every expected
        #    (origin, key) pair visible at its replicas
        expected = _expected_by_node(spec)
        deadline = time.monotonic() + args.timeout  # noqa: SAT001 - driver orchestrates real processes on wall time
        timed_out = False
        while True:
            if _workload_done(directory, expected):
                break
            if time.monotonic() > deadline:  # noqa: SAT001 - driver orchestrates real processes on wall time
                timed_out = True
                break
            dead = [name for name, proc, _ in children[1:]
                    if proc.poll() not in (None, 0)]
            if dead:
                outcome["crashed"] = dead
                timed_out = True
                break
            time.sleep(_POLL_PERIOD_S)
        outcome["timed_out"] = timed_out

        # 4. graceful stop: flip the phase, let nodes drain and exit
        try:
            directory.set_phase("stop")
        except OSError:
            pass
        exits: Dict[str, Optional[int]] = {}
        for name, proc, _ in children[1:]:
            try:
                exits[name] = proc.wait(timeout=_STOP_GRACE_S)
            except subprocess.TimeoutExpired:
                proc.kill()
                exits[name] = None
        try:
            directory.shutdown()
            directory_proc.wait(timeout=_STOP_GRACE_S)
        except (OSError, subprocess.TimeoutExpired):
            directory_proc.kill()
        outcome["node_exits"] = exits
        clean = (not timed_out
                 and all(code == 0 for code in exits.values()))

        # 5. causal checks over the logs the nodes left behind
        result = check_cluster(cluster_dir)
        outcome["check"] = result.to_json()

        # 6. sanitizer verdicts (only when the run asked for them)
        sanitizers_ok = True
        if args.sanitize:
            verdicts: Dict[str, Any] = {}
            for node, node_dir in sorted(node_dirs.items()):
                report_path = node_dir / "sanitizers.json"
                if report_path.is_file():
                    verdicts[node] = json.loads(
                        report_path.read_text(encoding="utf-8"))
                else:
                    verdicts[node] = {"ok": False,
                                      "error": "missing sanitizers.json"}
            outcome["sanitizers"] = verdicts
            sanitizers_ok = all(v.get("ok") for v in verdicts.values())

        if not clean:
            exit_code = 2
        elif not result.ok or not sanitizers_ok:
            exit_code = 1
        else:
            exit_code = 0
        return exit_code
    finally:
        for _, proc, fh in children:
            if proc.poll() is None:
                proc.kill()
            fh.close()
        outcome["exit_code"] = exit_code
        (cluster_dir / "outcome.json").write_text(
            json.dumps(outcome, sort_keys=True, indent=2), encoding="utf-8")
        if args.json:
            print(json.dumps(outcome, sort_keys=True, indent=2))
        else:
            _summarize(outcome)


def _summarize(outcome: Dict[str, Any]) -> None:
    check = outcome.get("check")
    if outcome.get("timed_out"):
        print("net: TIMEOUT waiting for the workload"
              + (f" (crashed: {outcome['crashed']})"
                 if outcome.get("crashed") else ""))
    if outcome.get("node_exits"):
        unclean = {n: c for n, c in outcome["node_exits"].items() if c != 0}
        if unclean:
            print(f"net: unclean node exits: {unclean}")
    sanitizers = outcome.get("sanitizers")
    if sanitizers is not None:
        dirty = {node: report for node, report in sanitizers.items()
                 if not report.get("ok")}
        for node, report in sorted(dirty.items()):
            detail = report.get("error") or (
                f"stalls={len(report.get('stalls', []))}, "
                f"reentrancy={len(report.get('reentrancy', []))}, "
                f"leaks={len(report.get('task_leaks', []))}")
            print(f"net: SANITIZER {node}: {detail}")
        if not dirty:
            print(f"net: sanitizers clean on all {len(sanitizers)} nodes")
    if check is not None:
        for problem in check["problems"]:
            print(f"net: VIOLATION {problem}")
        if check["ok"]:
            pairs = sum(len(s) for s in check["sequences"].values())
            print(f"net: OK — {pairs} visibility events across "
                  f"{len(check['sequences'])} datacenters, all causal "
                  f"checks passed (logs in {outcome['cluster_dir']})")


def _check(args: argparse.Namespace) -> int:
    result = check_cluster(Path(args.cluster_dir))
    print(json.dumps(result.to_json(), sort_keys=True, indent=2))
    return 0 if result.ok else 1


def _spec(args: argparse.Namespace) -> int:
    spec = chain_smoke_spec(args.dcs, poll_cap=args.poll_cap)
    print(json.dumps(spec.to_json(), sort_keys=True, indent=2))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="saturn-repro net",
        description="run Saturn on a real asyncio TCP cluster")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="boot a chain cluster and smoke it")
    run.add_argument("--dcs", type=int, default=3,
                     help="number of datacenters in the chain (default 3)")
    run.add_argument("--cluster-dir", default="net-cluster",
                     help="directory for configs, logs, and state")
    run.add_argument("--timeout", type=float, default=60.0,
                     help="workload deadline in seconds (default 60)")
    run.add_argument("--poll-cap", type=int, default=2000,
                     help="max re-reads per client poll step")
    run.add_argument("--sanitize", action="store_true",
                     help="enable runtime sanitizers on every node "
                          "(stall watchdog, reentrancy check, task-leak "
                          "check); violations fail the run")
    run.add_argument("--stall-ms", type=float, default=250.0,
                     help="event-loop stall threshold in ms "
                          "(default 250)")
    run.add_argument("--json", action="store_true",
                     help="print the outcome as JSON")
    run.set_defaults(func=_run)

    check = sub.add_parser("check", help="re-check an existing cluster dir")
    check.add_argument("--cluster-dir", default="net-cluster")
    check.set_defaults(func=_check)

    spec = sub.add_parser("spec", help="print the smoke spec as JSON")
    spec.add_argument("--dcs", type=int, default=3)
    spec.add_argument("--poll-cap", type=int, default=2000)
    spec.set_defaults(func=_spec)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
