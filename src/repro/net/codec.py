"""Wire codec: frozen message dataclasses <-> length-prefixed JSON frames.

Every message that can cross a process boundary is *registered* here by
class name; the registrations at the bottom of this module are the
machine-checked mirror of ``arch_contract.toml``'s wire vocabulary
(``codec_modules`` + audit rule ARCH205: a message with a receive handler
but no ``register(...)`` call — or vice versa — is an audit finding).

Encoding is canonical tagged JSON, so frames are byte-deterministic:

* scalars (``None``/``bool``/``int``/``float``/``str``) encode as-is;
* ``tuple``     -> ``{"__t": [items...]}``;
* ``frozenset`` -> ``{"__fs": [items...]}`` sorted by canonical encoding;
* enum member   -> ``{"__e": ["EnumName", value]}``;
* registered dataclass -> ``{"__d": ["ClassName", {field: value, ...}]}``.

Top-level JSON uses sorted keys, minimal separators, and
``allow_nan=False`` (NaN timestamps must fail loudly, not travel).  A
frame is a 4-byte big-endian length followed by the JSON body
``{"dst": ..., "msg": ..., "src": ...}`` — see DESIGN.md §10.

Mutable containers (list/dict/set) are rejected by design: they are not
wire-safe (ARCH203) and accepting them here would hide aliasing bugs the
simulator's by-reference delivery already masks.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import struct
from typing import Any, Dict, Tuple, Type

from repro.baselines.base import BaselinePayload
from repro.baselines.eunomia import EunomiaBatch, EunomiaTick
from repro.baselines.explicit import DepContext, ExplicitPayload
from repro.baselines.okapi import OkapiStabMsg
from repro.core.label import Label, LabelType
from repro.datacenter.messages import (AttachOk, BulkHeartbeat, ClientAttach,
                                       ClientMigrate, ClientRead,
                                       ClientUpdate, LabelBatch, LabelCredit,
                                       MigrateReply, Ping, Pong, ReadReply,
                                       RemotePayload, SerializerBeacon,
                                       StabilizationMsg, UpdateReply)

__all__ = [
    "CodecError", "register", "registered_messages",
    "encode_value", "decode_value", "encode_message", "decode_message",
    "encode_frame", "decode_frame_body", "FRAME_HEADER",
]

#: frame header: 4-byte big-endian body length
FRAME_HEADER = struct.Struct(">I")

#: refuse absurd frames before allocating for them (a smoke cluster's
#: largest message is a LabelBatch of a few dozen labels, well under 1 MiB)
MAX_FRAME_BYTES = 16 * 1024 * 1024


class CodecError(ValueError):
    """Raised for unregistered types, malformed frames, or unsafe values."""


_DATACLASSES: Dict[str, Type] = {}
_ENUMS: Dict[str, Type] = {}


def register(cls: Type) -> Type:
    """Register *cls* (frozen dataclass or Enum) under its class name.

    Kept as one explicit top-level call per type — never a loop — so the
    architecture audit (ARCH205) can enumerate the registrations
    statically and diff them against the handler-dispatched messages.
    """
    name = cls.__name__
    if name in _DATACLASSES or name in _ENUMS:
        raise CodecError(f"duplicate codec registration for {name!r}")
    if isinstance(cls, type) and issubclass(cls, enum.Enum):
        _ENUMS[name] = cls
    elif dataclasses.is_dataclass(cls):
        _DATACLASSES[name] = cls
    else:
        raise CodecError(f"{name!r} is neither a dataclass nor an Enum")
    return cls


def registered_messages() -> Dict[str, Type]:
    """Registered dataclass types by name (a copy; enums excluded)."""
    return dict(_DATACLASSES)


# -- value encoding ----------------------------------------------------------

def encode_value(value: Any) -> Any:
    """Lower *value* to tagged JSON-compatible data."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise CodecError(f"non-finite float on the wire: {value!r}")
        return value
    if isinstance(value, tuple):
        return {"__t": [encode_value(v) for v in value]}
    if isinstance(value, frozenset):
        items = [encode_value(v) for v in value]
        items.sort(key=lambda item: json.dumps(item, sort_keys=True))
        return {"__fs": items}
    if isinstance(value, enum.Enum):
        name = type(value).__name__
        if name not in _ENUMS:
            raise CodecError(f"unregistered enum {name!r}")
        return {"__e": [name, value.value]}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        if name not in _DATACLASSES:
            raise CodecError(f"unregistered message type {name!r}")
        fields = {f.name: encode_value(getattr(value, f.name))
                  for f in dataclasses.fields(value)}
        return {"__d": [name, fields]}
    raise CodecError(
        f"value of type {type(value).__name__!r} is not wire-safe "
        "(plain data only; lists/dicts/sets are rejected by design)")


def decode_value(data: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if data is None or isinstance(data, (bool, int, float, str)):
        return data
    if isinstance(data, dict):
        if len(data) != 1:
            raise CodecError(f"malformed tagged value: {data!r}")
        tag, payload = next(iter(data.items()))
        if tag == "__t":
            return tuple(decode_value(v) for v in payload)
        if tag == "__fs":
            return frozenset(decode_value(v) for v in payload)
        if tag == "__e":
            name, member = payload
            cls = _ENUMS.get(name)
            if cls is None:
                raise CodecError(f"unregistered enum {name!r}")
            return cls(member)
        if tag == "__d":
            name, fields = payload
            cls = _DATACLASSES.get(name)
            if cls is None:
                raise CodecError(f"unregistered message type {name!r}")
            return cls(**{key: decode_value(v) for key, v in fields.items()})
        raise CodecError(f"unknown codec tag {tag!r}")
    if isinstance(data, list):
        raise CodecError("bare JSON array is not a wire value (tuples "
                         "travel tagged)")
    raise CodecError(f"undecodable wire value: {data!r}")


# -- message and frame encoding ---------------------------------------------

def _canonical(data: Any) -> bytes:
    return json.dumps(data, sort_keys=True, separators=(",", ":"),
                      allow_nan=False).encode("utf-8")


def encode_message(message: Any) -> bytes:
    """Canonical bytes of one message (no frame header)."""
    return _canonical(encode_value(message))


def decode_message(data: bytes) -> Any:
    try:
        parsed = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"malformed message body: {exc}") from None
    return decode_value(parsed)


def encode_frame(src: str, dst: str, message: Any) -> bytes:
    """One addressed frame: 4-byte length + canonical JSON body."""
    body = _canonical(
        {"src": src, "dst": dst, "msg": encode_value(message)})
    if len(body) > MAX_FRAME_BYTES:
        raise CodecError(f"frame body of {len(body)} bytes exceeds the "
                         f"{MAX_FRAME_BYTES}-byte ceiling")
    return FRAME_HEADER.pack(len(body)) + body


def decode_frame_body(body: bytes) -> Tuple[str, str, Any]:
    """Decode a frame body (header already stripped) -> (src, dst, msg)."""
    try:
        parsed = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"malformed frame body: {exc}") from None
    if not isinstance(parsed, dict) or set(parsed) != {"src", "dst", "msg"}:
        raise CodecError(f"malformed frame envelope: {body[:80]!r}")
    return parsed["src"], parsed["dst"], decode_value(parsed["msg"])


# -- wire vocabulary ---------------------------------------------------------
# Value types riding inside message fields:
register(Label)
register(LabelType)
register(DepContext)
# client <-> datacenter:
register(ClientAttach)
register(ClientRead)
register(ClientUpdate)
register(ClientMigrate)
register(AttachOk)
register(ReadReply)
register(UpdateReply)
register(MigrateReply)
# datacenter <-> datacenter (bulk-data transfer):
register(RemotePayload)
register(BulkHeartbeat)
# datacenter <-> Saturn:
register(LabelBatch)
register(LabelCredit)
register(SerializerBeacon)
register(Ping)
register(Pong)
# stabilization baselines:
register(StabilizationMsg)
register(BaselinePayload)
register(ExplicitPayload)
register(EunomiaTick)
register(EunomiaBatch)
register(OkapiStabMsg)
