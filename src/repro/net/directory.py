"""Node-directory service: discovery and lifecycle for a real cluster.

The shape mirrors the tahoe-lafs introducer: one tiny long-lived server
every node knows the address of; nodes *register* their listen address
and hosted process names, *poll* the directory until the expected roster
is complete, then heartbeat *status* reports.  The driver reads
*snapshots* and flips the cluster-wide *phase* (``boot`` -> ``run`` ->
``stop``); nodes observe the phase piggybacked on every reply and shut
down gracefully when it reads ``stop``.

Protocol: newline-delimited JSON over TCP, one request and one reply per
connection (stateless, so a crashed client never wedges the server).
Requests are ``{"op": ...}`` objects:

======== ============================================= =================
op       request fields                                reply fields
======== ============================================= =================
register node, host, port, processes                   ok, phase
lookup   —                                             ok, phase, nodes,
                                                       complete
status   node, report                                  ok, phase
phase    phase                                         ok
snapshot —                                             ok, state
shutdown —                                             ok
======== ============================================= =================

Every state mutation is dumped to ``--state-file`` (JSON, sorted keys);
the net-smoke CI job uploads that file as an artifact on failure.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import socket
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = ["DirectoryServer", "DirectoryClient", "request_async", "main"]


class DirectoryServer:
    """In-memory cluster roster with a JSON-line TCP front end."""

    def __init__(self, expected: List[str], host: str = "127.0.0.1",
                 state_path: Optional[Path] = None) -> None:
        self.expected = sorted(expected)
        self.host = host
        self.port: Optional[int] = None
        self.state_path = state_path
        self.phase = "boot"
        self.nodes: Dict[str, Dict[str, Any]] = {}
        self.reports: Dict[str, Dict[str, Any]] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown = asyncio.Event()

    # -- state -------------------------------------------------------------

    def _complete(self) -> bool:
        return set(self.expected) <= set(self.nodes)

    def state(self) -> Dict[str, Any]:
        return {
            "phase": self.phase,
            "expected": self.expected,
            "nodes": self.nodes,
            "reports": self.reports,
            "complete": self._complete(),
        }

    def _persist(self) -> None:
        if self.state_path is not None:
            self.state_path.write_text(
                json.dumps(self.state(), sort_keys=True, indent=2),
                encoding="utf-8")

    # -- request handling --------------------------------------------------

    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        if op == "register":
            node = request["node"]
            self.nodes[node] = {
                "host": request["host"],
                "port": int(request["port"]),
                "processes": list(request.get("processes", [])),
            }
            if self.phase == "boot" and self._complete():
                self.phase = "run"
            self._persist()
            return {"ok": True, "phase": self.phase}
        if op == "lookup":
            return {"ok": True, "phase": self.phase, "nodes": self.nodes,
                    "complete": self._complete()}
        if op == "status":
            self.reports[request["node"]] = request.get("report", {})
            self._persist()
            return {"ok": True, "phase": self.phase}
        if op == "phase":
            phase = request["phase"]
            if phase not in ("boot", "run", "stop"):
                return {"ok": False, "error": f"unknown phase {phase!r}"}
            self.phase = phase
            self._persist()
            return {"ok": True, "phase": self.phase}
        if op == "snapshot":
            return {"ok": True, "state": self.state()}
        if op == "shutdown":
            self._shutdown.set()
            return {"ok": True}
        return {"ok": False, "error": f"unknown op {op!r}"}

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            line = await reader.readline()
            if not line:
                return
            try:
                request = json.loads(line.decode("utf-8"))
                reply = self.handle(request)
            except (ValueError, KeyError, TypeError) as exc:
                reply = {"ok": False, "error": str(exc)}
            writer.write(json.dumps(reply, sort_keys=True).encode("utf-8")
                         + b"\n")
            await writer.drain()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()

    # -- lifecycle ---------------------------------------------------------

    async def start(self, port: int = 0) -> int:
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._persist()
        return self.port

    async def serve_until_shutdown(self) -> None:
        await self._shutdown.wait()
        await self.stop()

    async def stop(self) -> None:
        # swap before the await: serve_until_shutdown and an external
        # stop() can race, and both must see either the live server or
        # None — never a closed-but-still-recorded one (CONC003)
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        self._persist()


# -- clients -----------------------------------------------------------------

async def request_async(host: str, port: int,
                        request: Dict[str, Any]) -> Dict[str, Any]:
    """One async request/reply round trip (used inside node runtimes)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(json.dumps(request).encode("utf-8") + b"\n")
        await writer.drain()
        line = await reader.readline()
    finally:
        writer.close()
    if not line:
        raise ConnectionError("directory closed without replying")
    return json.loads(line.decode("utf-8"))


class DirectoryClient:
    """Blocking client (driver and tests; one connection per request)."""

    def __init__(self, host: str, port: int, timeout: float = 5.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        with socket.create_connection((self.host, self.port),
                                      timeout=self.timeout) as conn:
            conn.sendall(json.dumps(request).encode("utf-8") + b"\n")
            chunks = []
            while True:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
                if chunk.endswith(b"\n"):
                    break
        line = b"".join(chunks)
        if not line:
            raise ConnectionError("directory closed without replying")
        return json.loads(line.decode("utf-8"))

    def register(self, node: str, host: str, port: int,
                 processes: List[str]) -> Dict[str, Any]:
        return self.request({"op": "register", "node": node, "host": host,
                             "port": port, "processes": processes})

    def lookup(self) -> Dict[str, Any]:
        return self.request({"op": "lookup"})

    def status(self, node: str, report: Dict[str, Any]) -> Dict[str, Any]:
        return self.request({"op": "status", "node": node, "report": report})

    def set_phase(self, phase: str) -> Dict[str, Any]:
        return self.request({"op": "phase", "phase": phase})

    def snapshot(self) -> Dict[str, Any]:
        return self.request({"op": "snapshot"})

    def shutdown(self) -> Dict[str, Any]:
        return self.request({"op": "shutdown"})


# -- standalone server process ----------------------------------------------

def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net.directory",
        description="node-directory service for a real Saturn cluster")
    parser.add_argument("--port", type=int, default=0,
                        help="listen port (0 = ephemeral)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--expected", default="",
                        help="comma-separated node names the cluster needs")
    parser.add_argument("--state-file", metavar="PATH",
                        help="dump the roster as JSON on every change")
    parser.add_argument("--endpoint-file", metavar="PATH",
                        help="write 'host port' here once bound (the "
                             "driver's readiness handshake)")
    args = parser.parse_args(argv)

    expected = [n for n in args.expected.split(",") if n]
    state_path = Path(args.state_file) if args.state_file else None

    async def _run() -> None:
        server = DirectoryServer(expected, host=args.host,
                                 state_path=state_path)
        port = await server.start(args.port)
        if args.endpoint_file:
            Path(args.endpoint_file).write_text(
                f"{args.host} {port}\n", encoding="utf-8")
        await server.serve_until_shutdown()

    asyncio.run(_run())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
