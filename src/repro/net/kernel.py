"""Realtime kernel: the :class:`~repro.net.transport.Kernel` protocol on
asyncio wall time.

Actors built for the simulator only ever touch the kernel through
``now`` / ``schedule`` / ``schedule_at`` (plus the sanctioned seam
modules ``sim.clock`` and ``sim.cpu``, which themselves reduce to those
three), so this class is all it takes to run a
:class:`~repro.datacenter.datacenter.SaturnDatacenter` or a
:class:`~repro.core.serializer.Serializer` unmodified on real time.

``now`` is *wall-anchored* milliseconds (Unix epoch base advanced by the
monotonic clock): monotonic within a node, comparable across nodes up to
host clock skew — which is exactly the physical-clock model the paper
assumes (§7), so :class:`~repro.sim.clock.PhysicalClock` timestamps
taken on different nodes order sensibly.  ``schedule_at`` with a time
already in the past fires as soon as possible (the sim kernel would
raise; realtime cannot, because the deadline may have passed while a
frame was in flight).
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, Coroutine, Optional

__all__ = ["RealtimeKernel", "RealtimeTimer"]


class RealtimeTimer:
    """Cancellable handle mirroring :class:`repro.sim.engine.Event`."""

    __slots__ = ("_handle", "_cancelled")

    def __init__(self, handle: asyncio.TimerHandle) -> None:
        self._handle = handle
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        self._cancelled = True
        self._handle.cancel()


class RealtimeKernel:
    """Wall-clock scheduler with the simulator's actor-facing surface."""

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None
                 ) -> None:
        self._loop = (loop if loop is not None
                      else asyncio.get_running_loop())
        # wall-anchored monotonic time: epoch base read once, advanced by
        # the monotonic clock so host NTP steps cannot run time backwards
        self._epoch_ms = time.time() * 1000.0  # noqa: SAT001 - realtime kernel: below the determinism boundary
        self._mono_base = time.monotonic()  # noqa: SAT001 - realtime kernel: below the determinism boundary
        #: scheduling counter, mirroring Simulator.last_seq (the sim
        #: Network's delivery-batching guard reads it; nothing realtime
        #: depends on it, but keeping the surface identical lets shared
        #: code hold either kernel)
        self.last_seq = -1
        self.events_executed = 0
        #: optional repro.net.sanitizers.NetSanitizer; when set, every
        #: scheduled callback runs through it (stall watchdog)
        self.sanitizer: Optional[Any] = None
        #: strong refs to spawned tasks (the loop itself keeps only weak
        #: ones); each task removes itself when done so finished tasks do
        #: not accumulate
        self._tasks: set = set()

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        return self._loop

    def create_task(self, coro: Coroutine[Any, Any, Any],
                    name: Optional[str] = None) -> asyncio.Task:
        """Spawn a task on the kernel's loop, retaining a reference so it
        cannot be garbage-collected mid-flight (the CONC002 footgun)."""
        task = self._loop.create_task(coro, name=name)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    @property
    def now(self) -> float:
        """Wall-anchored milliseconds (monotonic within this process)."""
        return self._epoch_ms + (
            time.monotonic() - self._mono_base) * 1000.0  # noqa: SAT001 - realtime kernel: below the determinism boundary

    def schedule(self, delay: float,
                 callback: Callable[[], None]) -> RealtimeTimer:
        """Run *callback* after *delay* ms (>= 0)."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        self.last_seq += 1

        def _fire() -> None:
            self.events_executed += 1
            san = self.sanitizer
            if san is None:
                callback()
            else:
                san.run_callback(callback)

        return RealtimeTimer(self._loop.call_later(delay / 1000.0, _fire))

    def schedule_at(self, when: float,
                    callback: Callable[[], None]) -> RealtimeTimer:
        """Run *callback* at kernel time *when* (ms); past deadlines fire
        as soon as possible."""
        return self.schedule(max(0.0, when - self.now), callback)
