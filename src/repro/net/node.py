"""Node runtime: one OS process hosting a datacenter or a serializer.

``python -m repro.net.node --dir <node-dir>`` reads ``node.json`` (written
by the driver, see :func:`repro.net.spec.write_cluster`), boots a
:class:`~repro.net.kernel.RealtimeKernel` + :class:`~repro.net.tcp.
TcpTransport`, registers with the directory service, waits for the full
roster, then instantiates *the same protocol actors the simulator runs*
— :class:`~repro.datacenter.datacenter.SaturnDatacenter` with its
scripted :class:`~repro.datacenter.client.ClientProcess` load, or a
:class:`~repro.core.serializer.Serializer` — entirely unmodified.

Lifecycle: register -> roster-complete -> run (status heartbeats to the
directory) -> phase ``stop`` observed -> flush ``visibility.jsonl``,
close sockets, exit 0.  A wall-clock deadline (``deadline_s`` in
node.json) bounds every phase; exceeding it exits 3 so a wedged cluster
can never outlive the driver's timeout.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.naming import dc_process_name
from repro.core.serializer import Serializer
from repro.core.service import SaturnService
from repro.datacenter.client import ClientProcess
from repro.datacenter.datacenter import DatacenterParams, SaturnDatacenter
from repro.net.directory import request_async
from repro.net.kernel import RealtimeKernel
from repro.net.sanitizers import NetSanitizer
from repro.net.spec import ClusterSpec
from repro.net.tcp import TcpTransport
from repro.sim.clock import PhysicalClock
from repro.sim.cpu import CostModel
from repro.workloads.ops import ReadOp, UpdateOp

__all__ = ["NodeRuntime", "NetRecorder", "StaticSaturnView",
           "script_generator", "main"]

#: polling periods (seconds, real time)
_ROSTER_POLL_S = 0.05
_STATUS_PERIOD_S = 0.1


class StaticSaturnView:
    """``dc.saturn`` stand-in for a static epoch-0 tree.

    The full :class:`~repro.core.service.SaturnService` owns serializer
    *construction*, which on a real cluster happens in the serializer
    nodes; a datacenter only ever asks the service where to stream its
    labels, so that one query is all the view answers."""

    def __init__(self, spec: ClusterSpec) -> None:
        self._attachments = dict(spec.attachments)

    def ingress_process(self, dc_name: str, epoch: int) -> Optional[str]:
        serializer = self._attachments.get(dc_name)
        if serializer is None:
            return None
        return SaturnService.serializer_process_name(epoch, serializer)


class NetRecorder:
    """Metrics + execution-log recorder writing canonical JSONL.

    One instance plays both roles a simulated run splits across
    ``MetricsHub`` and ``ExecutionLog``: it satisfies every hook the
    datacenter and client processes call, appending one JSON object per
    event to ``visibility.jsonl`` (the artifact the driver's causal
    checker and the CI job read)."""

    def __init__(self, fh: Any, kernel: RealtimeKernel) -> None:
        # the caller opens the file (before the event loop starts — a
        # sync open() on the async boot path would be a CONC001 stall)
        # and hands ownership over; close() closes it
        self._fh = fh
        self._kernel = kernel
        #: first-occurrence order of (origin, key) pairs visible locally
        self.visible_pairs: List[Tuple[str, str]] = []
        self._seen: set = set()

    def _emit(self, record: Dict[str, Any]) -> None:
        record["at"] = self._kernel.now
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")

    def _mark(self, origin: str, key: str) -> None:
        pair = (origin, key)
        if pair not in self._seen:
            self._seen.add(pair)
            self.visible_pairs.append(pair)

    # -- ExecutionLog surface ---------------------------------------------

    def record_update(self, label, origin_dc: str, created_at: float) -> None:
        self._mark(origin_dc, label.target or "")
        self._emit({"event": "update", "dc": origin_dc,
                    "key": label.target, "origin": origin_dc,
                    "ts": label.ts, "src": label.src,
                    "created_at": created_at})

    def record_visible(self, label, dc: str, at: float) -> None:
        self._mark(label.origin_dc, label.target or "")
        self._emit({"event": "visible", "dc": dc, "key": label.target,
                    "origin": label.origin_dc, "ts": label.ts,
                    "src": label.src})

    def record_read(self, client_id: str, dc: str, key: str,
                    returned, observed_max) -> None:
        self._emit({"event": "read", "client": client_id, "dc": dc,
                    "key": key,
                    "version": list(returned) if returned else None})

    def record_update_deps(self, version, deps) -> None:
        self._emit({"event": "deps", "version": list(version),
                    "deps": sorted(list(dep) for dep in deps)})

    # -- metrics surface ---------------------------------------------------

    def record_visibility(self, origin: str, dest: str,
                          latency: float) -> None:
        self._emit({"event": "latency", "origin": origin, "dest": dest,
                    "ms": latency})

    def record_op(self, kind: str, latency: float, at: float) -> None:
        self._emit({"event": "op", "kind": kind, "ms": latency})

    def close(self) -> None:
        self._fh.close()


def script_generator(script: List[Dict[str, Any]]
                     ) -> Callable[[ClientProcess], object]:
    """Workload callable for one declarative client script.

    Mirrors the model checker's scripted generators: ``update`` and
    ``read`` ops issue once; ``poll`` re-reads its key until a version is
    observed (bounded by ``cap`` so a broken cluster still terminates)."""
    steps = list(script)
    state = {"index": 0, "reads": 0}

    def generator(client: ClientProcess) -> object:
        while state["index"] < len(steps):
            step = steps[state["index"]]
            op = step["op"]
            if op == "update":
                state["index"] += 1
                return UpdateOp(step["key"], step.get("size", 2))
            if op == "read":
                state["index"] += 1
                return ReadOp(step["key"])
            if op == "poll":
                if (client._observed_max_per_key.get(step["key"]) is None
                        and state["reads"] < step.get("cap", 400)):
                    state["reads"] += 1
                    return ReadOp(step["key"])
                state["index"] += 1
                state["reads"] = 0
                continue
            raise ValueError(f"unknown script op {op!r}")
        return None

    return generator


class NodeRuntime:
    """Boot, run, and gracefully stop one node of a real cluster."""

    def __init__(self, node_dir: Path) -> None:
        self.node_dir = Path(node_dir)
        config = json.loads(
            (self.node_dir / "node.json").read_text(encoding="utf-8"))
        self.config = config
        self.node_name: str = config["node"]
        self.role: str = config["role"]
        self.target: str = config["target"]
        self.processes: List[str] = list(config["processes"])
        self.directory: Tuple[str, int] = (config["directory"][0],
                                           int(config["directory"][1]))
        self.deadline_s: float = float(config.get("deadline_s", 120.0))
        sanitize = config.get("sanitize") or {}
        self.sanitize_enabled: bool = bool(sanitize.get("enabled", False))
        self.stall_ms: float = float(sanitize.get("stall_ms", 250.0))
        self.spec = ClusterSpec.load(
            (self.node_dir / config["spec"]).resolve())
        #: visibility sink, opened here (sync context) so the async boot
        #: path never touches blocking file I/O
        self._visibility_fh: Optional[Any] = None
        if self.role != "serializer":
            self._visibility_fh = open(
                self.node_dir / "visibility.jsonl", "a",
                encoding="utf-8", buffering=1)
        self.kernel: Optional[RealtimeKernel] = None
        self.transport: Optional[TcpTransport] = None
        self.recorder: Optional[NetRecorder] = None
        self.clients: List[ClientProcess] = []
        self.datacenter: Optional[SaturnDatacenter] = None
        self.serializer: Optional[Serializer] = None

    # -- boot --------------------------------------------------------------

    async def _directory_request(self, request: Dict[str, Any]
                                 ) -> Dict[str, Any]:
        host, port = self.directory
        return await request_async(host, port, request)

    async def _register(self, host: str, port: int,
                        deadline: float) -> None:
        while True:
            try:
                await self._directory_request({
                    "op": "register", "node": self.node_name,
                    "host": host, "port": port,
                    "processes": self.processes})
                return
            except OSError:
                if self.kernel.now > deadline:
                    raise TimeoutError("directory never became reachable")
                await asyncio.sleep(_ROSTER_POLL_S)

    async def _await_roster(self, deadline: float) -> Dict[str, Any]:
        while True:
            try:
                reply = await self._directory_request({"op": "lookup"})
                if reply.get("complete"):
                    return reply["nodes"]
            except OSError:
                pass
            if self.kernel.now > deadline:
                raise TimeoutError("cluster roster never completed")
            await asyncio.sleep(_ROSTER_POLL_S)

    def _build_actors(self) -> None:
        spec = self.spec
        replication = spec.replication()
        if self.role == "serializer":
            self.serializer = Serializer(
                self.kernel,
                name=SaturnService.serializer_process_name(0, self.target),
                tree_name=self.target,
                topology=spec.topology(),
                replication=replication,
                delivery_name=dc_process_name,
                peer_process_name=(
                    lambda t: SaturnService.serializer_process_name(0, t)),
                epoch=0,
                chain_length=1,
                local_hop_latency=0.0)
            self.serializer.attach_network(self.transport)
            return
        recorder = NetRecorder(self._visibility_fh, self.kernel)
        self.recorder = recorder
        params = DatacenterParams(
            name=self.target, site=self.target, consistency="saturn",
            **spec.params)
        datacenter = SaturnDatacenter(
            self.kernel, params, replication, CostModel(),
            PhysicalClock(self.kernel), metrics=recorder,
            execution_log=recorder)
        datacenter.attach_network(self.transport)
        datacenter.saturn = StaticSaturnView(spec)
        datacenter.start()
        self.datacenter = datacenter
        for index, client_spec in enumerate(spec.clients_of(self.target)):
            client = ClientProcess(
                self.kernel, client_spec["id"], self.target,
                script_generator(client_spec["script"]),
                metrics=recorder, execution_log=recorder)
            client.attach_network(self.transport)
            # stagger starts (as the harness does) and leave a beat for
            # remote actors to finish booting
            self.kernel.schedule(20.0 + 5.0 * index, client.start)
            self.clients.append(client)

    # -- status ------------------------------------------------------------

    def _report(self) -> Dict[str, Any]:
        if self.role == "serializer":
            return {"role": "serializer",
                    "forwarded": self.serializer.labels_forwarded,
                    "delivered": self.serializer.labels_delivered}
        return {
            "role": "dc",
            "clients_done": all(not c._running for c in self.clients),
            "ops": sum(c.ops_completed for c in self.clients),
            "visible": [list(pair)
                        for pair in self.recorder.visible_pairs],
        }

    # -- lifecycle ---------------------------------------------------------

    async def run(self) -> int:
        self.kernel = RealtimeKernel(asyncio.get_running_loop())
        started = self.kernel.now
        deadline = started + self.deadline_s * 1000.0
        self.transport = TcpTransport(self.kernel, self.node_name)
        sanitizer: Optional[NetSanitizer] = None
        if self.sanitize_enabled:
            sanitizer = NetSanitizer(stall_ms=self.stall_ms)
            self.kernel.sanitizer = sanitizer
            self.transport.sanitizer = sanitizer
            sanitizer.start(self.kernel)
            print(f"[{self.node_name}] sanitizers on "
                  f"(stall_ms={self.stall_ms:g})", flush=True)
        host, port = await self.transport.start()
        print(f"[{self.node_name}] listening on {host}:{port}", flush=True)
        try:
            await self._register(host, port, deadline)
            nodes = await self._await_roster(deadline)
            routes = {process: node
                      for node, info in sorted(nodes.items())
                      for process in info["processes"]}
            addresses = {node: (info["host"], info["port"])
                         for node, info in nodes.items()}
            self.transport.set_routes(routes, addresses)
            self._build_actors()
            print(f"[{self.node_name}] roster complete, actors up",
                  flush=True)
            while True:
                await asyncio.sleep(_STATUS_PERIOD_S)
                if self.kernel.now > deadline:
                    print(f"[{self.node_name}] deadline exceeded",
                          flush=True)
                    return 3
                reply = await self._directory_request({
                    "op": "status", "node": self.node_name,
                    "report": self._report()})
                if reply.get("phase") == "stop":
                    break
            for client in self.clients:
                client.stop()
            # last report so the directory state artifact shows the
            # final visibility picture
            await self._directory_request({
                "op": "status", "node": self.node_name,
                "report": self._report()})
            print(f"[{self.node_name}] stopping cleanly", flush=True)
            return 0
        finally:
            if self.recorder is not None:
                self.recorder.close()
            elif self._visibility_fh is not None:
                self._visibility_fh.close()
            if sanitizer is not None:
                await sanitizer.stop()
            await self.transport.stop()
            if sanitizer is not None:
                # only after every owned task is down is a survivor a leak
                sanitizer.check_task_leaks()
                sanitizer.write(self.node_dir / "sanitizers.json")
                verdict = "clean" if sanitizer.ok else "violations"
                print(f"[{self.node_name}] sanitizers: {verdict} "
                      f"(stalls={len(sanitizer.stalls)}, "
                      f"reentrancy={len(sanitizer.reentrancy)}, "
                      f"leaks={len(sanitizer.task_leaks)})", flush=True)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net.node",
        description="run one node of a real Saturn cluster")
    parser.add_argument("--dir", required=True, metavar="NODE_DIR",
                        help="node config directory (contains node.json)")
    args = parser.parse_args(argv)
    runtime = NodeRuntime(Path(args.dir))
    return asyncio.run(runtime.run())


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
