"""Opt-in runtime sanitizers for the realtime transport path.

The dynamic complement to the static :mod:`repro.analysis.conc` audit:
where the auditor proves properties of the *source*, the sanitizers
watch one *run* and record every violation of the three invariants the
transport's correctness argument leans on:

* **stalls** — a kernel callback (or the loop itself, probed by a
  heartbeat task) held the event loop longer than ``stall_ms``; every
  peer connection and timer on the node froze for that long (the
  runtime shadow of CONC001).
* **reentrancy** — a message was delivered while a ``send`` or another
  delivery was still on the stack, violating PR 7's never-reentrant
  delivery discipline (the sim Network schedules, never calls through).
* **task leaks** — asyncio tasks still alive after the transport's stop
  path finished (the runtime shadow of CONC006).

Enable with ``saturn-repro net run --sanitize``; each node then writes
``sanitizers.json`` next to its log and the driver folds the verdicts
into ``outcome.json``.  Recording is bounded (:data:`_MAX_RECORDS` per
category) so a pathological run cannot eat the node's memory, and
violations are *recorded, not raised* — the sanitizer must never change
the behaviour it observes.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.net.kernel import RealtimeKernel

__all__ = ["NetSanitizer"]

#: per-category cap on recorded violations
_MAX_RECORDS = 200
#: heartbeat period of the loop-lag probe task (seconds)
_PROBE_PERIOD_S = 0.05


def _describe(callback: Callable[[], None]) -> str:
    return getattr(callback, "__qualname__", None) or repr(callback)


class NetSanitizer:
    """Per-node violation recorder; wire into kernel and transport."""

    def __init__(self, stall_ms: float = 250.0) -> None:
        self.stall_ms = float(stall_ms)
        self.stalls: List[Dict[str, Any]] = []
        self.reentrancy: List[Dict[str, Any]] = []
        self.task_leaks: List[str] = []
        self.callbacks_timed = 0
        self.deliveries_checked = 0
        self._send_depth = 0
        self._deliver_depth = 0
        self._probe_task: Optional[asyncio.Task] = None

    # -- recording ---------------------------------------------------------

    def _record(self, bucket: List[Dict[str, Any]],
                entry: Dict[str, Any]) -> None:
        if len(bucket) < _MAX_RECORDS:
            bucket.append(entry)

    # -- stall watchdog (kernel hook) --------------------------------------

    def run_callback(self, callback: Callable[[], None]) -> None:
        """Run a kernel-scheduled callback, timing its hold on the loop."""
        self.callbacks_timed += 1
        before = time.monotonic()  # noqa: SAT001 - sanitizer: observes the realtime path, below the determinism boundary
        try:
            callback()
        finally:
            held_ms = (time.monotonic() - before) * 1000.0  # noqa: SAT001 - sanitizer: observes the realtime path, below the determinism boundary
            if held_ms > self.stall_ms:
                self._record(self.stalls, {
                    "kind": "callback", "held_ms": round(held_ms, 3),
                    "callback": _describe(callback)})

    async def _probe(self) -> None:
        """Detect stalls in code the kernel hook cannot see (awaits in
        node/transport coroutines) by measuring heartbeat lag."""
        while True:
            before = time.monotonic()  # noqa: SAT001 - sanitizer: observes the realtime path, below the determinism boundary
            await asyncio.sleep(_PROBE_PERIOD_S)
            lag_ms = ((time.monotonic() - before)  # noqa: SAT001 - sanitizer: observes the realtime path, below the determinism boundary
                      - _PROBE_PERIOD_S) * 1000.0
            if lag_ms > self.stall_ms:
                self._record(self.stalls, {
                    "kind": "loop-lag", "held_ms": round(lag_ms, 3),
                    "callback": None})

    # -- reentrancy check (transport hook) ---------------------------------

    def enter_send(self) -> None:
        self._send_depth += 1

    def exit_send(self) -> None:
        self._send_depth -= 1

    def deliver(self, process: Any, src: str, message: Any) -> None:
        """Deliver through the sanitizer, asserting the never-reentrant
        invariant: no send or delivery may be on the stack."""
        self.deliveries_checked += 1
        if self._send_depth > 0 or self._deliver_depth > 0:
            self._record(self.reentrancy, {
                "process": getattr(process, "name", repr(process)),
                "src": src,
                "send_depth": self._send_depth,
                "deliver_depth": self._deliver_depth,
                "message": type(message).__name__})
        self._deliver_depth += 1
        try:
            process.deliver(src, message)
        finally:
            self._deliver_depth -= 1

    # -- lifecycle ---------------------------------------------------------

    def start(self, kernel: RealtimeKernel) -> None:
        self._probe_task = kernel.create_task(
            self._probe(), name="sanitizer-probe")

    async def stop(self) -> None:
        # swap before the await so concurrent stops are idempotent
        task, self._probe_task = self._probe_task, None
        if task is None:
            return
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            if not task.cancelled():
                raise  # cancelled *us*, not the probe

    def check_task_leaks(self) -> None:
        """Record tasks still alive; call after the transport's stop path."""
        current = asyncio.current_task()
        leaked = sorted(
            task.get_name() for task in asyncio.all_tasks()
            if task is not current and not task.done())
        for name in leaked[:_MAX_RECORDS]:
            self.task_leaks.append(name)

    # -- report ------------------------------------------------------------

    @property
    def ok(self) -> bool:
        return not (self.stalls or self.reentrancy or self.task_leaks)

    def report(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "stall_ms": self.stall_ms,
            "callbacks_timed": self.callbacks_timed,
            "deliveries_checked": self.deliveries_checked,
            "stalls": list(self.stalls),
            "reentrancy": list(self.reentrancy),
            "task_leaks": list(self.task_leaks),
        }

    def write(self, path: Path) -> None:
        path.write_text(json.dumps(self.report(), indent=2, sort_keys=True)
                        + "\n", encoding="utf-8")
