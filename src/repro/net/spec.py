"""Cluster specification: the JSON contract between driver and nodes.

A :class:`ClusterSpec` is everything a node needs to build its actors —
sites, replication groups, the serializer tree, datacenter parameters,
and the scripted client workloads — serialized to ``spec.json`` in the
cluster directory.  The driver additionally writes one config directory
per node (``<cluster>/<node>/node.json``) pointing at the spec and the
directory service, mirroring the per-node basedirs of tahoe-lafs.

:func:`chain_smoke_spec` builds the N-datacenter chain used by the
``net-smoke`` CI job.  For ``n == 3`` it is, deliberately, the same
scenario as the model checker's ``chain3`` (sites I/F/T, keys ``g0:a``
-> ``g0:b`` -> ``g0:y`` plus the partial-group bait ``g1:p``), so the
sim/TCP equivalence test can compare per-DC visibility sequences
between the two transports directly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Tuple

from repro.core.naming import dc_process_name
from repro.core.replication import ReplicationMap
from repro.core.service import SaturnService
from repro.core.tree import TreeTopology

__all__ = ["ClusterSpec", "chain_smoke_spec", "write_cluster",
           "chain_dependencies"]

#: first sites reuse the mc chain3 names so the scenarios line up
_SITE_NAMES = ("I", "F", "T")

KEY_A, KEY_B, KEY_P = "g0:a", "g0:b", "g1:p"


def _site_name(index: int) -> str:
    return _SITE_NAMES[index] if index < len(_SITE_NAMES) else f"D{index}"


def _chain_key(index: int) -> str:
    """Key written by relay *index* (1-based); ``g0:y`` matches chain3."""
    return "g0:y" if index == 1 else f"g0:y{index}"


@dataclass
class ClusterSpec:
    """A deployable cluster: topology, replication, workload scripts."""

    name: str
    sites: List[str]
    groups: Dict[str, List[str]]
    serializer_sites: Dict[str, str]
    edges: List[Tuple[str, str]]
    attachments: Dict[str, str]
    #: client scripts: {"id", "dc", "script": [op...]} where an op is
    #: {"op": "update", "key", "size"} | {"op": "read", "key"} |
    #: {"op": "poll", "key", "cap"}
    clients: List[Dict[str, Any]]
    #: DatacenterParams overrides (periods are real milliseconds here)
    params: Dict[str, Any] = field(default_factory=dict)

    # -- derived views -----------------------------------------------------

    def topology(self) -> TreeTopology:
        return TreeTopology(
            serializer_sites=dict(self.serializer_sites),
            edges=[tuple(edge) for edge in self.edges],
            attachments=dict(self.attachments))

    def replication(self) -> ReplicationMap:
        replication = ReplicationMap(list(self.sites))
        for group, replicas in sorted(self.groups.items()):
            replication.set_group(group, replicas)
        return replication

    def clients_of(self, dc: str) -> List[Dict[str, Any]]:
        return [client for client in self.clients if client["dc"] == dc]

    def nodes(self) -> Dict[str, Dict[str, Any]]:
        """node name -> {"role", "target", "processes"} for the roster."""
        roster: Dict[str, Dict[str, Any]] = {}
        for site in self.sites:
            processes = [dc_process_name(site)] + [
                f"client:{client['id']}" for client in self.clients_of(site)]
            roster[f"dc-{site}"] = {
                "role": "dc", "target": site, "processes": processes}
        for tree_name in sorted(self.serializer_sites):
            roster[f"ser-{tree_name}"] = {
                "role": "serializer", "target": tree_name,
                "processes": [
                    SaturnService.serializer_process_name(0, tree_name)]}
        return roster

    def scripted_updates(self) -> List[Tuple[str, str]]:
        """(origin dc, key) of every scripted update, in script order."""
        updates = []
        for client in self.clients:
            for op in client["script"]:
                if op["op"] == "update":
                    updates.append((client["dc"], op["key"]))
        return updates

    # -- JSON --------------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "sites": list(self.sites),
            "groups": {g: list(r) for g, r in self.groups.items()},
            "serializer_sites": dict(self.serializer_sites),
            "edges": [list(edge) for edge in self.edges],
            "attachments": dict(self.attachments),
            "clients": self.clients,
            "params": self.params,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ClusterSpec":
        return cls(
            name=data["name"],
            sites=list(data["sites"]),
            groups={g: list(r) for g, r in data["groups"].items()},
            serializer_sites=dict(data["serializer_sites"]),
            edges=[(a, b) for a, b in data["edges"]],
            attachments=dict(data["attachments"]),
            clients=list(data["clients"]),
            params=dict(data.get("params", {})))

    @classmethod
    def load(cls, path: Path) -> "ClusterSpec":
        return cls.from_json(json.loads(path.read_text(encoding="utf-8")))

    def save(self, path: Path) -> None:
        path.write_text(json.dumps(self.to_json(), sort_keys=True, indent=2),
                        encoding="utf-8")


def chain_smoke_spec(num_dcs: int = 3, poll_cap: int = 400) -> ClusterSpec:
    """The N-DC chain smoke cluster (>= 2 datacenters).

    ``g0`` is fully replicated, ``g1`` lives on the first two sites only
    (the genuine-partial-replication bait); a causal chain of writes
    crosses every datacenter: writer (site 0) -> relays (middle sites)
    -> reader (last site), each relay waiting for its predecessor's key.
    """
    if num_dcs < 2:
        raise ValueError("chain needs at least 2 datacenters")
    sites = [_site_name(i) for i in range(num_dcs)]
    serializers = {f"s{site}": site for site in sites}
    site_of = {site: f"s{site}" for site in sites}
    edges = [(site_of[a], site_of[b]) for a, b in zip(sites, sites[1:])]

    clients: List[Dict[str, Any]] = [{
        "id": f"writer-{sites[0]}", "dc": sites[0],
        "script": [
            {"op": "update", "key": KEY_A, "size": 2},
            {"op": "update", "key": KEY_B, "size": 2},
            {"op": "update", "key": KEY_P, "size": 2},
        ],
    }]
    prev_key = KEY_B
    for index in range(1, num_dcs - 1):
        key = _chain_key(index)
        clients.append({
            "id": f"relay-{sites[index]}", "dc": sites[index],
            "script": [
                {"op": "poll", "key": prev_key, "cap": poll_cap},
                {"op": "update", "key": key, "size": 2},
            ],
        })
        prev_key = key
    clients.append({
        "id": f"reader-{sites[-1]}", "dc": sites[-1],
        "script": [
            {"op": "poll", "key": prev_key, "cap": poll_cap},
            {"op": "read", "key": KEY_A},
        ],
    })

    return ClusterSpec(
        name=f"chain{num_dcs}",
        sites=sites,
        groups={"g0": list(sites), "g1": list(sites[:2])},
        serializer_sites=serializers,
        edges=edges,
        attachments=dict(site_of),
        clients=clients,
        params={
            "num_partitions": 2,
            "sink_batch_period": 5.0,
            "sink_heartbeat_period": 25.0,
            "bulk_heartbeat_period": 20.0,
        })


def chain_dependencies(spec: ClusterSpec) -> List[Tuple[str, str]]:
    """Causal (dep_key, key) edges implied by the scripts.

    Same-client session order links consecutive updates; a poll followed
    by an update links the awaited key to the write (the relay pattern).
    """
    edges: List[Tuple[str, str]] = []
    for client in spec.clients:
        pending_deps: List[str] = []
        for op in client["script"]:
            if op["op"] == "poll":
                pending_deps.append(op["key"])
            elif op["op"] == "update":
                for dep in pending_deps:
                    edges.append((dep, op["key"]))
                pending_deps = [op["key"]]
    return edges


def write_cluster(spec: ClusterSpec, cluster_dir: Path,
                  directory_host: str, directory_port: int,
                  deadline_s: float = 120.0, sanitize: bool = False,
                  stall_ms: float = 250.0) -> Dict[str, Path]:
    """Write ``spec.json`` + per-node config dirs; returns node -> dir."""
    cluster_dir.mkdir(parents=True, exist_ok=True)
    spec.save(cluster_dir / "spec.json")
    node_dirs: Dict[str, Path] = {}
    for node, info in sorted(spec.nodes().items()):
        node_dir = cluster_dir / node
        node_dir.mkdir(exist_ok=True)
        config = {
            "node": node,
            "role": info["role"],
            "target": info["target"],
            "processes": info["processes"],
            "directory": [directory_host, directory_port],
            "spec": "../spec.json",
            "deadline_s": deadline_s,
            "sanitize": {"enabled": sanitize, "stall_ms": stall_ms},
        }
        (node_dir / "node.json").write_text(
            json.dumps(config, sort_keys=True, indent=2), encoding="utf-8")
        node_dirs[node] = node_dir
    return node_dirs
