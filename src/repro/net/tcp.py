"""Asyncio TCP implementation of the :class:`~repro.net.transport.Transport`
protocol.

One :class:`TcpTransport` serves one OS process (a *node*) hosting one or
more actors.  Addressing is two-level: actor process names (the same
names the simulator uses — ``dc:I``, ``ser:e0:sI``, ``client:writer-I``)
map to *nodes*, nodes map to listen addresses; both maps come from the
directory service at boot (:meth:`set_routes`).

FIFO guarantee: all frames to a given remote node travel on one
persistent connection, written by one writer task in enqueue order —
TCP then preserves per-link order end-to-end, which is stronger than the
per-(src, dst) FIFO the protocol needs.  Local destinations skip the
socket and are delivered through the kernel with the same
asynchronous-delivery discipline (never re-entrantly inside ``send``).

Frames for a local destination that has not registered yet (actors boot
in arbitrary order across nodes) are buffered and flushed on
:meth:`register`.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.net import codec
from repro.net.kernel import RealtimeKernel

__all__ = ["TcpTransport"]

log = logging.getLogger("repro.net.tcp")

#: reconnect schedule for a peer whose node is not accepting yet:
#: exponential backoff from base, capped (seconds)
_CONNECT_RETRY_BASE_S = 0.05
_CONNECT_RETRY_CAP_S = 0.5
_CONNECT_ATTEMPTS = 30
#: log a warning every N failed attempts so a dead peer is visible in
#: the node log long before the final OSError
_CONNECT_LOG_EVERY = 5


def _backoff_schedule() -> Iterator[float]:
    """Capped exponential backoff delays: 0.05, 0.1, 0.2, ..., cap."""
    delay = _CONNECT_RETRY_BASE_S
    while True:
        yield delay
        delay = min(delay * 2.0, _CONNECT_RETRY_CAP_S)


class _Peer:
    """One persistent outbound connection to a remote node."""

    def __init__(self, transport: "TcpTransport", node: str,
                 host: str, port: int) -> None:
        self.node = node
        self.host = host
        self.port = port
        self._transport = transport
        self._queue: asyncio.Queue = asyncio.Queue()
        self._task = transport.kernel.create_task(
            self._run(), name=f"peer:{node}")

    def enqueue(self, frame: bytes) -> None:
        self._queue.put_nowait(frame)

    async def _connect(self) -> asyncio.StreamWriter:
        """Dial the peer with capped exponential backoff."""
        backoff = _backoff_schedule()
        last_error: Optional[OSError] = None
        for attempt in range(1, _CONNECT_ATTEMPTS + 1):
            try:
                _, writer = await asyncio.open_connection(
                    self.host, self.port)
                if attempt > 1:
                    log.info("peer %s (%s:%s) accepted on attempt %d",
                             self.node, self.host, self.port, attempt)
                return writer
            except OSError as exc:
                last_error = exc
                if attempt % _CONNECT_LOG_EVERY == 0:
                    log.warning(
                        "peer %s (%s:%s) still unreachable after %d "
                        "attempts: %s", self.node, self.host, self.port,
                        attempt, exc)
                await asyncio.sleep(next(backoff))
        raise OSError(
            f"peer node {self.node!r} at {self.host}:{self.port} never "
            f"accepted a connection ({_CONNECT_ATTEMPTS} attempts; last "
            f"error: {last_error})")

    async def _run(self) -> None:
        writer = None
        try:
            writer = await self._connect()
            while True:
                frame = await self._queue.get()
                writer.write(frame)
                if self._queue.empty():
                    await writer.drain()
        except (OSError, ConnectionError) as exc:
            log.error("peer %s (%s:%s) failed: %s",
                      self.node, self.host, self.port, exc)
            self._transport.peer_errors += 1
        finally:
            # CancelledError (the normal close path) propagates through
            # here untouched — swallowing it would break shutdown (CONC005)
            if writer is not None:
                writer.close()

    async def close(self) -> None:
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            if not self._task.cancelled():
                raise  # cancelled *us*, not the writer task


class TcpTransport:
    """Length-prefixed-frame message fabric for one node's actors."""

    def __init__(self, kernel: RealtimeKernel, node_name: str,
                 host: str = "127.0.0.1") -> None:
        self.kernel = kernel
        self.node_name = node_name
        self.host = host
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._local: Dict[str, Any] = {}
        #: frames for local actors that have not registered yet
        self._pending: Dict[str, List[Tuple[str, Any]]] = {}
        self._routes: Dict[str, str] = {}            # process -> node
        self._addresses: Dict[str, Tuple[str, int]] = {}  # node -> addr
        self._peers: Dict[str, _Peer] = {}
        self._sites: Dict[str, str] = {}
        #: inbound connection-handler tasks; asyncio's Server.wait_closed
        #: does not cancel handlers, so stop() must (CONC006 by hand)
        self._conn_tasks: Set[asyncio.Task] = set()
        #: optional repro.net.sanitizers.NetSanitizer (reentrancy check)
        self.sanitizer: Optional[Any] = None
        self.messages_sent = 0
        self.bytes_sent = 0
        self.frames_received = 0
        self.peer_errors = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self, port: int = 0) -> Tuple[str, int]:
        """Bind the listening socket; returns (host, port)."""
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def stop(self) -> None:
        # swap state out before the first await so a concurrent stop()
        # sees empty maps instead of half-torn-down ones (CONC003)
        peers, self._peers = dict(self._peers), {}
        server, self._server = self._server, None
        conn_tasks, self._conn_tasks = set(self._conn_tasks), set()
        for _, peer in sorted(peers.items()):
            await peer.close()
        if server is not None:
            server.close()
            await server.wait_closed()
        for task in conn_tasks:
            task.cancel()
        if conn_tasks:
            await asyncio.gather(*conn_tasks, return_exceptions=True)

    # -- Transport protocol ------------------------------------------------

    def register(self, process: Any) -> None:
        name = process.name
        if name in self._local:
            raise ValueError(f"duplicate process name {name!r}")
        self._local[name] = process
        for src, message in self._pending.pop(name, []):
            self._deliver_soon(process, src, message)

    def place(self, process_name: str, site: str) -> None:
        """Record the site for parity with the sim Network (no latency
        model on a real network — the wire provides its own)."""
        self._sites[process_name] = site

    def send(self, src: str, dst: str, message: Any,
             size_bytes: int = 0) -> None:
        san = self.sanitizer
        if san is not None:
            san.enter_send()
        try:
            self.messages_sent += 1
            local = self._local.get(dst)
            if local is not None:
                self._deliver_soon(local, src, message)
                return
            node = self._routes.get(dst)
            if node is None:
                raise KeyError(f"unknown destination process {dst!r}")
            frame = codec.encode_frame(src, dst, message)
            self.bytes_sent += len(frame)
            self._peer_for(node).enqueue(frame)
        finally:
            if san is not None:
                san.exit_send()

    # -- routing -----------------------------------------------------------

    def set_routes(self, process_to_node: Dict[str, str],
                   node_addresses: Dict[str, Tuple[str, int]]) -> None:
        """Install the directory's view of the cluster (additively)."""
        for process, node in process_to_node.items():
            if node != self.node_name:
                self._routes[process] = node
        for node, (host, port) in node_addresses.items():
            self._addresses[node] = (host, int(port))

    def _peer_for(self, node: str) -> _Peer:
        peer = self._peers.get(node)
        if peer is None:
            try:
                host, port = self._addresses[node]
            except KeyError:
                raise KeyError(f"no address for node {node!r}") from None
            peer = _Peer(self, node, host, port)
            self._peers[node] = peer
        return peer

    # -- delivery ----------------------------------------------------------

    def _deliver_soon(self, process: Any, src: str, message: Any) -> None:
        # via the kernel, not a direct call: delivery must never re-enter
        # the sender's stack (same discipline as the sim Network)
        san = self.sanitizer
        if san is None:
            self.kernel.schedule(
                0.0, lambda: process.deliver(src, message))
        else:
            self.kernel.schedule(
                0.0, lambda: san.deliver(process, src, message))

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                header = await reader.readexactly(codec.FRAME_HEADER.size)
                (length,) = codec.FRAME_HEADER.unpack(header)
                if length > codec.MAX_FRAME_BYTES:
                    raise codec.CodecError(
                        f"inbound frame of {length} bytes exceeds ceiling")
                body = await reader.readexactly(length)
                src, dst, message = codec.decode_frame_body(body)
                self.frames_received += 1
                process = self._local.get(dst)
                if process is not None:
                    self._deliver_soon(process, src, message)
                else:
                    # actor not constructed yet (cross-node boot race)
                    self._pending.setdefault(dst, []).append((src, message))
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass  # peer closed; normal at shutdown
        except codec.CodecError as exc:
            log.error("dropping connection on codec error: %s", exc)
            self.peer_errors += 1
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
