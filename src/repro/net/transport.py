"""The Transport seam (ROADMAP item 1).

Protocol actors never name a concrete network class: ``Process.send``
goes through whatever ``attach_network`` handed the actor, and the only
calls that object must answer are the three below.  The interface is a
:class:`typing.Protocol` (structural typing) so the deterministic
:class:`~repro.sim.network.Network` conforms *without* the kernel
importing upward into this package — conformance of both implementations
is pinned by ``tests/net/test_transport_protocol.py``.

Likewise :class:`Kernel` is the structural slice of
:class:`~repro.sim.engine.Simulator` that actors and the sanctioned seam
modules (``sim.clock``, ``sim.cpu``) actually use; the realtime
implementation is :class:`~repro.net.kernel.RealtimeKernel`.

The determinism boundary runs exactly here: everything *above* a
transport (serializers, sinks, proxies, gears, clients) is audited
sim-pure (ARCH101) and behaves identically on either side; everything
below is allowed to read wall clocks and touch sockets.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable

__all__ = ["Transport", "Kernel", "TimerHandle"]


@runtime_checkable
class TimerHandle(Protocol):
    """A cancellable timer returned by :meth:`Kernel.schedule`."""

    def cancel(self) -> None: ...


@runtime_checkable
class Transport(Protocol):
    """Message fabric between named actors.

    Implementations must preserve per-link FIFO order: two messages sent
    from the same ``src`` to the same ``dst`` are delivered in send
    order (Saturn's serializer-tree channels require it, §5.3 of the
    paper).  Delivery invokes ``process.deliver(src, message)``
    asynchronously — never re-entrantly inside :meth:`send`.
    """

    def register(self, process: Any) -> None:
        """Make *process* addressable under ``process.name``."""
        ...

    def place(self, process_name: str, site: str) -> None:
        """Associate a process with a geographic site (latency hint;
        real transports may ignore it)."""
        ...

    def send(self, src: str, dst: str, message: Any,
             size_bytes: int = 0) -> None:
        """Queue *message* for FIFO delivery from *src* to *dst*."""
        ...


@runtime_checkable
class Kernel(Protocol):
    """The scheduler slice actors use (via ``Process.set_timer/every``).

    ``now`` is milliseconds on some monotonic clock: simulated time on
    the sim kernel, wall-anchored time on the realtime kernel (so
    :class:`~repro.sim.clock.PhysicalClock` timestamps stay comparable
    across nodes).
    """

    @property
    def now(self) -> float: ...

    def schedule(self, delay: float,
                 callback: Callable[[], None]) -> TimerHandle: ...

    def schedule_at(self, time: float,
                    callback: Callable[[], None]) -> TimerHandle: ...
