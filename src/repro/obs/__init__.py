"""repro.obs: simulation-native observability.

One :class:`ObsHub` per run bundles the three pieces:

* :class:`~repro.obs.metrics.MetricsRegistry` — counters / gauges /
  histograms keyed by component, windowed over simulated time;
* :class:`~repro.obs.trace.LabelTracer` — per-label lifecycle event
  chains plus cluster annotations (epoch changes, failover transitions,
  degraded-mode drains);
* :class:`NetworkTap` — a passive :attr:`repro.sim.network.Network.trace`
  consumer feeding message/batch counters (only attached where a trace is
  already installed, so it never changes delivery batching or event
  order).

Everything is opt-in: the instrumented components hold ``self.obs = None``
and guard every hook with one attribute test, so a run without a hub pays
a single ``is not None`` check per instrumented code path.  With a hub
attached nothing about the simulation changes either — the tracer
schedules no events and perturbs no channels — which is why a traced run
produces the same :class:`~repro.analysis.runtime.HazardMonitor` digest as
an untraced one, and why double runs export bit-identical traces.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.datacenter.messages import LabelBatch
from repro.obs.export import (SCHEMA, export_chrome, export_jsonl,
                              trace_digest)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import LabelTracer, Span, TraceEvent, chain_problems

__all__ = ["ObsHub", "NetworkTap", "LabelTracer", "MetricsRegistry",
           "TraceEvent", "Span", "SCHEMA", "chain_problems",
           "attach_tracer", "export_jsonl", "export_chrome", "trace_digest"]


class NetworkTap:
    """Non-primary network-trace consumer: traffic counters only.

    Implements the :attr:`~repro.sim.network.Network.trace` protocol so it
    can ride a :class:`~repro.analysis.mc.oracles.TraceTee` behind the
    HazardMonitor.  It is never installed as the *only* trace by the
    harness, because installing a trace disables same-destination delivery
    batching and would change the event order of an untraced run.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry

    def on_send(self, src: str, dst: str, message: Any,
                arrival: float) -> None:
        registry = self.registry
        registry.counter("network", "messages").inc(at=arrival)
        if isinstance(message, LabelBatch):
            registry.counter("network", "label_batches").inc(at=arrival)
            registry.counter("network", "labels").inc(len(message.labels),
                                                      at=arrival)
            registry.histogram("network", "batch_size").observe(
                len(message.labels), at=arrival)

    def on_deliver(self, src: str, dst: str, seq: int, message: Any) -> None:
        pass

    def on_drop(self, src: str, dst: str, message: Any) -> None:
        self.registry.counter("network", "drops").inc()


class ObsHub:
    """Per-run bundle of registry + tracer + network tap."""

    def __init__(self, sim, network=None, window: float = 50.0) -> None:
        self.sim = sim
        self.network = network
        self.registry = MetricsRegistry(window=window)
        self.tracer = LabelTracer(registry=self.registry)
        self.net_tap = NetworkTap(self.registry)

    def sample_kernel(self) -> None:
        """Snapshot end-of-run kernel/network gauges."""
        now = self.sim.now
        self.registry.gauge("kernel", "now").set(now, at=now)
        self.registry.gauge("kernel", "events_executed").set(
            self.sim.events_executed, at=now)
        if self.network is not None:
            self.registry.gauge("network", "messages_sent").set(
                self.network.messages_sent, at=now)

    # -- exports ------------------------------------------------------------

    def export_jsonl(self, meta: Optional[dict] = None) -> str:
        return export_jsonl(self.tracer, registry=self.registry, meta=meta)

    def export_chrome(self) -> dict:
        return export_chrome(self.tracer)

    def digest(self, meta: Optional[dict] = None) -> str:
        return trace_digest(self.export_jsonl(meta=meta))


def attach_tracer(scenario) -> ObsHub:
    """Instrument a built (not yet run) model-checking / chaos
    :class:`~repro.analysis.mc.scenario.Scenario`.

    The scenario already carries a network trace (HazardMonitor + routing
    oracle), so appending the tap to the tee preserves delivery batching
    behaviour — and therefore the monitor's digest — exactly.
    """
    from repro.analysis.mc.oracles import TraceTee

    hub = ObsHub(scenario.sim, scenario.network)
    tracer = hub.tracer
    scenario.network.trace = TraceTee(scenario.monitor,
                                      scenario.partial_oracle, hub.net_tap)
    service = scenario.service
    if service is not None:
        service.obs = tracer
        for epoch in service.epochs():
            for tree_name in sorted(service.serializers(epoch)):
                service.serializers(epoch)[tree_name].obs = tracer
    for name in sorted(scenario.datacenters):
        dc = scenario.datacenters[name]
        if hasattr(dc, "sink"):
            dc.sink.obs = tracer
            dc.proxy.obs = tracer
            if dc.failover is not None:
                dc.failover.obs = tracer
        else:
            # stabilization-baseline datacenter (Eunomia/Okapi scenarios):
            # one tracer hook pair, issue -> visible
            dc.obs = tracer
    if scenario.manager is not None:
        scenario.manager.obs = tracer
    return hub
