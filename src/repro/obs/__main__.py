"""CLI: turn a traced run into a per-edge visibility-latency breakdown.

Usage (also reachable as ``saturn-repro obs ...``)::

    python -m repro.obs                         # Fig. 4 M-configuration
    python -m repro.obs --pair T S --pair I F --scale smoke
    python -m repro.obs --scenario chain3       # a scripted mc/chaos run
    python -m repro.obs --jsonl trace.jsonl --chrome trace.json
    python -m repro.obs --check-determinism

The default mode rebuilds the Fig. 4 M-configuration cluster (Algorithm 3
over the seven EC2 regions) with tracing on and reports, for each
origin->destination pair, which tree hop / artificial delay / sink dwell /
proxy wait contributed what to end-to-end visibility.  The per-label
segment sums must reproduce the measured end-to-end latency to within
1e-6 ms, and ``--check-determinism`` re-runs the whole thing and requires
a bit-identical export digest; either failing exits 2.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Tuple

from repro.obs import ObsHub, attach_tracer
from repro.obs.report import format_breakdown, pair_breakdown

__all__ = ["main"]

#: per-label segment sums must reproduce end-to-end latency this tightly
SUM_TOLERANCE_MS = 1e-6


def _scenario_names() -> List[str]:
    from repro.analysis.mc.scenario import SCENARIOS
    from repro.faults.scenarios import CHAOS_SCENARIOS
    return sorted(set(SCENARIOS) | set(CHAOS_SCENARIOS))


def _run_scenario(name: str) -> Tuple[ObsHub, object]:
    from repro.analysis.mc.scenario import SCENARIOS, build_scenario
    from repro.faults.scenarios import build_chaos_scenario
    if name in SCENARIOS:
        scenario = build_scenario(name)
    else:
        scenario = build_chaos_scenario(name)
    hub = attach_tracer(scenario)
    scenario.run()
    return hub, scenario


def _run_fig4(scale_name: str, seed: int) -> Tuple[ObsHub, object]:
    import dataclasses

    from repro.config.latencies import EC2_REGIONS
    from repro.config.objective import pair_weights_from_replication
    from repro.harness.experiments import (DEFAULT, SMOKE, m_configuration,
                                           run_once)
    from repro.harness.runner import Cluster, ClusterConfig
    from repro.workloads.synthetic import SyntheticWorkload

    scale = {"smoke": SMOKE, "default": DEFAULT}[scale_name]
    if seed:
        scale = dataclasses.replace(scale, seed=seed)
    sites = list(EC2_REGIONS)
    workload = SyntheticWorkload(correlation="exponential", read_ratio=0.9,
                                 groups_per_dc=6)
    # the same M-configuration Fig. 4 uses: Algorithm 3 with weights from
    # the workload's replication map
    probe = Cluster(ClusterConfig(system="eventual", sites=tuple(sites),
                                  clients_per_dc=1, seed=scale.seed),
                    SyntheticWorkload(correlation="exponential",
                                      groups_per_dc=6))
    weights = pair_weights_from_replication(probe.replication)
    topology = m_configuration(sites, scale.beam_width, weights)
    result = run_once("saturn", workload, scale, sites=sites,
                      topology=topology, obs=True)
    return result.cluster.obs_hub, result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Trace a run and attribute per-pair visibility latency "
                    "to individual tree hops, delays and dwell times.")
    parser.add_argument("--scenario", choices=_scenario_names(),
                        help="trace a scripted mc/chaos scenario instead of "
                             "the Fig. 4 M-configuration cluster")
    parser.add_argument("--scale", choices=["smoke", "default"],
                        default="smoke",
                        help="Fig. 4 run sizing (default: smoke)")
    parser.add_argument("--seed", type=int, default=0,
                        help="override the Fig. 4 scale's seed (0 = keep)")
    parser.add_argument("--pair", nargs=2, action="append",
                        metavar=("ORIGIN", "DEST"),
                        help="origin/destination datacenter pair to break "
                             "down (repeatable; default: T S)")
    parser.add_argument("--top", type=int, default=0,
                        help="also print the N slowest labels per pair")
    parser.add_argument("--jsonl", metavar="FILE",
                        help="write the canonical JSONL trace export")
    parser.add_argument("--chrome", metavar="FILE",
                        help="write a Chrome trace-event JSON export")
    parser.add_argument("--json", metavar="FILE", dest="json_out",
                        help="write the breakdown summary as JSON")
    parser.add_argument("--check-determinism", action="store_true",
                        help="run twice and require identical trace digests")
    args = parser.parse_args(argv)

    if args.scenario:
        hub, run = _run_scenario(args.scenario)
        pairs = args.pair or [["I", "T"]]
        source = args.scenario
    else:
        hub, run = _run_fig4(args.scale, args.seed)
        pairs = args.pair or [["T", "S"]]
        source = f"fig4-mconf/{args.scale}"

    exported = hub.export_jsonl(meta={"source": source})
    digest = hub.digest(meta={"source": source})
    failures: List[str] = []

    summary = {"source": source, "digest": digest,
               "chains": hub.tracer.num_chains(), "pairs": {}}
    print(f"source : {source}")
    print(f"chains : {summary['chains']} labels traced")
    print(f"digest : {digest}")
    for origin, dest in pairs:
        breakdown = pair_breakdown(hub.tracer, origin, dest)
        summary["pairs"][f"{origin}->{dest}"] = {
            "labels": len(breakdown["labels"]),
            "incomplete": breakdown["incomplete"],
            "end_to_end_mean": breakdown["end_to_end_mean"],
            "max_sum_error": breakdown["max_sum_error"],
            "segments": breakdown["segments"],
        }
        print()
        print(format_breakdown(breakdown))
        if args.top and breakdown["labels"]:
            slowest = sorted(breakdown["labels"],
                             key=lambda e: e["end_to_end"],
                             reverse=True)[:args.top]
            for entry in slowest:
                path = " -> ".join(entry["path"])
                print(f"  slow label ts={entry['label']['ts']:.3f} "
                      f"{entry['end_to_end']:.3f} ms via {path}")
        if breakdown["labels"] and (breakdown["max_sum_error"]
                                    > SUM_TOLERANCE_MS):
            failures.append(
                f"{origin}->{dest}: segment sums drift from end-to-end "
                f"latency by {breakdown['max_sum_error']:.3e} ms")

    if args.check_determinism:
        if args.scenario:
            hub2, _ = _run_scenario(args.scenario)
        else:
            hub2, _ = _run_fig4(args.scale, args.seed)
        digest2 = hub2.digest(meta={"source": source})
        deterministic = digest2 == digest
        summary["deterministic"] = deterministic
        print()
        print(f"determinism: {'OK' if deterministic else 'MISMATCH'}")
        if not deterministic:
            failures.append(f"nondeterministic trace: {digest} vs {digest2}")

    if args.jsonl:
        Path(args.jsonl).parent.mkdir(parents=True, exist_ok=True)
        Path(args.jsonl).write_text(exported)
    if args.chrome:
        Path(args.chrome).parent.mkdir(parents=True, exist_ok=True)
        Path(args.chrome).write_text(
            json.dumps(hub.export_chrome(), sort_keys=True) + "\n")
    if args.json_out:
        Path(args.json_out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.json_out).write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 2 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
