"""Trace/metrics exports: JSON-lines, Chrome trace-event format, digests.

The JSONL export is the canonical serialization: a header line pinning the
schema version, one line per label chain in ``(ts, src)`` order, the
annotation stream, and the metrics registry.  Keys are sorted and floats
use Python's shortest round-trip repr, so the bytes — and therefore the
SHA-256 digest — are a pure function of the simulated execution.  The
golden-trace tests commit one export verbatim; change the schema and they
tell you.

The Chrome export produces a ``chrome://tracing`` / Perfetto-loadable
trace-event JSON: one complete (``ph: "X"``) event per derived span with a
process row per simulated node, timestamps converted from simulated
milliseconds to trace microseconds, plus instant events for annotations.
"""

from __future__ import annotations

import hashlib
import json
from typing import List, Optional

from repro.obs.trace import LabelTracer

__all__ = ["SCHEMA", "export_jsonl", "export_chrome", "trace_digest"]

SCHEMA = "saturn-obs/v1"


def _dumps(obj: dict) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def export_jsonl(tracer: LabelTracer, registry=None,
                 meta: Optional[dict] = None) -> str:
    """Canonical JSON-lines export (deterministic bytes)."""
    lines: List[str] = []
    header: dict = {"kind": "header", "schema": SCHEMA}
    if meta:
        header["meta"] = meta
    lines.append(_dumps(header))
    for (ts, src), events in tracer.chains():
        lines.append(_dumps({
            "kind": "chain",
            "label": {"ts": ts, "src": src},
            "events": [event.to_obj() for event in events],
        }))
    for event in tracer.annotations:
        record = {"kind": "annotation", "annotation": event.kind,
                  "node": event.node, "t": event.t}
        if event.extra:
            record["extra"] = event.extra
        lines.append(_dumps(record))
    if registry is not None:
        lines.append(_dumps({"kind": "metrics", "metrics": registry.to_dict()}))
    return "\n".join(lines) + "\n"


def trace_digest(exported: str) -> str:
    """SHA-256 over the canonical export bytes."""
    return hashlib.sha256(exported.encode("utf-8")).hexdigest()


def export_chrome(tracer: LabelTracer) -> dict:
    """Chrome trace-event document (``ph:"X"`` spans, µs timestamps)."""
    # stable node -> pid mapping plus process_name metadata rows
    nodes: List[str] = []
    seen = set()
    for _, events in tracer.chains():
        for event in events:
            if event.node not in seen:
                seen.add(event.node)
                nodes.append(event.node)
    for event in tracer.annotations:
        if event.node not in seen:
            seen.add(event.node)
            nodes.append(event.node)
    pid_of = {node: index + 1 for index, node in enumerate(sorted(nodes))}

    trace_events: List[dict] = []
    for node in sorted(pid_of):
        trace_events.append({"ph": "M", "name": "process_name",
                             "pid": pid_of[node], "tid": 0,
                             "args": {"name": node}})
    for tid, ((ts, src), events) in enumerate(tracer.chains(), start=1):
        for span in tracer.spans((ts, src)):
            trace_events.append({
                "ph": "X", "cat": "label", "name": span.name,
                "pid": pid_of[span.node], "tid": tid,
                "ts": span.start * 1000.0,
                "dur": (span.end - span.start) * 1000.0,
                "args": {"label_ts": ts, "label_src": src},
            })
    for event in tracer.annotations:
        trace_events.append({
            "ph": "i", "s": "g", "cat": "annotation", "name": event.kind,
            "pid": pid_of[event.node], "tid": 0,
            "ts": event.t * 1000.0,
            "args": dict(event.extra),
        })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}
