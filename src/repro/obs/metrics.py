"""Component-keyed metrics registry over simulated time.

Counters, gauges and histograms are keyed by ``(component, name)`` and
created lazily on first touch.  Nothing here schedules simulator events or
reads a clock: call sites pass the simulated time of each observation, so a
registry costs nothing when no instrumentation points reference it and the
disabled hot path stays untouched (the ``if self.obs is not None`` guard at
every call site is the whole cost).

Counters optionally bucket their increments into fixed windows of simulated
time (``window`` ms), which is what turns an end-of-run total into a rate
timeline.  Exports are sorted by ``component/name`` so the serialized form
is bit-deterministic.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.metrics.stats import mean, percentile

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotone accumulator, optionally windowed over simulated time."""

    __slots__ = ("value", "window", "_buckets")

    def __init__(self, window: float = 0.0) -> None:
        self.value = 0.0
        self.window = window
        self._buckets: Dict[int, float] = {}

    def inc(self, amount: float = 1.0, at: float = 0.0) -> None:
        self.value += amount
        if self.window > 0:
            bucket = int(at // self.window)
            self._buckets[bucket] = self._buckets.get(bucket, 0.0) + amount

    def series(self) -> List[Tuple[float, float]]:
        """``(window start, amount)`` pairs in time order."""
        return [(bucket * self.window, self._buckets[bucket])
                for bucket in sorted(self._buckets)]

    def to_obj(self) -> dict:
        obj: dict = {"value": self.value}
        if self._buckets:
            obj["series"] = [[t, v] for t, v in self.series()]
        return obj


class Gauge:
    """Last-write-wins sample with its simulated timestamp."""

    __slots__ = ("value", "at", "updates")

    def __init__(self) -> None:
        self.value = 0.0
        self.at = 0.0
        self.updates = 0

    def set(self, value: float, at: float = 0.0) -> None:
        self.value = value
        self.at = at
        self.updates += 1

    def to_obj(self) -> dict:
        return {"value": self.value, "at": self.at, "updates": self.updates}


class Histogram:
    """Timestamped samples with summary statistics."""

    __slots__ = ("_samples",)

    def __init__(self) -> None:
        self._samples: List[Tuple[float, float]] = []

    def observe(self, value: float, at: float = 0.0) -> None:
        self._samples.append((at, value))

    @property
    def count(self) -> int:
        return len(self._samples)

    def values(self) -> List[float]:
        return [value for _, value in self._samples]

    def values_in(self, t0: float, t1: float) -> List[float]:
        """Samples observed in the half-open window ``[t0, t1)``."""
        return [value for at, value in self._samples if t0 <= at < t1]

    def to_obj(self) -> dict:
        values = self.values()
        obj: dict = {"count": len(values)}
        if values:
            obj["mean"] = mean(values)
            obj["min"] = min(values)
            obj["max"] = max(values)
            obj["p50"] = percentile(values, 50.0)
            obj["p90"] = percentile(values, 90.0)
            obj["p99"] = percentile(values, 99.0)
        return obj


class MetricsRegistry:
    """Lazily-created metrics keyed by ``(component, name)``."""

    def __init__(self, window: float = 0.0) -> None:
        self.window = window
        self._counters: Dict[Tuple[str, str], Counter] = {}
        self._gauges: Dict[Tuple[str, str], Gauge] = {}
        self._histograms: Dict[Tuple[str, str], Histogram] = {}

    def counter(self, component: str, name: str) -> Counter:
        key = (component, name)
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter(window=self.window)
        return metric

    def gauge(self, component: str, name: str) -> Gauge:
        key = (component, name)
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(self, component: str, name: str) -> Histogram:
        key = (component, name)
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram()
        return metric

    def to_dict(self) -> dict:
        def section(metrics: Dict[Tuple[str, str], object]) -> dict:
            return {f"{component}/{name}": metrics[(component, name)].to_obj()
                    for component, name in sorted(metrics)}

        return {
            "window": self.window,
            "counters": section(self._counters),
            "gauges": section(self._gauges),
            "histograms": section(self._histograms),
        }
