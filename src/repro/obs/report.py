"""Per-edge visibility breakdown: where did the milliseconds go?

Given a traced run, reconstruct — for every update label visible at a
destination — the exact path it took through the serializer tree and split
its end-to-end visibility latency (issue at the origin sink to visible at
the destination replica) into additive segments:

* ``sink-dwell``      waiting in the origin sink's batch buffer;
* ``wire a->b``       network propagation of one tree edge (or the final
                      serializer -> datacenter delivery);
* ``dwell <node>``    artificial delay δij + chain latency charged by a
                      serializer before the batch hits the wire;
* ``proxy-wait``      delivery to visibility at the destination (payload
                      readiness, in-order pipeline, storage apply).

Segments are consecutive differences of the chain's own timestamps, so
they telescope: their sum reproduces the measured end-to-end latency up to
floating-point rounding (the CLI asserts a 1e-6 ms bound).  Path
reconstruction walks the chain backwards from the delivering forward via
each arrival's ``from`` pointer, with a visited set so replayed labels on
reconfigured trees cannot loop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.metrics.stats import mean
from repro.obs.trace import LabelTracer, TraceEvent

__all__ = ["label_breakdown", "pair_breakdown", "format_breakdown"]


def _first(events: List[TraceEvent], kind: str,
           node: Optional[str] = None) -> Optional[TraceEvent]:
    for event in events:
        if event.kind == kind and (node is None or event.node == node):
            return event
    return None


def _latest(events: List[TraceEvent], kind: str, node: Optional[str],
            at_or_before: float, **extra_match) -> Optional[TraceEvent]:
    found = None
    for event in events:
        if event.kind != kind or event.t > at_or_before:
            continue
        if node is not None and event.node != node:
            continue
        if any(event.extra.get(k) != v for k, v in extra_match.items()):
            continue
        found = event
    return found


def _walk_path(events: List[TraceEvent], dest: str,
               deliver: TraceEvent) -> Optional[List[Tuple[TraceEvent,
                                                           TraceEvent]]]:
    """Hops as ``(arrive, forward)`` pairs from ingress to delivery.

    Starts from the latest forward addressed to the destination datacenter
    no later than the delivery, then follows each arrival's ``from``
    pointer to the previous serializer until the sender is a datacenter
    (the origin sink).  Returns ``None`` when the chain is incomplete
    (label lost to a crash, delivered by a replay whose upstream events
    predate the trace, ...).
    """
    forward = _latest(events, "ser-forward", None, deliver.t,
                      to=f"dc:{dest}")
    if forward is None:
        return None
    hops: List[Tuple[TraceEvent, TraceEvent]] = []
    visited = {forward.node}
    while True:
        arrive = _latest(events, "ser-arrive", forward.node, forward.t)
        if arrive is None:
            return None
        hops.append((arrive, forward))
        sender = arrive.extra.get("from", "")
        if sender.startswith("dc:"):
            hops.reverse()
            return hops
        if sender in visited:
            return None  # cycle: the chain is not a usable path
        visited.add(sender)
        forward = _latest(events, "ser-forward", sender, arrive.t,
                          to=arrive.node)
        if forward is None:
            return None


def label_breakdown(events: List[TraceEvent], origin: str,
                    dest: str) -> Optional[dict]:
    """Segment one label's origin->dest visibility latency, or ``None``
    when the chain does not describe a complete path."""
    issue = _first(events, "issue", origin)
    visible = _first(events, "visible", dest)
    if issue is None or visible is None:
        return None
    deliver = _latest(events, "deliver", dest, visible.t)
    if deliver is None:
        return None
    hops = _walk_path(events, dest, deliver)
    if hops is None:
        return None
    ingress_arrive = hops[0][0]
    flush = _latest(events, "flush", origin, ingress_arrive.t)
    if flush is None:
        return None

    segments: List[Tuple[str, float]] = [
        (f"sink-dwell {origin}", flush.t - issue.t),
        (f"wire {origin}->{ingress_arrive.node}",
         ingress_arrive.t - flush.t),
    ]
    for index, (arrive, forward) in enumerate(hops):
        dwell = forward.extra.get("dwell", 0.0)
        segments.append((f"dwell {arrive.node}", dwell))
        departure = arrive.t + dwell
        if index + 1 < len(hops):
            next_arrive = hops[index + 1][0]
            segments.append((f"wire {arrive.node}->{next_arrive.node}",
                             next_arrive.t - departure))
        else:
            segments.append((f"wire {arrive.node}->dc:{dest}",
                             deliver.t - departure))
    segments.append((f"proxy-wait {dest}", visible.t - deliver.t))

    total = visible.t - issue.t
    return {
        "issue_t": issue.t,
        "visible_t": visible.t,
        "end_to_end": total,
        "segments": segments,
        "path": [arrive.node for arrive, _ in hops],
        "sum_error": abs(sum(value for _, value in segments) - total),
    }


def pair_breakdown(tracer: LabelTracer, origin: str, dest: str) -> dict:
    """Aggregate the per-label breakdowns of one (origin, dest) pair."""
    labels: List[dict] = []
    incomplete = 0
    for key, events in tracer.chains():
        issue = events[0] if events and events[0].kind == "issue" else None
        if issue is None or issue.node != origin:
            continue
        if issue.extra.get("type") != "update":
            continue
        if _first(events, "visible", dest) is None:
            continue
        broken_down = label_breakdown(events, origin, dest)
        if broken_down is None:
            incomplete += 1
            continue
        broken_down["label"] = {"ts": key[0], "src": key[1]}
        labels.append(broken_down)

    segment_values: Dict[str, List[float]] = {}
    segment_order: List[str] = []
    for entry in labels:
        for name, value in entry["segments"]:
            if name not in segment_values:
                segment_values[name] = []
                segment_order.append(name)
            segment_values[name].append(value)
    segment_means = [
        {"segment": name, "mean": mean(segment_values[name]),
         "count": len(segment_values[name])}
        for name in segment_order]
    return {
        "origin": origin,
        "dest": dest,
        "labels": labels,
        "incomplete": incomplete,
        "segments": segment_means,
        "end_to_end_mean": (mean([entry["end_to_end"] for entry in labels])
                            if labels else 0.0),
        "max_sum_error": (max(entry["sum_error"] for entry in labels)
                          if labels else 0.0),
    }


def format_breakdown(breakdown: dict) -> str:
    """Human-readable per-edge latency table for one pair."""
    origin, dest = breakdown["origin"], breakdown["dest"]
    lines = [f"== visibility breakdown {origin} -> {dest} =="]
    count = len(breakdown["labels"])
    lines.append(f"labels      : {count} complete"
                 + (f", {breakdown['incomplete']} incomplete"
                    if breakdown["incomplete"] else ""))
    if not count:
        return "\n".join(lines)
    total = breakdown["end_to_end_mean"]
    lines.append(f"end-to-end  : {total:.3f} ms mean")
    lines.append(f"sum check   : max |segments - end_to_end| = "
                 f"{breakdown['max_sum_error']:.2e} ms")
    width = max(len(entry["segment"]) for entry in breakdown["segments"])
    for entry in breakdown["segments"]:
        share = (100.0 * entry["mean"] / total) if total > 0 else 0.0
        lines.append(f"  {entry['segment']:<{width}}  "
                     f"{entry['mean']:9.3f} ms  {share:5.1f}%  "
                     f"(n={entry['count']})")
    return "\n".join(lines)
