"""Label-lifecycle tracing: one causally-linked event chain per label.

Every label minted by a sink is identified by its ``(ts, src)`` key — the
same key the remote proxies deduplicate on — and accumulates a chronological
list of :class:`TraceEvent` records as it moves through the system:

``issue``        minted at the origin datacenter's label sink;
``flush``        shipped towards the tree by the sink (``replayed`` marks
                 the degraded-mode backlog replay);
``ser-arrive``   received by a serializer (``from`` = sending process);
``ser-forward``  routed out of a serializer (``to`` = target process,
                 ``dwell`` = artificial edge delay δij + chain latency the
                 batch will sit on before hitting the wire);
``deliver``      a label batch reached a remote proxy (``disposition``
                 records what the proxy did with it);
``visible``      the update became visible at a replica (``mode`` is
                 ``saturn``, ``ts-drain`` — the degraded (ts,source)
                 drain — or ``eventual``);
``finalized``    a non-update label (heartbeat / migration / epoch mark)
                 completed its turn in the visibility pipeline.

Cluster-wide happenings that are not tied to one label (failover state
transitions, sink park/replay, epoch changes and adoptions) are recorded as
*annotations* — the same record shape with no label key.

Everything stored here is a pure function of simulated time and process
names, so a traced run exports bit-identically across double runs of the
same seed.  The tracer never schedules events and never touches the
network, which keeps the traced execution itself identical to the untraced
one (see the transparency test in tests/obs).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.label import Label

__all__ = ["TraceEvent", "Span", "LabelTracer", "chain_problems",
           "derive_spans"]

LabelKey = Tuple[float, str]


class TraceEvent:
    """One step of a label's life (or one cluster annotation)."""

    __slots__ = ("t", "kind", "node", "extra")

    def __init__(self, t: float, kind: str, node: str,
                 extra: Optional[dict] = None) -> None:
        self.t = t
        self.kind = kind
        self.node = node
        self.extra = extra if extra is not None else {}

    def to_obj(self) -> dict:
        obj = {"t": self.t, "kind": self.kind, "node": self.node}
        if self.extra:
            obj["extra"] = self.extra
        return obj

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceEvent(t={self.t!r}, kind={self.kind!r}, node={self.node!r})"


class Span:
    """A derived ``[start, end]`` interval in a label's lifecycle."""

    __slots__ = ("name", "node", "start", "end", "parent")

    def __init__(self, name: str, node: str, start: float, end: float,
                 parent: Optional[str] = None) -> None:
        self.name = name
        self.node = node
        self.start = start
        self.end = end
        self.parent = parent

    def to_obj(self) -> dict:
        return {"name": self.name, "node": self.node,
                "start": self.start, "end": self.end, "parent": self.parent}


class LabelTracer:
    """Collects per-label event chains plus cluster annotations.

    Hot-path call sites hold a reference and guard with
    ``if self.obs is not None`` so the disabled cost is one attribute load.
    The optional *registry* (a :class:`repro.obs.metrics.MetricsRegistry`)
    receives component-keyed counters alongside the chains.
    """

    def __init__(self, registry=None) -> None:
        #: (ts, src) -> chronological event list; key insertion order is
        #: simulation order, but exports re-sort by key for stability
        self._chains: Dict[LabelKey, List[TraceEvent]] = {}
        self.annotations: List[TraceEvent] = []
        self.registry = registry

    # -- recording ----------------------------------------------------------

    def _events(self, label: Label) -> List[TraceEvent]:
        key = (label.ts, label.src)
        events = self._chains.get(key)
        if events is None:
            events = self._chains[key] = []
        return events

    def on_issue(self, label: Label, t: float, dc: str) -> None:
        self._events(label).append(TraceEvent(t, "issue", dc, {
            "type": label.type.value, "target": label.target,
            "origin": label.origin_dc}))
        reg = self.registry
        if reg is not None:
            reg.counter(f"sink/{dc}", "labels_issued").inc(at=t)

    def on_flush(self, label: Label, t: float, dc: str,
                 replayed: bool = False) -> None:
        extra = {"replayed": True} if replayed else None
        self._events(label).append(TraceEvent(t, "flush", dc, extra))
        reg = self.registry
        if reg is not None:
            name = "labels_replayed" if replayed else "labels_flushed"
            reg.counter(f"sink/{dc}", name).inc(at=t)

    def on_serializer_arrive(self, label: Label, t: float, node: str,
                             sender: str) -> None:
        self._events(label).append(
            TraceEvent(t, "ser-arrive", node, {"from": sender}))
        reg = self.registry
        if reg is not None:
            reg.counter(f"serializer/{node}", "labels_in").inc(at=t)

    def on_serializer_forward(self, label: Label, t: float, node: str,
                              to: str, dwell: float) -> None:
        self._events(label).append(
            TraceEvent(t, "ser-forward", node, {"to": to, "dwell": dwell}))
        reg = self.registry
        if reg is not None:
            reg.counter(f"serializer/{node}", "labels_out").inc(at=t)

    def on_deliver(self, label: Label, t: float, dc: str, epoch: int,
                   disposition: str) -> None:
        self._events(label).append(TraceEvent(t, "deliver", dc, {
            "epoch": epoch, "disposition": disposition}))
        reg = self.registry
        if reg is not None:
            reg.counter(f"proxy/{dc}", f"delivered_{disposition}").inc(at=t)

    def on_visible(self, label: Label, t: float, dc: str, mode: str) -> None:
        self._events(label).append(
            TraceEvent(t, "visible", dc, {"mode": mode}))
        reg = self.registry
        if reg is not None:
            reg.counter(f"proxy/{dc}", f"visible_{mode}").inc(at=t)

    def on_finalized(self, label: Label, t: float, dc: str) -> None:
        self._events(label).append(TraceEvent(t, "finalized", dc))

    def annotate(self, t: float, kind: str, node: str, **extra) -> None:
        self.annotations.append(
            TraceEvent(t, kind, node, extra if extra else None))
        reg = self.registry
        if reg is not None:
            reg.counter(f"events/{node}", kind.replace("-", "_")).inc(at=t)

    # -- reading ------------------------------------------------------------

    def chains(self) -> Iterator[Tuple[LabelKey, List[TraceEvent]]]:
        """Chains in ``(ts, src)`` order (deterministic across runs)."""
        for key in sorted(self._chains):
            yield key, self._chains[key]

    def events(self, key: LabelKey) -> List[TraceEvent]:
        return self._chains.get(key, [])

    def num_chains(self) -> int:
        return len(self._chains)

    def spans(self, key: LabelKey) -> List[Span]:
        return derive_spans(self._chains.get(key, []))


# ---------------------------------------------------------------------------
# span derivation
# ---------------------------------------------------------------------------

def _event_end(event: TraceEvent) -> float:
    if event.kind == "ser-forward":
        return event.t + event.extra.get("dwell", 0.0)
    return event.t


def derive_spans(events: List[TraceEvent]) -> List[Span]:
    """Derive the span tree of one chain.

    The root span covers the label's whole life (issue to the last thing
    known about it, including dwell time a final forward committed to).
    Children: the sink dwell at the origin, one span per serializer visit
    (arrival to the departure of its last forward), and one per destination
    proxy (first delivery to visibility).  Children nest inside the root by
    construction.
    """
    if not events:
        return []
    start = events[0].t
    end = start
    for event in events:
        event_end = _event_end(event)
        if event_end > end:
            end = event_end
    root = Span("label", events[0].node, start, end, parent=None)
    spans = [root]

    # sink span: issue -> first flush at the same node
    issue = events[0] if events[0].kind == "issue" else None
    if issue is not None:
        for event in events:
            if event.kind == "flush" and event.node == issue.node:
                spans.append(Span("sink", issue.node, issue.t, event.t,
                                  parent="label"))
                break

    # serializer visits: each ser-arrive opens a visit; forwards at the
    # same node extend it until the next arrive at that node
    open_visits: Dict[str, Span] = {}
    for event in events:
        if event.kind == "ser-arrive":
            span = Span("serializer", event.node, event.t, event.t,
                        parent="label")
            open_visits[event.node] = span
            spans.append(span)
        elif event.kind == "ser-forward":
            span = open_visits.get(event.node)
            if span is not None:
                departure = _event_end(event)
                if departure > span.end:
                    span.end = departure

    # proxy spans: first deliver at a node -> visible/finalized there
    first_deliver: Dict[str, TraceEvent] = {}
    for event in events:
        if event.kind == "deliver" and event.node not in first_deliver:
            first_deliver[event.node] = event
    for node in sorted(first_deliver):
        deliver = first_deliver[node]
        span_end = deliver.t
        for event in events:
            # a ts-drain visibility can predate a (stale) late delivery;
            # the proxy span only covers delivery -> resolution
            if (event.kind in ("visible", "finalized")
                    and event.node == node and event.t >= deliver.t):
                span_end = event.t
                break
        spans.append(Span("proxy", node, deliver.t, span_end,
                          parent="label"))
    return spans


# ---------------------------------------------------------------------------
# chain well-formedness (shared by property tests and the CLI)
# ---------------------------------------------------------------------------

def chain_problems(key: LabelKey, events: List[TraceEvent]) -> List[str]:
    """Structural defects of one chain; empty means well-formed.

    Checked invariants: events are recorded in nondecreasing simulated
    time; a saturn-mode ``visible`` is preceded by a ``deliver`` at the
    same node; every ``deliver`` is preceded by a ``flush``; every
    ``flush`` follows the ``issue``; a node sees at most one ``visible``;
    and all derived spans are well-formed intervals nested in the root.
    """
    problems: List[str] = []
    tag = f"label ({key[0]!r}, {key[1]!r})"
    if not events:
        problems.append(f"{tag}: empty chain")
        return problems
    last_t = events[0].t
    for event in events:
        if event.t < last_t:
            problems.append(f"{tag}: time went backwards at {event.kind}")
        last_t = event.t

    issue_t: Optional[float] = None
    flush_t: Optional[float] = None
    delivered_t: Dict[str, float] = {}
    visible_nodes: List[str] = []
    for event in events:
        if event.kind == "issue":
            if issue_t is None:
                issue_t = event.t
        elif event.kind == "flush":
            if issue_t is None:
                problems.append(f"{tag}: flush before issue")
            if flush_t is None:
                flush_t = event.t
        elif event.kind == "deliver":
            if flush_t is None:
                problems.append(f"{tag}: deliver at {event.node} "
                                f"without a prior flush")
            if event.node not in delivered_t:
                delivered_t[event.node] = event.t
        elif event.kind == "visible":
            if event.node in visible_nodes:
                problems.append(f"{tag}: visible twice at {event.node}")
            visible_nodes.append(event.node)
            if (event.extra.get("mode") == "saturn"
                    and event.node not in delivered_t):
                problems.append(f"{tag}: saturn-visible at {event.node} "
                                f"without a delivery")

    spans = derive_spans(events)
    if spans:
        root = spans[0]
        for span in spans:
            if span.end < span.start:
                problems.append(f"{tag}: span {span.name}@{span.node} "
                                f"ends before it starts")
            if span.parent == "label" and (span.start < root.start
                                           or span.end > root.end):
                problems.append(f"{tag}: span {span.name}@{span.node} "
                                f"escapes the root span")
    return problems
