"""``repro.perf`` — microbenchmark + throughput harness with a CI gate.

Three numbers track the simulator's speed (see :mod:`repro.perf.benches`):
kernel events/sec, label deliveries/sec through a 7-DC Saturn tree, and
wall-clock for one smoke-scale figure run.  Results are machine-normalized
against a calibration spin loop (:mod:`repro.perf.measure`) and compared
against the committed ``BENCH_perf.json`` baseline
(:mod:`repro.perf.baseline`); CI fails when any metric is >15% slower.

Run ``python -m repro.perf --help`` for the CLI.
"""

from repro.perf.baseline import (ComparisonReport, MetricComparison,
                                 build_result, compare, load_result,
                                 save_result)
from repro.perf.benches import bench_figure, bench_kernel, bench_tree
from repro.perf.measure import calibrate, wall_clock

__all__ = [
    "bench_kernel", "bench_tree", "bench_figure",
    "build_result", "compare", "load_result", "save_result",
    "ComparisonReport", "MetricComparison",
    "calibrate", "wall_clock",
]
