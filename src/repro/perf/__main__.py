"""CLI for the perf harness.

Examples::

    python -m repro.perf                          # run, write BENCH_perf.json
    python -m repro.perf --json                   # same, JSON on stdout
    python -m repro.perf --compare BENCH_perf.json
    python -m repro.perf --skip figure --repeat 1 # quick kernel+tree check

``--compare`` loads the given baseline *before* the run, compares the fresh
numbers against it (machine-normalized) and exits 1 on the regression
verdict; the fresh result is still written to ``--output`` so CI can upload
it as an artifact (and so refreshing the committed baseline is just
re-running the tool and committing the file).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.perf.baseline import (DEFAULT_TOLERANCE, build_result, compare,
                                 load_result, save_result)
from repro.perf.benches import (bench_figure, bench_kernel, bench_obs,
                                bench_saturation, bench_tree)
from repro.perf.measure import calibrate

BENCHES = ("kernel", "tree", "obs", "figure", "saturation")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Simulator performance harness with regression verdicts")
    parser.add_argument("--json", action="store_true",
                        help="emit the result document as JSON on stdout")
    parser.add_argument("--compare", metavar="BASELINE",
                        help="baseline result file to compare against; "
                             "exit 1 when any metric regresses")
    parser.add_argument("--output", default="BENCH_perf.json",
                        metavar="PATH",
                        help="where to write the fresh result "
                             "(default: %(default)s; 'none' disables)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        metavar="FRACTION",
                        help="allowed normalized slowdown before a metric "
                             "fails (default: %(default)s)")
    parser.add_argument("--repeat", type=int, default=None, metavar="N",
                        help="override per-bench repeat count")
    parser.add_argument("--skip", action="append", default=[],
                        choices=BENCHES, metavar="BENCH",
                        help="skip one bench (repeatable): kernel, tree, "
                             "obs, figure")
    parser.add_argument("--kernel-events", type=int, default=300_000,
                        metavar="N", help="kernel bench event count")
    parser.add_argument("--tree-batches", type=int, default=120, metavar="N",
                        help="tree bench batches per datacenter")
    args = parser.parse_args(argv)

    baseline = None
    if args.compare:
        try:
            baseline = load_result(args.compare)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            parser.error(f"cannot load baseline {args.compare}: {exc}")

    def repeats(default: int) -> int:
        return args.repeat if args.repeat is not None else default

    calibration = calibrate()
    metrics = {}
    if "kernel" not in args.skip:
        metrics["kernel_events_per_sec"] = bench_kernel(
            events=args.kernel_events, repeats=repeats(3))
    if "tree" not in args.skip:
        metrics["tree_label_deliveries_per_sec"] = bench_tree(
            batches_per_dc=args.tree_batches, repeats=repeats(3))
    if "obs" not in args.skip:
        metrics["obs_disabled_tree_labels_per_sec"] = bench_obs(
            batches_per_dc=args.tree_batches, repeats=repeats(3))
    if "figure" not in args.skip:
        metrics["figure_smoke_seconds"] = bench_figure(repeats=repeats(2))
    if "saturation" not in args.skip:
        # deterministic simulated quantity: repeats would be identical
        metrics["overload_saturation_ops_s"] = bench_saturation()

    result = build_result(metrics, calibration)

    if args.output and args.output != "none":
        save_result(result, args.output)

    report = None
    if baseline is not None:
        report = compare(result, baseline, tolerance=args.tolerance)

    if args.json:
        document = dict(result)
        if report is not None:
            document["comparison"] = {
                "baseline": args.compare,
                "tolerance": report.tolerance,
                "verdict": report.verdict(),
                "metrics": {
                    c.name: {"change": c.change, "regression": c.regression}
                    for c in report.comparisons
                },
            }
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        machine = result["machine"]
        print(f"calibration: {machine['calibration_ops_per_sec']:,.0f} ops/s "
              f"({machine['implementation']} {machine['python']})")
        for name, entry in sorted(result["metrics"].items()):
            print(f"  {name}: {entry['raw']:,.1f} {entry['unit']} "
                  f"(normalized {entry['normalized']:.6g})")
        if report is not None:
            print(report.summary())

    if report is not None and not report.ok:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
