"""Result schema, baseline IO and the regression verdict.

A perf result file (``BENCH_perf.json``) holds machine metadata, the
calibration score, and one entry per metric::

    {
      "schema": 1,
      "machine": {"python": "...", "platform": "...",
                  "calibration_ops_per_sec": 31234567.0},
      "metrics": {
        "kernel_events_per_sec": {
          "raw": 850000.0, "normalized": 0.0272,
          "unit": "events/s", "higher_is_better": true, "meta": {...}
        },
        ...
      }
    }

``normalized`` is the machine-independent number verdicts compare:
``raw / calibration`` for rates, ``raw * calibration`` for durations (see
:mod:`repro.perf.measure`).  :func:`compare` declares a regression when a
metric's normalized value is more than *tolerance* (default 15%) worse
than the committed baseline.
"""

from __future__ import annotations

import json
import platform
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "SCHEMA_VERSION", "DEFAULT_TOLERANCE",
    "build_result", "load_result", "save_result",
    "MetricComparison", "ComparisonReport", "compare",
]

SCHEMA_VERSION = 1
DEFAULT_TOLERANCE = 0.15


def normalize(raw: float, higher_is_better: bool, calibration: float) -> float:
    """Machine-normalize one measurement (see module docstring)."""
    if calibration <= 0:
        raise ValueError("calibration score must be positive")
    return raw / calibration if higher_is_better else raw * calibration


def build_result(metrics: Dict[str, Dict], calibration: float) -> Dict:
    """Assemble the result document from raw bench dicts.

    A bench may set ``"calibration_free": True`` when its raw number is a
    *simulated* quantity (deterministic given the seed, identical on any
    machine): its normalized value is then the raw value itself, so the
    committed baseline never drifts with host speed and the regression
    tolerance compares like with like.
    """
    out_metrics = {}
    for name, bench in metrics.items():
        calibration_free = bool(bench.get("calibration_free", False))
        out_metrics[name] = {
            "raw": bench["raw"],
            "normalized": (bench["raw"] if calibration_free else
                           normalize(bench["raw"], bench["higher_is_better"],
                                     calibration)),
            "unit": bench["unit"],
            "higher_is_better": bench["higher_is_better"],
            "meta": bench.get("meta", {}),
        }
        if calibration_free:
            out_metrics[name]["calibration_free"] = True
    return {
        "schema": SCHEMA_VERSION,
        "machine": {
            "python": sys.version.split()[0],
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "calibration_ops_per_sec": calibration,
        },
        "metrics": out_metrics,
    }


def load_result(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported perf-result schema {document.get('schema')!r} "
            f"in {path} (expected {SCHEMA_VERSION})")
    return document


def save_result(document: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


# ---------------------------------------------------------------------------
# comparison / verdict
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MetricComparison:
    """Verdict for one metric against the baseline."""

    name: str
    unit: str
    higher_is_better: bool
    current_raw: float
    current_normalized: float
    baseline_normalized: float
    #: > 0 is faster than baseline, < 0 slower (fraction, normalized)
    change: float
    regression: bool

    def describe(self) -> str:
        direction = "faster" if self.change >= 0 else "slower"
        flag = "  << REGRESSION" if self.regression else ""
        return (f"{self.name}: {self.current_raw:,.1f} {self.unit} "
                f"({abs(self.change) * 100.0:.1f}% {direction} than baseline, "
                f"normalized){flag}")


@dataclass
class ComparisonReport:
    """Outcome of comparing a run against the committed baseline."""

    tolerance: float
    comparisons: List[MetricComparison] = field(default_factory=list)
    missing_in_baseline: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(c.regression for c in self.comparisons)

    def verdict(self) -> str:
        return "PASS" if self.ok else "FAIL"

    def summary(self) -> str:
        lines = [f"perf verdict: {self.verdict()} "
                 f"(tolerance {self.tolerance * 100.0:.0f}%)"]
        lines.extend("  " + c.describe() for c in self.comparisons)
        for name in self.missing_in_baseline:
            lines.append(f"  {name}: no baseline entry (skipped)")
        return "\n".join(lines)


def compare(current: Dict, baseline: Dict,
            tolerance: float = DEFAULT_TOLERANCE) -> ComparisonReport:
    """Compare two result documents on their normalized metrics.

    A metric regresses when it is more than *tolerance* worse than the
    baseline: rate metrics below ``baseline * (1 - tolerance)``, duration
    metrics above ``baseline * (1 + tolerance)``.  Metrics absent from the
    baseline are reported but never fail the run (so adding a bench does
    not require regenerating every committed baseline at once).
    """
    report = ComparisonReport(tolerance=tolerance)
    baseline_metrics = baseline.get("metrics", {})
    for name in sorted(current.get("metrics", {})):
        entry = current["metrics"][name]
        base = baseline_metrics.get(name)
        if base is None:
            report.missing_in_baseline.append(name)
            continue
        higher = entry["higher_is_better"]
        cur_norm = entry["normalized"]
        base_norm = base["normalized"]
        if base_norm <= 0:
            change = 0.0
            regression = False
        elif higher:
            change = cur_norm / base_norm - 1.0
            regression = cur_norm < base_norm * (1.0 - tolerance)
        else:
            change = base_norm / cur_norm - 1.0 if cur_norm > 0 else 0.0
            regression = cur_norm > base_norm * (1.0 + tolerance)
        report.comparisons.append(MetricComparison(
            name=name, unit=entry["unit"], higher_is_better=higher,
            current_raw=entry["raw"], current_normalized=cur_norm,
            baseline_normalized=base_norm, change=change,
            regression=regression))
    return report
