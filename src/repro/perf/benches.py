"""The benchmarks behind ``python -m repro.perf``.

* :func:`bench_kernel` — raw :class:`~repro.sim.engine.Simulator` heap
  throughput (events/sec) on a self-rescheduling tick workload; the number
  every simulated component ultimately rides on.
* :func:`bench_tree` — label deliveries/sec through a 7-datacenter Saturn
  serializer tree over the paper's Table-1 EC2 latencies; exercises
  ``Network.send`` delivery batching, serializer routing-table caches and
  interest memoization together.
* :func:`bench_obs` — the same serializer-tree hot path with the
  :mod:`repro.obs` hooks compiled in but *disabled* (``obs is None``), the
  configuration every ordinary run pays for; guards the near-zero-cost
  promise of the instrumentation.
* :func:`bench_figure` — wall-clock seconds for one smoke-scale figure run
  (the full stack: datacenters, gears, clients, metrics), i.e. what a
  contributor actually waits for.
* :func:`bench_saturation` — max sustainable open-loop offered load
  (ops/s per datacenter at the p99-visibility SLO) on a smoke overload
  sweep.  Unlike the others this is a *simulated* quantity — exactly
  reproducible on any machine — so it is ``calibration_free`` and its
  regression gate catches capacity losses (a slower label path, a
  mis-tuned queue bound) rather than host slowness.

Each returns a plain dict ready for :mod:`repro.perf.baseline`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config.latencies import EC2_REGIONS, ec2_latency_model
from repro.core.label import Label, LabelType
from repro.core.replication import ReplicationMap
from repro.core.service import SaturnService
from repro.core.tree import TreeTopology
from repro.core.naming import dc_process_name
from repro.datacenter.messages import LabelBatch
from repro.perf.measure import best_rate, wall_clock
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.process import Process
from repro.sim.rng import RngRegistry

__all__ = ["bench_kernel", "bench_tree", "bench_obs", "bench_figure",
           "bench_saturation", "TREE_SITES"]

#: the paper's seven EC2 regions — one datacenter per region
TREE_SITES: Tuple[str, ...] = tuple(EC2_REGIONS)


# ---------------------------------------------------------------------------
# kernel microbenchmark
# ---------------------------------------------------------------------------

def bench_kernel(events: int = 300_000, chains: int = 100,
                 repeats: int = 5) -> Dict:
    """Events/sec through the simulator heap.

    *chains* concurrent self-rescheduling ticks keep the heap at a
    realistic depth; every tick is one pop + one push, so the measured
    rate is dominated by exactly the code every actor schedules through.
    """

    def run() -> Tuple[int, float]:
        sim = Simulator()
        remaining = [events]

        def tick() -> None:
            left = remaining[0] = remaining[0] - 1
            if left > 0:
                sim.schedule(1.0, tick)

        for i in range(chains):
            sim.schedule(0.1 * (i % 7), tick)
        start = wall_clock()
        sim.run()
        elapsed = wall_clock() - start
        return sim.events_executed, elapsed

    rate, work, elapsed = best_rate(run, repeats)
    return {
        "raw": rate,
        "unit": "events/s",
        "higher_is_better": True,
        "meta": {"events": work, "seconds": elapsed, "chains": chains,
                 "repeats": repeats},
    }


# ---------------------------------------------------------------------------
# 7-DC serializer-tree throughput
# ---------------------------------------------------------------------------

class _LabelCounter(Process):
    """Stand-in for a datacenter: counts the labels Saturn delivers."""

    def __init__(self, sim: Simulator, dc_name: str) -> None:
        super().__init__(sim, dc_process_name(dc_name))
        self.labels_received = 0

    def receive(self, sender: str, message) -> None:
        if isinstance(message, LabelBatch):
            self.labels_received += len(message.labels)


def _chain_topology(sites: Tuple[str, ...]) -> TreeTopology:
    """Deterministic 7-serializer chain, one datacenter per serializer."""
    serializer_sites = {f"s{site}": site for site in sites}
    names = [f"s{site}" for site in sites]
    edges = list(zip(names, names[1:]))
    attachments = {site: f"s{site}" for site in sites}
    return TreeTopology(serializer_sites=serializer_sites, edges=edges,
                        attachments=attachments)


def _tree_run(batches_per_dc: int, labels_per_batch: int,
              sites: Tuple[str, ...], traced: bool = False) -> Tuple[int, float]:
    """One timed serializer-tree run; ``traced`` attaches a LabelTracer."""
    sim = Simulator()
    network = Network(sim, latency_model=ec2_latency_model(),
                      default_latency=0.25, rng=RngRegistry(seed=11))
    replication = ReplicationMap(list(sites))
    service = SaturnService(sim, network, replication)
    if traced:
        # imported lazily so the untraced bench never touches repro.obs
        from repro.obs import ObsHub
        service.obs = ObsHub(sim, network).tracer
    topology = _chain_topology(sites)
    service.install_tree(topology, epoch=0)
    counters: List[_LabelCounter] = []
    for site in sites:
        counter = _LabelCounter(sim, site)
        counter.attach_network(network)
        network.place(counter.name, site)
        counters.append(counter)

    def make_injector(site: str, ingress: str, batch_index: int):
        base_ts = float(batch_index * labels_per_batch)

        def inject() -> None:
            labels = tuple(
                Label(LabelType.UPDATE, src=f"{site}/gear",
                      ts=base_ts + offset, target=f"key{offset}",
                      origin_dc=site)
                for offset in range(labels_per_batch))
            network.send(f"sink:{site}", ingress, LabelBatch(labels))

        return inject

    for site in sites:
        ingress = service.ingress_process(site, epoch=0)
        assert ingress is not None
        for batch_index in range(batches_per_dc):
            sim.schedule(1.0 * batch_index,
                         make_injector(site, ingress, batch_index))
    start = wall_clock()
    sim.run()
    elapsed = wall_clock() - start
    delivered = sum(counter.labels_received for counter in counters)
    return delivered, elapsed


def bench_tree(batches_per_dc: int = 120, labels_per_batch: int = 24,
               repeats: int = 3,
               sites: Tuple[str, ...] = TREE_SITES) -> Dict:
    """Label deliveries/sec through the full-width serializer tree.

    Every datacenter streams timestamp-ordered update-label batches into
    its ingress serializer (1 ms apart, mimicking the sink's batch
    period); with full replication each label must reach the other six
    datacenters, so one run forwards ``7 * batches * labels`` labels and
    delivers six times that many.
    """

    def run() -> Tuple[int, float]:
        return _tree_run(batches_per_dc, labels_per_batch, sites)

    rate, work, elapsed = best_rate(run, repeats)
    expected = len(sites) * batches_per_dc * labels_per_batch * (len(sites) - 1)
    return {
        "raw": rate,
        "unit": "labels/s",
        "higher_is_better": True,
        "meta": {"labels_delivered": work, "expected": expected,
                 "seconds": elapsed, "batches_per_dc": batches_per_dc,
                 "labels_per_batch": labels_per_batch, "repeats": repeats},
    }


def bench_obs(batches_per_dc: int = 120, labels_per_batch: int = 24,
              repeats: int = 3,
              sites: Tuple[str, ...] = TREE_SITES) -> Dict:
    """Serializer-tree throughput with the obs hooks present but disabled.

    Identical workload to :func:`bench_tree`; the measured number is the
    rate every *untraced* run pays, i.e. the routing hot path plus one
    ``obs is not None`` test per batch arrival and forward.  A traced run
    is also timed once so the baseline records the enabled-path overhead
    (informational only — the regression gate watches the disabled rate).
    """

    def run() -> Tuple[int, float]:
        return _tree_run(batches_per_dc, labels_per_batch, sites)

    rate, work, elapsed = best_rate(run, repeats)
    traced_work, traced_elapsed = _tree_run(batches_per_dc, labels_per_batch,
                                            sites, traced=True)
    traced_rate = traced_work / traced_elapsed if traced_elapsed else 0.0
    return {
        "raw": rate,
        "unit": "labels/s",
        "higher_is_better": True,
        "meta": {"labels_delivered": work, "seconds": elapsed,
                 "batches_per_dc": batches_per_dc,
                 "labels_per_batch": labels_per_batch, "repeats": repeats,
                 "traced_labels_per_sec": traced_rate,
                 "traced_overhead_pct": (100.0 * (rate - traced_rate) / rate
                                         if rate else 0.0)},
    }


# ---------------------------------------------------------------------------
# end-to-end smoke figure run
# ---------------------------------------------------------------------------

def bench_figure(repeats: int = 3, scale=None) -> Dict:
    """Wall-clock for one smoke-scale Saturn figure run (lower is better)."""
    # imported lazily: the harness pulls in the whole workload stack
    from repro.harness.experiments import SMOKE, m_configuration, run_once
    from repro.workloads.synthetic import SyntheticWorkload

    scale = scale or SMOKE
    # warm the M-configuration cache so the beam search (a one-off
    # config-solver cost, cached across figures) stays out of the timing
    m_configuration(TREE_SITES, beam_width=scale.beam_width)
    best = float("inf")
    throughput = 0.0
    for _ in range(max(1, repeats)):
        start = wall_clock()
        result = run_once("saturn", SyntheticWorkload(), scale)
        elapsed = wall_clock() - start
        if elapsed < best:
            best = elapsed
            throughput = result.throughput
    return {
        "raw": best,
        "unit": "s",
        "higher_is_better": False,
        "meta": {"sim_throughput_ops_s": throughput,
                 "duration_ms": scale.duration, "repeats": repeats},
    }


# ---------------------------------------------------------------------------
# open-loop saturation point (simulated, calibration-free)
# ---------------------------------------------------------------------------

def bench_saturation(rates: Tuple[float, ...] = (2000.0, 4000.0, 6000.0,
                                                 8000.0, 10000.0),
                     num_users: int = 2000) -> Dict:
    """Max sustainable offered load (ops/s per DC) at the p99 SLO.

    Runs the smoke overload sweep (3-DC serializer chain, streaming
    social workload, Poisson open-loop arrivals, Saturn with the bounded
    backpressure chain) and reports the largest swept rate that stays
    within the p99-visibility SLO with >= 95% goodput.  The result is a
    deterministic function of the codebase — no repeats, no calibration;
    a drop to the next sweep point means the throughput cliff moved.
    """
    from repro.harness.experiments import OVERLOAD_SYSTEMS, Scale, overload

    assert "saturn" in OVERLOAD_SYSTEMS
    scale = Scale(duration=400.0, warmup=100.0, num_partitions=2, seed=11)
    result = overload(scale, systems=("saturn",), rates=rates,
                      num_users=num_users)
    best = result["max_sustainable_ops_s"]["saturn"] or 0.0
    return {
        "raw": best,
        "unit": "ops/s/dc",
        "higher_is_better": True,
        "calibration_free": True,
        "meta": {"rates": list(rates), "num_users": num_users,
                 "p99_slo_ms": result["p99_slo_ms"],
                 "goodput_floor": result["goodput_floor"],
                 "per_rate": [
                     {"rate": row["offered_ops_s_per_dc"],
                      "goodput": round(row["goodput"], 4),
                      "visibility_p99_ms": (
                          None if row["visibility_p99_ms"] is None
                          else round(row["visibility_p99_ms"], 3)),
                      "sustainable": row["sustainable"]}
                     for row in result["rows"]]},
    }
