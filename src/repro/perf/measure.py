"""Wall-clock measurement primitives for the perf harness.

This is the only module in the repository that is *supposed* to read the
host clock: it times how fast the simulator executes, it never feeds wall
time into a simulation.  All reads go through :func:`wall_clock` so the
SAT001 suppression lives in exactly one place.

Machine normalization: absolute events/sec numbers are meaningless across
machines (a laptop baseline would fail CI on a slow runner and hide
regressions on a fast one).  :func:`calibrate` times a fixed pure-Python
spin loop whose instruction mix resembles the simulator hot path (float
arithmetic, attribute-free name lookups, list appends) and returns a
machine score in ops/sec.  Dividing a measured rate by the score — or
multiplying a measured duration — yields a dimensionless number that is
stable across machines to first order, which is what regression verdicts
compare.
"""

from __future__ import annotations

import time
from typing import Callable, Tuple

__all__ = ["wall_clock", "calibrate", "best_rate", "CALIBRATION_OPS"]

#: spin-loop iterations per calibration sample
CALIBRATION_OPS = 400_000


def wall_clock() -> float:
    """Monotonic host-clock read (seconds); measurement only."""
    return time.perf_counter()  # noqa: SAT001 - perf harness measures the host


def _spin(n: int) -> float:
    """Fixed deterministic workload: float math + list churn."""
    acc = 0.0
    items = []
    append = items.append
    for i in range(n):
        acc += i * 0.5 + 1.25
        if not i % 1024:
            append(acc)
            if len(items) > 64:
                del items[:32]
    return acc


def calibrate(samples: int = 5, ops: int = CALIBRATION_OPS) -> float:
    """Machine score in calibration-ops/sec (best of *samples*)."""
    best = float("inf")
    for _ in range(samples):
        start = wall_clock()
        _spin(ops)
        elapsed = wall_clock() - start
        best = min(best, elapsed)
    return ops / best


def best_rate(run: Callable[[], Tuple[int, float]], repeats: int) -> Tuple[float, int, float]:
    """Run *run* (returning ``(work_done, seconds)``) *repeats* times.

    Returns ``(best_rate, work_done, best_seconds)`` where best is the
    sample with the highest work/sec — the standard way to cut scheduler
    noise out of microbenchmarks."""
    best = 0.0
    best_work = 0
    best_elapsed = float("inf")
    for _ in range(max(1, repeats)):
        work, elapsed = run()
        rate = work / elapsed if elapsed > 0 else float("inf")
        if rate > best:
            best, best_work, best_elapsed = rate, work, elapsed
    return best, best_work, best_elapsed
