"""Discrete-event simulation substrate (engine, network, clocks, CPU)."""

from repro.sim.clock import ClockFactory, PhysicalClock
from repro.sim.cpu import CostModel, ServerCPU
from repro.sim.engine import Event, SimulationError, Simulator
from repro.sim.network import LatencyModel, Network
from repro.sim.process import Process, RepeatingTimer
from repro.sim.rng import RngRegistry

__all__ = [
    "ClockFactory",
    "PhysicalClock",
    "CostModel",
    "ServerCPU",
    "Event",
    "SimulationError",
    "Simulator",
    "LatencyModel",
    "Network",
    "Process",
    "RepeatingTimer",
    "RngRegistry",
]
