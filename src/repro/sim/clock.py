"""Simulated physical clocks with skew and drift.

Saturn's gears generate label timestamps from physical clocks (§7 of the
paper: NTP-synchronized before each experiment, so remaining skew is
negligible vs. WAN latency).  We model each node clock as

    clock(t) = t + skew + drift_ppm * 1e-6 * t

and additionally enforce the Lamport-style monotonicity rule gears need:
:meth:`PhysicalClock.timestamp` never returns a value <= the previous one,
and can be bumped past an observed timestamp (``GENERATE_TSTAMP`` in Alg. 2).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry

__all__ = ["PhysicalClock", "ClockFactory"]


class PhysicalClock:
    """Per-node clock: skewed, drifting view of simulated true time."""

    def __init__(self, sim: Simulator, skew: float = 0.0,
                 drift_ppm: float = 0.0) -> None:
        self.sim = sim
        self.skew = skew
        self.drift_ppm = drift_ppm
        self._last_timestamp = float("-inf")

    def now(self) -> float:
        """Current clock reading in ms (may differ from true time)."""
        true = self.sim.now
        return true + self.skew + self.drift_ppm * 1e-6 * true

    def timestamp(self, at_least: Optional[float] = None) -> float:
        """Monotonically increasing timestamp, >= ``at_least`` if given.

        This is the paper's GENERATE_TSTAMP: strictly greater than every
        timestamp previously issued by this clock and strictly greater than
        the client's observed label timestamp.
        """
        candidate = self.now()
        floor = self._last_timestamp
        if at_least is not None and at_least > floor:
            floor = at_least
        if candidate <= floor:
            # nextafter guards the wall-anchored realtime kernel, whose
            # epoch-scale floats are too coarse for the fixed 1e-6 bump;
            # at sim magnitudes the max() always picks floor + 1e-6, so
            # simulated traces are unchanged
            candidate = max(floor + 1e-6, math.nextafter(floor, math.inf))
        self._last_timestamp = candidate
        return candidate

    def resync(self) -> None:
        """NTP-style resynchronization: zero the skew."""
        self.skew = 0.0


class ClockFactory:
    """Creates node clocks with bounded random skew from a seeded stream."""

    def __init__(self, sim: Simulator, rng: RngRegistry,
                 max_skew: float = 1.0, max_drift_ppm: float = 0.0) -> None:
        self.sim = sim
        self._rng = rng.stream("clock-skew")
        self.max_skew = max_skew
        self.max_drift_ppm = max_drift_ppm

    def create(self) -> PhysicalClock:
        skew = self._rng.uniform(-self.max_skew, self.max_skew)
        drift = self._rng.uniform(-self.max_drift_ppm, self.max_drift_ppm)
        return PhysicalClock(self.sim, skew=skew, drift_ppm=drift)
