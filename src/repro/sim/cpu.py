"""Server CPU model used for throughput experiments.

Absolute ops/s of the paper's Erlang servers cannot be reproduced in Python,
so throughput experiments run on an explicit cost model: every operation a
storage server executes consumes CPU time on that server's serial
:class:`ServerCPU` queue.  The costs (scalar vs. vector metadata handling,
stabilization heartbeats, payload size) are what create the throughput gaps
between Eventual, Saturn, GentleRain, and Cure in the paper, and they are the
knobs of :class:`CostModel`.

Saturation throughput of a server is ``1 / service_time``; closed-loop
clients (zero think time) drive the system to that limit exactly as Basho
Bench does in the paper's setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.sim.engine import Simulator

__all__ = ["ServerCPU", "CostModel"]


@dataclass
class CostModel:
    """Per-operation CPU costs in milliseconds.

    Defaults are calibrated so that a 7-DC full-replication run reproduces
    the paper's headline gaps: Saturn ~2% below eventual, GentleRain ~5%
    below, Cure ~25% below (§7.3.2).
    """

    #: base cost of serving a read from local storage
    read_base: float = 0.22
    #: base cost of applying a write (local or remote) to storage
    write_base: float = 0.30
    #: extra cost per payload byte (serialization / copying)
    per_byte: float = 0.0002
    #: cost of generating/comparing one scalar label (Saturn, GentleRain)
    scalar_metadata: float = 0.006
    #: cost per vector entry of creating/merging a vector clock (Cure)
    vector_entry_metadata: float = 0.009
    #: CPU consumed by one stabilization round, per remote partner
    #: (GentleRain/Cure background GST computation, every 5 ms)
    stabilization_per_partner: float = 0.040
    #: cost for the label sink to batch/forward one label (Saturn)
    label_sink_per_label: float = 0.010
    #: cost of an attach/migration stability check
    attach_check: float = 0.050

    def read_cost(self, value_size: int, vector_entries: int = 0) -> float:
        cost = self.read_base + self.per_byte * value_size
        if vector_entries:
            cost += self.vector_entry_metadata * vector_entries
        else:
            cost += self.scalar_metadata
        return cost

    def write_cost(self, value_size: int, vector_entries: int = 0) -> float:
        cost = self.write_base + self.per_byte * value_size
        if vector_entries:
            cost += self.vector_entry_metadata * vector_entries
        else:
            cost += self.scalar_metadata
        return cost

    def stabilization_cost(self, partners: int, vector_entries: int = 0) -> float:
        cost = self.stabilization_per_partner * partners
        if vector_entries:
            cost += self.vector_entry_metadata * vector_entries * partners * 0.5
        return cost


class ServerCPU:
    """Serial work queue: one server core executing operations in order."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._busy_until = 0.0
        self.busy_time = 0.0
        self.ops_executed = 0

    @property
    def busy_until(self) -> float:
        return self._busy_until

    def submit(self, cost: float, callback: Callable[[], None]) -> float:
        """Enqueue work costing *cost* ms; run *callback* at completion.

        Returns the completion time.
        """
        if cost < 0:
            raise ValueError("cost must be non-negative")
        start = max(self.sim.now, self._busy_until)
        finish = start + cost
        self._busy_until = finish
        self.busy_time += cost
        self.ops_executed += 1
        self.sim.schedule_at(finish, callback)
        return finish

    def consume(self, cost: float) -> None:
        """Consume background CPU time with no completion callback."""
        if cost <= 0:
            return
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + cost
        self.busy_time += cost

    def utilization(self, elapsed: float) -> float:
        """Fraction of *elapsed* ms this CPU spent busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)
