"""Deterministic discrete-event simulation kernel.

The kernel is a classic event-heap scheduler.  All distributed components in
this repository (datacenters, Saturn serializers, clients, baselines) are
actors scheduled on a single :class:`Simulator`.  Simulated time is a float
in **milliseconds**, matching the units of the paper's latency tables.

Determinism: events scheduled for the same instant are executed in the order
they were scheduled (a monotonically increasing sequence number breaks ties),
so a given seed always produces the identical execution.

Hot-path layout: the heap stores plain ``(time, seq, event)`` tuples so that
sift comparisons stay inside the C tuple-compare path instead of calling a
Python ``__lt__``.  The :class:`Event` returned by the ``schedule`` methods
is a ``__slots__`` handle used only for cancellation and instrumentation;
cancelling sets its ``callback`` to ``None`` and bumps a counter on the
simulator, so :meth:`Simulator.run` can skip dead entries with a single
attribute load and :meth:`Simulator.pending` stays O(1).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for scheduling errors (e.g. events in the past)."""


class Event:
    """A scheduled callback handle.

    ``callback is None`` doubles as the dead flag: it is cleared both when
    the event is cancelled and just before the kernel invokes it, so a
    cancel that races with execution (from inside the running callback or
    any later event) is a harmless no-op.
    """

    __slots__ = ("time", "seq", "callback", "_sim")

    def __init__(self, time: float, seq: int, callback: Optional[Callable[[], None]],
                 sim: Optional["Simulator"] = None) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self._sim = sim

    @property
    def cancelled(self) -> bool:
        """True once the event can no longer fire (cancelled or already run)."""
        return self.callback is None

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when popped."""
        if self.callback is not None:
            self.callback = None
            sim = self._sim
            if sim is not None:
                sim._cancelled_in_heap += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "dead" if self.callback is None else "pending"
        return f"<Event t={self.time} seq={self.seq} {state}>"


class Simulator:
    """Single-threaded deterministic discrete-event scheduler."""

    def __init__(self) -> None:
        #: heap of ``(time, seq, Event)`` entries; compared as tuples.
        self._heap: list = []
        self._seq = 0
        self._now = 0.0
        self._events_executed = 0
        #: cancelled events still sitting in the heap (skipped on pop).
        self._cancelled_in_heap = 0
        #: optional instrumentation hook (see repro.analysis.runtime).
        #: When set, it must provide ``on_schedule(event)`` and
        #: ``on_pop(event)``; both are called synchronously, so observers
        #: must not schedule events themselves.
        self.observer: Optional[Any] = None
        #: optional schedule controller (see repro.analysis.mc.controller).
        #: When set, it must provide ``on_schedule(event)`` and
        #: ``choose(time, events) -> int``: whenever two or more live
        #: events are ready at the same instant, ``choose`` picks which one
        #: runs next (index into *events*, which is in (time, seq) order).
        #: With no controller — or a controller that always returns 0 — the
        #: execution is identical to the plain FIFO tie-break.
        self.controller: Optional[Any] = None

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (for diagnostics)."""
        return self._events_executed

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently scheduled event.

        Lets collaborators (e.g. :class:`~repro.sim.network.Network`
        delivery batching) detect whether anything was scheduled since a
        given event without holding a reference to the heap."""
        return self._seq

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule *callback* to run ``delay`` ms from now.

        Returns the :class:`Event`, which can be cancelled.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        time = self._now + delay
        seq = self._seq = self._seq + 1
        event = Event(time, seq, callback, self)
        heapq.heappush(self._heap, (time, seq, event))
        observer = self.observer
        if observer is not None:
            observer.on_schedule(event)
        controller = self.controller
        if controller is not None:
            controller.on_schedule(event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule *callback* at absolute simulated time *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} < now {self._now}"
            )
        seq = self._seq = self._seq + 1
        event = Event(time, seq, callback, self)
        heapq.heappush(self._heap, (time, seq, event))
        observer = self.observer
        if observer is not None:
            observer.on_schedule(event)
        controller = self.controller
        if controller is not None:
            controller.on_schedule(event)
        return event

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the heap drains, *until* is reached, or
        *max_events* have executed.  Returns the final simulated time."""
        if self.controller is not None:
            return self._run_controlled(until, max_events)
        heap = self._heap
        heappop = heapq.heappop
        executed = 0
        while heap:
            if max_events is not None and executed >= max_events:
                break
            entry = heap[0]
            time = entry[0]
            if until is not None and time > until:
                self._now = until
                break
            heappop(heap)
            event = entry[2]
            observer = self.observer
            if observer is not None:
                observer.on_pop(event)
            callback = event.callback
            if callback is None:
                self._cancelled_in_heap -= 1
                continue
            event.callback = None
            self._now = time
            callback()
            executed += 1
        else:
            if until is not None and self._now < until:
                self._now = until
        self._events_executed += executed
        return self._now

    def _run_controlled(self, until: Optional[float],
                        max_events: Optional[int]) -> float:
        """Run loop with a schedule controller attached.

        Whenever two or more live events are ready at the minimal instant,
        the whole tie group is popped and the controller picks which event
        runs; the rest are pushed back with their original ``(time, seq)``
        entries, so the next iteration re-asks the controller (including
        any event the executed callback scheduled at the same instant).
        A controller that always answers 0 reproduces the FIFO order of
        the uncontrolled loop exactly.
        """
        heap = self._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        controller = self.controller
        executed = 0
        while heap:
            if max_events is not None and executed >= max_events:
                break
            time = heap[0][0]
            if until is not None and time > until:
                self._now = until
                break
            # pop the whole tie group at `time` (exact float equality is
            # deliberate: it is the kernel's own notion of "same instant")
            candidates = []
            while heap and heap[0][0] == time:  # noqa: SAT004
                entry = heappop(heap)
                event = entry[2]
                if event.callback is None:
                    self._cancelled_in_heap -= 1
                    observer = self.observer
                    if observer is not None:
                        observer.on_pop(event)
                    continue
                candidates.append(entry)
            if not candidates:
                continue
            if len(candidates) == 1:
                chosen = candidates[0]
            else:
                index = controller.choose(time, [c[2] for c in candidates])
                chosen = candidates[index]
                for entry in candidates:
                    if entry is not chosen:
                        # restored entries never hit the observer: they were
                        # not executed, so on_pop/on_schedule bookkeeping
                        # (e.g. HazardMonitor tie counts) stays balanced;
                        # `entry` is an already-formed (time, seq, event)
                        heappush(heap, entry)  # noqa: SAT007
            event = chosen[2]
            observer = self.observer
            if observer is not None:
                observer.on_pop(event)
            callback = event.callback
            event.callback = None
            self._now = time
            callback()
            executed += 1
        else:
            if until is not None and self._now < until:
                self._now = until
        self._events_executed += executed
        return self._now

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return len(self._heap) - self._cancelled_in_heap
