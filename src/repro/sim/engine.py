"""Deterministic discrete-event simulation kernel.

The kernel is a classic event-heap scheduler.  All distributed components in
this repository (datacenters, Saturn serializers, clients, baselines) are
actors scheduled on a single :class:`Simulator`.  Simulated time is a float
in **milliseconds**, matching the units of the paper's latency tables.

Determinism: events scheduled for the same instant are executed in the order
they were scheduled (a monotonically increasing sequence number breaks ties),
so a given seed always produces the identical execution.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for scheduling errors (e.g. events in the past)."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so that the heap pops them in
    chronological order with FIFO tie-breaking.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when popped."""
        self.cancelled = True


class Simulator:
    """Single-threaded deterministic discrete-event scheduler."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._events_executed = 0
        #: optional instrumentation hook (see repro.analysis.runtime).
        #: When set, it must provide ``on_schedule(event)`` and
        #: ``on_pop(event)``; both are called synchronously, so observers
        #: must not schedule events themselves.
        self.observer: Optional[Any] = None

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (for diagnostics)."""
        return self._events_executed

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule *callback* to run ``delay`` ms from now.

        Returns the :class:`Event`, which can be cancelled.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        event = Event(self._now + delay, next(self._seq), callback)
        heapq.heappush(self._heap, event)
        if self.observer is not None:
            self.observer.on_schedule(event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule *callback* at absolute simulated time *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} < now {self._now}"
            )
        event = Event(time, next(self._seq), callback)
        heapq.heappush(self._heap, event)
        if self.observer is not None:
            self.observer.on_schedule(event)
        return event

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the heap drains, *until* is reached, or
        *max_events* have executed.  Returns the final simulated time."""
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                break
            event = self._heap[0]
            if until is not None and event.time > until:
                self._now = until
                break
            heapq.heappop(self._heap)
            if self.observer is not None:
                self.observer.on_pop(event)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            executed += 1
            self._events_executed += 1
        else:
            if until is not None:
                self._now = max(self._now, until)
        return self._now

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)
