"""Simulated message network.

The network delivers messages between named :class:`~repro.sim.process.Process`
instances with configurable one-way latency.  Two properties matter for
Saturn's correctness and are guaranteed here:

* **FIFO links** — messages between an ordered pair of processes are
  delivered in send order even when latency fluctuates (a later message never
  overtakes an earlier one on the same link).  Saturn's serializer tree
  requires FIFO channels (§5.3 of the paper).
* **Deterministic jitter** — optional jitter is drawn from a seeded RNG
  stream so executions are reproducible.

Latency resolution order for a (src, dst) pair:

1. an explicit per-link override (``set_link_latency`` / injected extra
   delay),
2. the site-level latency matrix (processes carry a *site* such as an EC2
   region; see :meth:`Network.place`),
3. ``default_latency`` (intra-site / unplaced processes).

:class:`Network` is the *simulated* implementation of the
:class:`repro.net.transport.Transport` protocol (``register`` / ``place``
/ ``send``); :class:`repro.net.tcp.TcpTransport` is the real-network one.
Protocol actors hold either implementation through the same three
methods, so everything above this seam is transport-agnostic.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.sim.rng import RngRegistry

__all__ = ["Network", "LatencyModel"]


class LatencyModel:
    """One-way latency between *sites* (e.g. EC2 regions), in ms.

    The matrix is symmetric by construction; intra-site latency defaults to
    ``local_latency``.
    """

    def __init__(self, local_latency: float = 0.5) -> None:
        self._latency: Dict[Tuple[str, str], float] = {}
        self.local_latency = local_latency

    def set(self, a: str, b: str, latency: float) -> None:
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self._latency[(a, b)] = latency
        self._latency[(b, a)] = latency

    def get(self, a: str, b: str) -> float:
        if a == b:
            return self.local_latency
        try:
            return self._latency[(a, b)]
        except KeyError:
            raise KeyError(f"no latency configured between sites {a!r} and {b!r}")

    def sites(self) -> set:
        found = set()
        for a, b in self._latency:
            found.add(a)
            found.add(b)
        return found

    @classmethod
    def from_matrix(cls, sites: list, matrix: list,
                    local_latency: float = 0.5) -> "LatencyModel":
        """Build from a square matrix (row i, col j = latency site i -> j)."""
        model = cls(local_latency=local_latency)
        for i, a in enumerate(sites):
            for j, b in enumerate(sites):
                if i < j:
                    model.set(a, b, matrix[i][j])
        return model


class _LinkState:
    """Per ordered-pair state used to enforce FIFO delivery.

    ``pending`` / ``pending_arrival`` / ``pending_seq`` implement
    same-destination delivery batching: while the most recently scheduled
    simulator event is still this link's un-fired delivery and the next
    message lands at the same arrival instant, the message is appended to
    the pending batch instead of paying for another heap entry.  The
    ``pending_seq == sim.last_seq`` guard means nothing was scheduled in
    between, so the merged delivery order is bit-identical to the
    one-event-per-message order.

    ``held`` buffers messages sent while the link is down (partitioned or
    an endpoint isolated); they are re-sent in order when the outage ends.
    """

    __slots__ = ("last_delivery", "extra_delay", "partitioned",
                 "pending", "pending_arrival", "pending_seq", "held")

    def __init__(self) -> None:
        self.last_delivery = 0.0
        self.extra_delay = 0.0
        self.partitioned = False
        self.pending: Optional[list] = None
        self.pending_arrival = 0.0
        self.pending_seq = -1
        self.held: Optional[list] = None


class Network:
    """Message fabric for all simulated processes."""

    def __init__(self, sim: Simulator, latency_model: Optional[LatencyModel] = None,
                 default_latency: float = 0.5, jitter: float = 0.0,
                 rng: Optional[RngRegistry] = None) -> None:
        self.sim = sim
        self.latency_model = latency_model
        self.default_latency = default_latency
        self.jitter = jitter
        self._rng = (rng or RngRegistry(seed=0)).stream("network-jitter")
        self._processes: Dict[str, Process] = {}
        self._sites: Dict[str, str] = {}
        self._links: Dict[Tuple[str, str], _LinkState] = {}
        #: processes cut off from everyone (n-1 partitions in one flag);
        #: kept as a set so the hot send path pays one truthiness check
        #: when no isolation fault is active.
        self._isolated: set = set()
        self.messages_sent = 0
        self.bytes_sent = 0
        #: optional instrumentation hook (see repro.analysis.runtime).
        #: When set, it must provide ``on_send(src, dst, message, arrival)``
        #: returning a per-link sequence number, plus ``on_deliver(src,
        #: dst, seq, message)`` and ``on_drop(src, dst, message)``
        #: (``on_drop`` is part of the protocol for lossy extensions; the
        #: built-in fault model holds messages across link outages instead
        #: of dropping, so the trace sees the eventual re-send).
        self.trace: Optional[Any] = None
        #: optional bounded delay perturbation (see repro.analysis.mc).
        #: When set, ``perturb(src, dst) -> float`` is called once per
        #: message send and its (non-negative) result is added to the
        #: arrival time.  The FIFO clamp below still applies, so link
        #: discipline is preserved under any perturbation.
        self.perturb: Optional[Any] = None

    # -- registration ------------------------------------------------------

    def register(self, process: Process) -> None:
        if process.name in self._processes:
            raise ValueError(f"duplicate process name {process.name!r}")
        self._processes[process.name] = process

    def place(self, process_name: str, site: str) -> None:
        """Assign a process to a geographic site (latency-matrix row)."""
        self._sites[process_name] = site

    def site_of(self, process_name: str) -> Optional[str]:
        return self._sites.get(process_name)

    def process(self, name: str) -> Process:
        return self._processes[name]

    # -- link control (fault / delay injection) -----------------------------

    def _link(self, src: str, dst: str) -> _LinkState:
        key = (src, dst)
        state = self._links.get(key)
        if state is None:
            state = _LinkState()
            self._links[key] = state
        return state

    def inject_extra_delay(self, src: str, dst: str, extra: float,
                           symmetric: bool = True) -> None:
        """Add *extra* ms on top of the base latency (Fig. 6 experiments)."""
        self._link(src, dst).extra_delay = extra
        if symmetric:
            self._link(dst, src).extra_delay = extra

    def inject_site_delay(self, site_a: str, site_b: str, extra: float) -> None:
        """Add extra delay between every process pair across two sites."""
        for name_a, sa in self._sites.items():
            for name_b, sb in self._sites.items():
                if {sa, sb} == {site_a, site_b} and name_a != name_b:
                    self._link(name_a, name_b).extra_delay = extra

    def partition(self, src: str, dst: str, symmetric: bool = True) -> None:
        """Sever the link until healed.

        Channels are *reliable* FIFO transports (the paper's model, and
        what TCP gives a real deployment): a partition delays messages, it
        does not silently lose them.  Messages sent while the link is down
        are held and re-sent — in order, with fresh latency — when the
        outage ends.  Only a process *crash* loses state, and that is
        announced by the serializers' beacon incarnation numbers; silent
        loss on a live channel would be undetectable by any protocol.
        """
        self._link(src, dst).partitioned = True
        if symmetric:
            self._link(dst, src).partitioned = True

    def heal(self, src: str, dst: str, symmetric: bool = True) -> None:
        self._link(src, dst).partitioned = False
        if symmetric:
            self._link(dst, src).partitioned = False
        self._flush_held(src, dst)
        if symmetric:
            self._flush_held(dst, src)

    def isolate(self, name: str) -> None:
        """Cut *name* off from every other process (both directions).

        Same reliable-channel semantics as :meth:`partition`: traffic to
        and from the isolated process is held, not lost, and delivered
        once it rejoins.
        """
        self._isolated.add(name)

    def rejoin(self, name: str) -> None:
        """Undo :meth:`isolate` and release the traffic held meanwhile
        (messages already in flight at isolation time were unaffected)."""
        self._isolated.discard(name)
        for (src, dst), state in list(self._links.items()):
            if state.held and (src == name or dst == name):
                self._flush_held(src, dst)

    def is_isolated(self, name: str) -> bool:
        return name in self._isolated

    def _link_down(self, src: str, dst: str, state: _LinkState) -> bool:
        return state.partitioned or (bool(self._isolated) and
                                     (src in self._isolated or
                                      dst in self._isolated))

    def _flush_held(self, src: str, dst: str) -> None:
        """Re-send messages held across an outage, preserving send order.

        A no-op while the link is still down from another cause (e.g. the
        far endpoint of a healed link remains isolated); the messages stay
        held until the last obstruction clears.
        """
        state = self._links.get((src, dst))
        if state is None or not state.held:
            return
        if self._link_down(src, dst, state):
            return
        held = state.held
        state.held = None
        for message, size_bytes in held:
            self.send(src, dst, message, size_bytes)

    # -- latency -----------------------------------------------------------

    def base_latency(self, src: str, dst: str) -> float:
        site_src = self._sites.get(src)
        site_dst = self._sites.get(dst)
        if site_src is not None and site_dst is not None and self.latency_model:
            return self.latency_model.get(site_src, site_dst)
        return self.default_latency

    def latency(self, src: str, dst: str) -> float:
        return self._latency(src, dst, self._links.get((src, dst)))

    def _latency(self, src: str, dst: str, state: Optional[_LinkState]) -> float:
        base = self.base_latency(src, dst)
        extra = state.extra_delay if state else 0.0
        jitter = self._rng.uniform(0.0, self.jitter) if self.jitter > 0 else 0.0
        return base + extra + jitter

    # -- sending -----------------------------------------------------------

    def send(self, src: str, dst: str, message: Any, size_bytes: int = 0) -> None:
        """Queue *message* for FIFO delivery from *src* to *dst*."""
        target = self._processes.get(dst)
        if target is None:
            raise KeyError(f"unknown destination process {dst!r}")
        state = self._links.get((src, dst))
        if state is None:
            state = self._link(src, dst)
        if state.partitioned or (self._isolated and
                                 (src in self._isolated or
                                  dst in self._isolated)):
            # reliable channel across an outage: hold for re-send at heal
            # or rejoin time (the trace observes the eventual re-send)
            if state.held is None:
                state.held = []
            state.held.append((message, size_bytes))
            return
        sim = self.sim
        arrival = sim.now + self._latency(src, dst, state)
        perturb = self.perturb
        if perturb is not None:
            extra = perturb(src, dst)
            if extra < 0:
                raise ValueError("delay perturbation must be non-negative")
            arrival += extra
        # FIFO: never deliver before a previously sent message on this link.
        if arrival < state.last_delivery:
            arrival = state.last_delivery
        state.last_delivery = arrival
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        if self.trace is None:
            pending = state.pending
            # exact float equality is deliberate: merging is only safe when
            # the arrival instants are bit-identical.
            if (pending is not None and state.pending_arrival == arrival  # noqa: SAT004
                    and state.pending_seq == sim.last_seq):
                pending.append(message)
                return
            batch = [message]

            def _deliver_batch() -> None:
                if state.pending is batch:
                    state.pending = None
                deliver = target.deliver
                for queued in batch:
                    deliver(src, queued)

            event = sim.schedule_at(arrival, _deliver_batch)
            state.pending = batch
            state.pending_arrival = arrival
            state.pending_seq = event.seq
        else:
            # tracing observes every message individually; batching is
            # disabled so traced runs match the historical event order.
            seq = self.trace.on_send(src, dst, message, arrival)
            sim.schedule_at(arrival, lambda: self._traced_deliver(
                target, src, dst, seq, message))

    def _traced_deliver(self, target: Process, src: str, dst: str,
                        seq: int, message: Any) -> None:
        if self.trace is not None:
            self.trace.on_deliver(src, dst, seq, message)
        target.deliver(src, message)
