"""Actor base class for simulated distributed components.

Every node in the simulated system (frontend, gear, storage server,
serializer, client, ...) is a :class:`Process` with a unique name.  Processes
communicate exclusively through the :class:`~repro.sim.network.Network`,
which invokes :meth:`Process.receive` on delivery.

Despite living under ``repro.sim``, a Process is transport-agnostic: it
only touches its kernel via ``now``/``schedule`` and its network via the
:class:`repro.net.transport.Transport` protocol surface, so the same
actor runs unmodified on the deterministic simulator or on a
:class:`repro.net.kernel.RealtimeKernel` +
:class:`repro.net.tcp.TcpTransport` (one OS process per node).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.sim.engine import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.network import Network

__all__ = ["Process", "RepeatingTimer"]


class Process:
    """A named actor on the simulation kernel.

    Subclasses override :meth:`receive` to handle messages and may use
    :meth:`set_timer` / :meth:`every` for local timeouts.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.network: Optional["Network"] = None
        self._alive = True
        self.restarts = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self._alive

    def crash(self) -> None:
        """Fail-stop: the process silently drops everything from now on."""
        self._alive = False

    def recover(self) -> None:
        self._alive = True

    def restart(self) -> None:
        """Bring a crashed process back (the fail-recover model).

        A :class:`RepeatingTimer` whose tick fired while the process was
        down has stopped permanently, so subclasses override
        :meth:`on_restart` to re-arm their periodic machinery.  Which
        state survives the crash is the subclass's call: a serializer is
        stateless, a datacenter keeps its durable store.
        """
        if self._alive:
            return
        self._alive = True
        self.restarts += 1
        self.on_restart()

    def on_restart(self) -> None:
        """Hook for subclasses: re-arm timers / volatile state after restart."""

    # -- messaging ---------------------------------------------------------

    def attach_network(self, network: "Network") -> None:
        self.network = network
        network.register(self)

    def send(self, to: str, message: Any) -> None:
        """Send *message* to the process named *to* via the network."""
        if not self._alive:
            return
        if self.network is None:
            raise RuntimeError(f"process {self.name} has no network attached")
        self.network.send(self.name, to, message)

    def receive(self, sender: str, message: Any) -> None:
        """Handle an incoming message.  Subclasses override."""
        raise NotImplementedError

    def deliver(self, sender: str, message: Any) -> None:
        """Called by the network; drops messages while crashed."""
        if not self._alive:
            return
        self.receive(sender, message)

    # -- timers ------------------------------------------------------------

    def set_timer(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run *callback* after *delay* ms unless the process has crashed."""

        def _fire() -> None:
            if self._alive:
                callback()

        return self.sim.schedule(delay, _fire)

    def every(self, period: float, callback: Callable[[], None]) -> "RepeatingTimer":
        """Run *callback* every *period* ms, starting one period from now.

        Returns a :class:`RepeatingTimer`; ``cancel()`` stops the chain.
        """
        return RepeatingTimer(self, period, callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class RepeatingTimer:
    """Periodic timer bound to a process; stops when crashed or cancelled."""

    def __init__(self, process: Process, period: float,
                 callback: Callable[[], None]) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self._process = process
        self._period = period
        self._callback = callback
        self._cancelled = False
        self._event = process.sim.schedule(period, self._tick)

    def _tick(self) -> None:
        if self._cancelled or not self._process.alive:
            return
        self._callback()
        self._event = self._process.sim.schedule(self._period, self._tick)

    def cancel(self) -> None:
        self._cancelled = True
        self._event.cancel()
