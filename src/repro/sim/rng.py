"""Seeded random-number streams.

Every stochastic component draws from its own named stream derived from a
single experiment seed, so that adding randomness to one component does not
perturb any other — a standard technique for variance reduction and
reproducibility in discrete-event simulation.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory of independent, deterministically-seeded RNG streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it on first use.

        The stream seed mixes the registry seed and the stream name through
        SHA-256 so streams are statistically independent and stable across
        runs and Python versions (unlike ``hash()``).
        """
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng
