"""Offline causal-consistency verification."""

from repro.verify.checker import ExecutionLog, Violation

__all__ = ["ExecutionLog", "Violation"]
