"""Offline causal-consistency checker.

During a run, datacenters and clients record an :class:`ExecutionLog`:

* every update with its origin and its **true causal past** (the exact set
  of update versions the issuing client had observed — not the conservative
  scalar/vector the protocols use);
* the order in which each datacenter made updates visible;
* every read, with the version returned and the greatest version of that
  key the client had previously observed.

:func:`ExecutionLog.check` then validates two properties:

1. **Causal visibility order** — at every datacenter, an update becomes
   visible only after every update in its causal past that is replicated at
   that datacenter (genuine partial replication: dependencies on items a
   datacenter does not replicate are exempt, §2).
2. **Session monotonicity** — a read never returns a version of a key older
   (in the total label order) than a version of that key the client had
   already observed; with last-writer-wins storage this subsumes
   read-your-writes and monotonic reads.

The eventually consistent baseline genuinely violates (1) under concurrent
cross-datacenter traffic, which the tests use as a positive control.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.label import Label
from repro.core.replication import ReplicationMap

__all__ = ["ExecutionLog", "Violation"]

VersionId = Tuple[float, str]


@dataclass(frozen=True)
class Violation:
    """One detected consistency violation."""

    kind: str       # "causal-order" | "session-monotonicity"
    dc: str
    detail: str


@dataclass
class _UpdateRecord:
    version: VersionId
    key: str
    origin: str
    created_at: float
    deps: FrozenSet[VersionId] = frozenset()


class ExecutionLog:
    """Everything that happened during a run, for offline validation."""

    def __init__(self, replication: ReplicationMap) -> None:
        self.replication = replication
        self.updates: Dict[VersionId, _UpdateRecord] = {}
        #: per-datacenter visibility order (position index per version)
        self._visible_pos: Dict[str, Dict[VersionId, int]] = {}
        self._visible_count: Dict[str, int] = {}
        self._reads: List[Tuple[str, str, str, Optional[VersionId],
                                Optional[VersionId]]] = []

    # ------------------------------------------------------------------
    # recording (called by datacenters and clients)
    # ------------------------------------------------------------------

    def record_update(self, label: Label, origin_dc: str,
                      created_at: float) -> None:
        """A local update was applied at its origin (visible there now)."""
        version = (label.ts, label.src)
        if version not in self.updates:
            self.updates[version] = _UpdateRecord(
                version=version, key=label.target or "", origin=origin_dc,
                created_at=created_at)
        self._mark_visible(origin_dc, version)

    def record_update_deps(self, version: VersionId,
                           deps: FrozenSet[VersionId]) -> None:
        """The issuing client's true causal past for *version*."""
        record = self.updates.get(version)
        if record is not None:
            record.deps = deps
        else:
            # client reply raced ahead of the datacenter hook: store a stub
            self.updates[version] = _UpdateRecord(
                version=version, key="", origin="", created_at=0.0, deps=deps)

    def record_visible(self, label: Label, dc: str, at: float) -> None:
        """A remote update became visible at *dc*."""
        self._mark_visible(dc, (label.ts, label.src))

    def _mark_visible(self, dc: str, version: VersionId) -> None:
        positions = self._visible_pos.setdefault(dc, {})
        if version in positions:
            return
        positions[version] = self._visible_count.get(dc, 0)
        self._visible_count[dc] = positions[version] + 1

    def record_read(self, client_id: str, dc: str, key: str,
                    returned: Optional[VersionId],
                    observed_max: Optional[VersionId]) -> None:
        self._reads.append((client_id, dc, key, returned, observed_max))

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def check(self) -> List[Violation]:
        violations = list(self._check_causal_order())
        violations.extend(self._check_sessions())
        return violations

    def _check_causal_order(self):
        """A dependency is satisfied when it — or, with last-writer-wins
        registers, any *newer* version of the same key (the causal+
        convergence rule) — became visible earlier."""
        for dc, positions in self._visible_pos.items():
            # per-key visible versions at this datacenter, by position
            by_key: Dict[str, List[Tuple[int, VersionId]]] = {}
            for version, pos in positions.items():
                record = self.updates.get(version)
                if record is not None and record.key:
                    by_key.setdefault(record.key, []).append((pos, version))
            for version, pos in positions.items():
                record = self.updates.get(version)
                if record is None:
                    continue
                for dep in record.deps:
                    dep_record = self.updates.get(dep)
                    if dep_record is None:
                        continue
                    if not self.replication.is_replicated_at(dep_record.key, dc):
                        continue  # genuine partial replication exemption
                    satisfied = any(
                        p < pos and v >= dep
                        for p, v in by_key.get(dep_record.key, ()))
                    if not satisfied:
                        yield Violation(
                            kind="causal-order", dc=dc,
                            detail=(f"update {version} visible at {dc} before "
                                    f"its dependency {dep}"))

    def check_completeness(self) -> List[Violation]:
        """No update may be lost: every recorded update must have become
        visible at every datacenter that replicates its key.

        Separate from :meth:`check` because it is only sound once the run
        has quiesced (labels still in flight at the horizon would be false
        positives); the model checker's scenarios guarantee that, the
        general harness does not.  Stub records (deps known but the origin
        hook never fired) are skipped.
        """
        violations: List[Violation] = []
        for version, record in sorted(self.updates.items()):
            if not record.key or not record.origin:
                continue
            for dc in sorted(self.replication.replicas(record.key)):
                if version not in self._visible_pos.get(dc, {}):
                    violations.append(Violation(
                        kind="completeness", dc=dc,
                        detail=(f"update {version} of key {record.key!r} "
                                f"(origin {record.origin}) never became "
                                f"visible")))
        return violations

    def _check_sessions(self):
        for client_id, dc, key, returned, observed_max in self._reads:
            if observed_max is None:
                continue
            if returned is None or returned < observed_max:
                yield Violation(
                    kind="session-monotonicity", dc=dc,
                    detail=(f"client {client_id} read {key} at {dc}: got "
                            f"{returned}, had observed {observed_max}"))

    # ------------------------------------------------------------------

    def visible_counts(self) -> Dict[str, int]:
        return dict(self._visible_count)

    def visibility_positions(self, dc: str) -> Dict[VersionId, int]:
        """Version -> visibility position at *dc* (empty if unknown dc).

        Used by the runtime hazard checker to cross-check that updates
        became visible in label-delivery order."""
        return dict(self._visible_pos.get(dc, {}))

    def read_count(self) -> int:
        return len(self._reads)
