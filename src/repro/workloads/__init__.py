"""Workload generators: synthetic (§7.3) and Facebook-based (§7.4)."""

from repro.workloads.correlation import CORRELATION_PATTERNS, build_replication
from repro.workloads.facebook import (FacebookWorkload, OPERATION_MIX,
                                      generate_social_graph)
from repro.workloads.ops import ReadOp, RemoteReadOp, UpdateOp
from repro.workloads.partitioning import (assign_masters,
                                          build_social_replication, user_group)
from repro.workloads.synthetic import SyntheticWorkload

__all__ = [
    "CORRELATION_PATTERNS", "build_replication", "FacebookWorkload",
    "OPERATION_MIX", "generate_social_graph", "ReadOp", "RemoteReadOp",
    "UpdateOp", "assign_masters", "build_social_replication", "user_group",
    "SyntheticWorkload",
]
