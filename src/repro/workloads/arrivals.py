"""Arrival models: how client operations are paced.

The paper (like Basho Bench) drives every experiment *closed-loop*: each
client issues its next operation the instant the previous one completes,
so the offered load can never exceed the service rate and the system can
never be pushed past saturation.  This module makes the pacing policy an
explicit, swappable object:

* :class:`ClosedLoop` — the historical behaviour (zero think time); the
  default everywhere, byte-identical to the pre-refactor op streams.
* :class:`PoissonArrivals` — an *open-loop* homogeneous Poisson request
  process per datacenter: operations arrive at a configured rate
  regardless of how fast (or whether) earlier ones finish, which is what
  lets the overload study observe queue growth, backpressure, and the
  throughput cliff.
* :class:`DiurnalArrivals` — a non-homogeneous Poisson process whose
  rate follows a sinusoidal day curve (peak-to-trough ratio
  ``peak_factor``), sampled by thinning against the peak rate.

Open-loop models are consumed by
:class:`repro.workloads.openloop.OpenLoopSource`, which schedules the
arrival events on the simulation kernel and dispatches each one to an
idle client (growing the client pool on demand — a true open loop has
unbounded concurrency).  All draws come from named
:class:`~repro.sim.rng.RngRegistry` streams, so arrival sequences are
deterministic per (seed, datacenter).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["ClosedLoop", "PoissonArrivals", "DiurnalArrivals"]


@dataclass(frozen=True)
class ClosedLoop:
    """Zero-think-time closed loop (the pre-open-loop behaviour)."""

    open_loop = False


@dataclass(frozen=True)
class PoissonArrivals:
    """Homogeneous Poisson arrivals at ``rate_ops_s`` per datacenter."""

    rate_ops_s: float
    open_loop = True

    def __post_init__(self) -> None:
        if self.rate_ops_s <= 0:
            raise ValueError("rate_ops_s must be positive")

    def rate_at(self, now_ms: float) -> float:
        """Instantaneous offered rate (ops/s) at simulated time *now*."""
        return self.rate_ops_s

    def peak_rate(self) -> float:
        return self.rate_ops_s

    def next_interarrival(self, stream, now_ms: float) -> float:
        """Milliseconds until the next arrival after *now_ms*."""
        return stream.expovariate(self.rate_ops_s / 1000.0)


@dataclass(frozen=True)
class DiurnalArrivals:
    """Sinusoidal diurnal curve around ``rate_ops_s`` (mean rate).

    ``rate(t) = rate_ops_s · (1 + a·sin(2πt/period))`` with the
    amplitude ``a`` chosen so peak/trough equals ``peak_factor``.
    Sampled by thinning: candidate gaps at the peak rate, each kept with
    probability ``rate(t)/peak``, which preserves exactness for any
    bounded rate curve.
    """

    rate_ops_s: float
    peak_factor: float = 2.0
    period_ms: float = 1000.0
    phase: float = 0.0
    open_loop = True

    def __post_init__(self) -> None:
        if self.rate_ops_s <= 0:
            raise ValueError("rate_ops_s must be positive")
        if self.peak_factor < 1.0:
            raise ValueError("peak_factor must be >= 1")
        if self.period_ms <= 0:
            raise ValueError("period_ms must be positive")

    @property
    def amplitude(self) -> float:
        # peak/trough = (1+a)/(1-a)  =>  a = (pf-1)/(pf+1)
        return (self.peak_factor - 1.0) / (self.peak_factor + 1.0)

    def rate_at(self, now_ms: float) -> float:
        angle = 2.0 * math.pi * (now_ms / self.period_ms) + self.phase
        return self.rate_ops_s * (1.0 + self.amplitude * math.sin(angle))

    def peak_rate(self) -> float:
        return self.rate_ops_s * (1.0 + self.amplitude)

    def next_interarrival(self, stream, now_ms: float) -> float:
        peak = self.peak_rate()
        elapsed = 0.0
        while True:
            elapsed += stream.expovariate(peak / 1000.0)
            if stream.random() * peak <= self.rate_at(now_ms + elapsed):
                return elapsed
