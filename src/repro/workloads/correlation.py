"""Datacenter correlation patterns (§7.3.2, "Correlation").

The paper defines the correlation between two datacenters as the amount of
data they share, and studies four placement patterns:

* **exponential** — correlation decays exponentially with inter-datacenter
  latency: a prominent partial geo-replication scenario;
* **proportional** — linear decay with latency: a smoother distribution;
* **uniform** — every pair of datacenters equally correlated;
* **full** — full geo-replication (every key everywhere).

In addition, a **degree** pattern replicates each group at its home plus
the ``degree - 1`` nearest datacenters, which is the knob used by the
Fig. 1b motivation experiment (replication degree 5 -> 2).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.core.replication import ReplicationMap
from repro.sim.rng import RngRegistry

__all__ = ["build_replication", "CORRELATION_PATTERNS"]

CORRELATION_PATTERNS = ("exponential", "proportional", "uniform", "full", "degree")


def _inclusion_probability(pattern: str, latency: float, max_latency: float) -> float:
    if pattern == "exponential":
        # tau chosen so nearby regions (~10 ms) are almost always shared and
        # the furthest (~160 ms) almost never are
        return 2.718281828 ** (-latency / 30.0)
    if pattern == "proportional":
        return max(0.0, 1.0 - latency / max_latency)
    if pattern == "uniform":
        return 0.35
    raise ValueError(f"unknown probabilistic pattern {pattern!r}")


def build_replication(datacenters: Sequence[str], pattern: str,
                      latency: Callable[[str, str], float],
                      rng: RngRegistry, groups_per_dc: int = 4,
                      degree: Optional[int] = None,
                      min_degree: int = 1) -> ReplicationMap:
    """Build a :class:`ReplicationMap` with ``groups_per_dc`` groups homed at
    each datacenter, placed according to *pattern*.

    ``degree`` is required by (and only used with) the ``"degree"`` pattern.
    """
    if pattern not in CORRELATION_PATTERNS:
        raise ValueError(f"unknown correlation pattern {pattern!r}; "
                         f"expected one of {CORRELATION_PATTERNS}")
    replication = ReplicationMap(datacenters)
    stream = rng.stream(f"correlation-{pattern}")
    max_latency = max((latency(a, b) for a in datacenters for b in datacenters
                       if a != b), default=1.0)
    for home in datacenters:
        others_by_distance = sorted((dc for dc in datacenters if dc != home),
                                    key=lambda dc: (latency(home, dc), dc))
        for index in range(groups_per_dc):
            group = f"g{home}.{index}"
            if pattern == "full":
                replicas = list(datacenters)
            elif pattern == "degree":
                if degree is None:
                    raise ValueError("'degree' pattern requires degree=")
                replicas = [home] + others_by_distance[:max(0, degree - 1)]
            else:
                replicas = [home]
                for dc in others_by_distance:
                    p = _inclusion_probability(pattern, latency(home, dc),
                                               max_latency)
                    if stream.random() < p:
                        replicas.append(dc)
                while len(replicas) < min_degree:
                    for dc in others_by_distance:
                        if dc not in replicas:
                            replicas.append(dc)
                            break
            replication.set_group(group, replicas)
    return replication
