"""Facebook-based social networking benchmark (§7.4).

The paper replays a social workload over the New Orleans Facebook dataset
(61,096 users, 905,565 edges — not redistributable), with operation
frequencies from the measurement study of Benevenuto et al. [15], data
partitioned across the seven datacenters by the SPAR algorithm [46] with a
bounded number of replicas per user.

We generate a synthetic scale-free graph with the same density knob
(Barabási–Albert preferential attachment: the original averages ~14.8
friends per user), run the same bounded partitioner, and drive the same
kind of operation mix.  Operation categories (shares derived from [15],
where browsing dominates):

=====================  =====  ==========================================
operation              share  behaviour
=====================  =====  ==========================================
browse own profile      30%   read a key of the client's own user
browse friend updates   47%   read a key of a random friend
universal search         5%   read a key of a random user anywhere
edit own settings        10%   update a key of the client's own user
write on friend's wall    8%   update a friend's key (local replicas only)
=====================  =====  ==========================================

Reads of data not replicated at the client's datacenter become remote reads
(the §4.4 migration dance), so the replication bound directly controls the
remote-read rate — exactly the knob Fig. 8a sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.core.replication import ReplicationMap
from repro.sim.rng import RngRegistry
from repro.workloads.ops import ReadOp, RemoteReadOp, UpdateOp
from repro.workloads.partitioning import (assign_masters,
                                          build_social_replication,
                                          user_group)

__all__ = ["FacebookWorkload", "generate_social_graph", "OPERATION_MIX"]

#: (name, share, is_write) — shares sum to 1.0
OPERATION_MIX = (
    ("browse_own", 0.30, False),
    ("browse_friend", 0.47, False),
    ("search_random", 0.05, False),
    ("edit_own", 0.10, True),
    ("write_friend", 0.08, True),
)


def generate_social_graph(num_users: int, attachment: int,
                          rng: RngRegistry) -> Dict[int, Set[int]]:
    """Barabási–Albert preferential-attachment graph as adjacency sets.

    Implemented directly (repeated-nodes method) so the substrate has no
    hard dependency on networkx.
    """
    if num_users <= attachment:
        raise ValueError("num_users must exceed the attachment parameter")
    stream = rng.stream("social-graph")
    adjacency: Dict[int, Set[int]] = {u: set() for u in range(num_users)}
    repeated: List[int] = []
    # seed clique over the first `attachment + 1` users
    for u in range(attachment + 1):
        for v in range(u + 1, attachment + 1):
            adjacency[u].add(v)
            adjacency[v].add(u)
            repeated.extend((u, v))
    for u in range(attachment + 1, num_users):
        targets: Set[int] = set()
        while len(targets) < attachment:
            candidate = stream.choice(repeated)
            if candidate != u:
                targets.add(candidate)
        for v in targets:
            adjacency[u].add(v)
            adjacency[v].add(u)
            repeated.extend((u, v))
    return adjacency


@dataclass
class FacebookWorkload:
    """Social-network workload over a partitioned synthetic graph."""

    num_users: int = 1500
    attachment: int = 7
    min_replicas: int = 2
    max_replicas: int = 5
    value_size: int = 64
    keys_per_user: int = 4

    def __post_init__(self) -> None:
        self._adjacency: Optional[Dict[int, Set[int]]] = None
        self._masters: Optional[Dict[int, str]] = None
        self._replication: Optional[ReplicationMap] = None
        self._users_by_dc: Dict[str, List[int]] = {}
        self._client_counter: Dict[str, int] = {}

    # ------------------------------------------------------------------

    def replication_map(self, datacenters: Sequence[str],
                        latency: Callable[[str, str], float],
                        rng: RngRegistry) -> ReplicationMap:
        self._adjacency = generate_social_graph(self.num_users,
                                                self.attachment, rng)
        self._masters = assign_masters(self._adjacency, datacenters)
        self._replication = build_social_replication(
            self._adjacency, self._masters, datacenters, latency,
            min_replicas=self.min_replicas, max_replicas=self.max_replicas)
        self._users_by_dc = {dc: [] for dc in datacenters}
        for user, master in sorted(self._masters.items()):
            self._users_by_dc[master].append(user)
        return self._replication

    @property
    def masters(self) -> Dict[int, str]:
        if self._masters is None:
            raise RuntimeError("replication_map() must run first")
        return self._masters

    @property
    def adjacency(self) -> Dict[int, Set[int]]:
        if self._adjacency is None:
            raise RuntimeError("replication_map() must run first")
        return self._adjacency

    # ------------------------------------------------------------------

    def client_generator(self, dc_name: str, replication: ReplicationMap,
                         rng: RngRegistry,
                         latency: Callable[[str, str], float],
                         stream_name: str) -> Callable[[object], object]:
        if self._replication is None:
            raise RuntimeError("replication_map() must run first")
        stream = rng.stream(stream_name)
        local_users = self._users_by_dc.get(dc_name) or sorted(self.masters)
        index = self._client_counter.get(dc_name, 0)
        self._client_counter[dc_name] = index + 1
        me = local_users[index % len(local_users)]
        my_friends = sorted(self.adjacency[me])
        all_users = self.num_users

        def _key(user: int) -> str:
            return f"{user_group(user)}:{stream.randrange(self.keys_per_user)}"

        def _read(user: int) -> object:
            group = user_group(user)
            if dc_name in replication.replicas_of_group(group):
                return ReadOp(key=_key(user))
            replicas = replication.replicas_of_group(group)
            target = min(replicas, key=lambda dc: (latency(dc_name, dc), dc))
            return RemoteReadOp(key=_key(user), target_dc=target)

        def _local_write(user: int) -> object:
            """Write if *user*'s data is local, else browse instead."""
            group = user_group(user)
            if dc_name in replication.replicas_of_group(group):
                return UpdateOp(key=_key(user), value_size=self.value_size)
            return _read(user)

        def _next(client: object) -> object:
            roll = stream.random()
            cumulative = 0.0
            for name, share, _ in OPERATION_MIX:
                cumulative += share
                if roll < cumulative:
                    break
            else:
                name = OPERATION_MIX[-1][0]
            if name == "browse_own":
                return ReadOp(key=_key(me))
            if name == "browse_friend" and my_friends:
                return _read(stream.choice(my_friends))
            if name == "search_random":
                return _read(stream.randrange(all_users))
            if name == "edit_own":
                return UpdateOp(key=_key(me), value_size=self.value_size)
            if name == "write_friend" and my_friends:
                return _local_write(stream.choice(my_friends))
            return ReadOp(key=_key(me))

        return _next
