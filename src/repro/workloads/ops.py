"""Client operation types issued by workload generators."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ReadOp", "UpdateOp", "RemoteReadOp"]


@dataclass(frozen=True)
class ReadOp:
    """Read a key replicated at the client's current datacenter."""

    key: str


@dataclass(frozen=True)
class UpdateOp:
    """Update a key replicated at the client's current datacenter."""

    key: str
    value_size: int


@dataclass(frozen=True)
class RemoteReadOp:
    """Read a key not replicated locally: migrate to *target_dc*, attach,
    read, migrate back, and re-attach at the home datacenter."""

    key: str
    target_dc: str
