"""Social-graph partitioning with bounded replication (§7.4).

The paper distributes the Facebook dataset across datacenters with the
algorithm of Pujol et al. [46] (SPAR), "augmented to limit the maximum
number of replicas each partition may have".  This module implements the
same idea:

1. **Master placement** — users are assigned to datacenters greedily (in
   decreasing-degree order) so that each user lands where most of their
   already-placed friends are, under a balance cap.  This maximizes the
   locality of a user and her friends, minimizing remote reads.
2. **Bounded replication** — a user's data is replicated at the master
   datacenters of her friends (so friend browsing is local), capped at
   ``max_replicas`` (keeping the datacenters hosting most friends, with
   geographically nearest datacenters breaking ties) and padded to
   ``min_replicas``.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, List, Sequence, Set

from repro.core.replication import ReplicationMap

__all__ = ["assign_masters", "build_social_replication", "user_group"]


def user_group(user: int) -> str:
    """Replication-map group name for a user's data."""
    return f"gu{user}"


def assign_masters(adjacency: Dict[int, Set[int]], datacenters: Sequence[str],
                   balance_slack: float = 1.10) -> Dict[int, str]:
    """Greedy friend-locality master placement with a balance cap."""
    if not datacenters:
        raise ValueError("need at least one datacenter")
    capacity = int(len(adjacency) / len(datacenters) * balance_slack) + 1
    load = {dc: 0 for dc in datacenters}
    masters: Dict[int, str] = {}
    # high-degree users first: they anchor their communities
    order = sorted(adjacency, key=lambda u: (-len(adjacency[u]), u))
    for user in order:
        votes = Counter()
        for friend in adjacency[user]:
            master = masters.get(friend)
            if master is not None:
                votes[master] += 1
        # candidates under the balance cap, preferring friend-heavy ones;
        # ties (and friendless users) go to the least-loaded datacenter
        best = None
        best_key = None
        for dc in datacenters:
            if load[dc] >= capacity:
                continue
            key = (-votes.get(dc, 0), load[dc], dc)
            if best_key is None or key < best_key:
                best_key = key
                best = dc
        if best is None:  # every datacenter at cap: pick least loaded
            best = min(load, key=lambda dc: (load[dc], dc))
        masters[user] = best
        load[best] += 1
    return masters


def build_social_replication(adjacency: Dict[int, Set[int]],
                             masters: Dict[int, str],
                             datacenters: Sequence[str],
                             latency: Callable[[str, str], float],
                             min_replicas: int = 2,
                             max_replicas: int = 5) -> ReplicationMap:
    """Replica sets per user group: master + friends' masters, bounded."""
    if min_replicas < 1:
        raise ValueError("min_replicas must be >= 1")
    if max_replicas < min_replicas:
        raise ValueError("max_replicas must be >= min_replicas")
    max_replicas = min(max_replicas, len(datacenters))
    replication = ReplicationMap(datacenters)
    for user, friends in adjacency.items():
        home = masters[user]
        votes = Counter()
        for friend in friends:
            votes[masters[friend]] += 1
        votes.pop(home, None)
        # most-befriended datacenters first, nearest-first tie-break
        ranked = sorted(votes, key=lambda dc: (-votes[dc], latency(home, dc), dc))
        replicas: List[str] = [home] + ranked[:max_replicas - 1]
        if len(replicas) < min_replicas:
            for dc in sorted(datacenters,
                             key=lambda d: (latency(home, d), d)):
                if dc not in replicas:
                    replicas.append(dc)
                if len(replicas) >= min_replicas:
                    break
        replication.set_group(user_group(user), replicas)
    return replication
