"""Streaming million-user social workload (ROADMAP item 1).

The materialized Facebook-like generator (:mod:`repro.workloads.facebook`)
builds the full adjacency structure up front, which caps it near the
paper's 61k users: ten million users at ~15 friends each would be a
10^8-entry edge set.  This module scales the same workload shape to
millions of users by *sampling* the graph on demand:

* :class:`StreamingSocialGraph` — a seeded, deterministic power-law graph
  in the Barabási–Albert family.  Nothing is materialized: a user's
  friend list is derived from per-user hash-seeded randomness the first
  time it is needed, so memory grows with the number of *touched* users
  (times their degree), never with the edge count.

  The construction uses the static reformulation of preferential
  attachment: user ``u`` directs its ``attachment`` edges at targets
  ``v = floor(u * U^2)`` with ``U`` uniform on (0, 1), which reproduces
  the BA attachment kernel ``P(v) ∝ 1/(2·sqrt(u·v))`` — degree of ``v``
  at time ``u`` grows as ``sqrt(u/v)`` — hence the same mean degree
  ``2·attachment`` and the same ``P(D > k) ∝ k^-2`` tail as the
  materialized generator.  In-edges are sampled from the matching
  marginal: the in-degree of ``u`` is Poisson with the analytic mean
  ``attachment · (sqrt(u+1) - sqrt(u)) · 2(sqrt(N) - sqrt(u+1))`` and
  in-neighbours follow the ``1/sqrt(w)`` density on ``(u, N)``.  Edge
  *reciprocity* is approximated (``w`` appearing in ``u``'s friend list
  does not force ``u`` into ``w``'s), which the workload never observes:
  it only needs each user's friend list to be stable and the population's
  degree distribution to match — both pinned by property tests.

* :class:`IncrementalPartitioner` — the SPAR-like greedy placement of
  :func:`repro.workloads.partitioning.assign_masters`, computed lazily
  per user instead of globally: a user's master is the datacenter where
  most of its (already-placed) out-neighbours live, under the same
  ``balance_slack`` capacity cap.  Out-neighbour ids strictly decrease,
  so the recursion grounds in the seed clique; results are memoized
  permanently, which makes the assignment deterministic for a fixed
  query sequence (and every simulated run issues a deterministic query
  sequence).

* :class:`StreamingReplicationMap` — a :class:`ReplicationMap` that
  computes a user group's replica set on first lookup (master + the
  friends' masters, capped/padded exactly like
  :func:`~repro.workloads.partitioning.build_social_replication`).

* :class:`StreamingFacebookWorkload` — drop-in workload with the same
  operation mix as :class:`~repro.workloads.facebook.FacebookWorkload`,
  usable at ``num_users=10**6`` and beyond.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.replication import ReplicationMap
from repro.sim.rng import RngRegistry
from repro.workloads.facebook import OPERATION_MIX
from repro.workloads.ops import ReadOp, RemoteReadOp, UpdateOp
from repro.workloads.partitioning import user_group

__all__ = ["StreamingSocialGraph", "IncrementalPartitioner",
           "StreamingReplicationMap", "StreamingFacebookWorkload"]


class StreamingSocialGraph:
    """On-demand scale-free social graph (no materialized edge set).

    Every per-user draw comes from a fresh ``random.Random`` seeded by
    SHA-256 over ``(seed, user)`` — the same scheme as
    :class:`~repro.sim.rng.RngRegistry` — so ``friends(u)`` is a pure
    function of ``(seed, u)``: deterministic across runs, query orders,
    and Python versions.
    """

    def __init__(self, num_users: int, attachment: int = 7,
                 seed: int = 0) -> None:
        if num_users <= attachment:
            raise ValueError("num_users must exceed the attachment parameter")
        if attachment < 1:
            raise ValueError("attachment must be positive")
        self.num_users = num_users
        self.attachment = attachment
        self.seed = seed
        self._sqrt_n = math.sqrt(num_users)
        #: memoized friend lists for *touched* users only
        self._friends: Dict[int, Tuple[int, ...]] = {}
        self._out: Dict[int, Tuple[int, ...]] = {}

    # -- seeded per-user randomness -----------------------------------------

    def _rng_for(self, user: int, purpose: str) -> random.Random:
        digest = hashlib.sha256(
            f"{self.seed}:sg:{purpose}:{user}".encode()).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    # -- out-edges (the preferential-attachment draws) -----------------------

    def out_neighbors(self, user: int) -> Tuple[int, ...]:
        """The ``attachment`` users *user* befriended on arrival.

        Users ``0..attachment`` form the seed clique (as in the
        materialized generator); every later user directs its edges at
        ``floor(user * U^2)``, the static equivalent of preferential
        attachment.  Always a subset of ``range(user)`` (plus the clique
        for early users), so recursions over out-edges terminate.
        """
        self._check(user)
        cached = self._out.get(user)
        if cached is not None:
            return cached
        m = self.attachment
        if user <= m:
            out = tuple(v for v in range(m + 1) if v != user)
        else:
            rnd = self._rng_for(user, "out")
            targets: List[int] = []
            seen = set()
            while len(targets) < m:
                v = int(user * rnd.random() ** 2)
                if v not in seen:
                    seen.add(v)
                    targets.append(v)
            out = tuple(targets)
        self._out[user] = out
        return out

    # -- in-edges (sampled from the analytic marginal) -----------------------

    def _expected_in_degree(self, user: int) -> float:
        """E[#users w > user with user in out_neighbors(w)].

        ``P(floor(w·U²) = user) = sqrt((user+1)/w) - sqrt(user/w)``;
        summing ``attachment`` draws over ``w`` in ``(user, N)`` gives
        ``m · (sqrt(user+1) - sqrt(user)) · 2(sqrt(N) - sqrt(user+1))``
        (≈ ``m·(sqrt(N/user) - 1)`` for large *user* — the classic BA
        in-degree, whose population tail is ``P(D > k) ∝ k^-2``).
        """
        root_next = math.sqrt(user + 1)
        width = max(0.0, self._sqrt_n - root_next)
        return (self.attachment * (root_next - math.sqrt(user)) * 2.0 * width)

    @staticmethod
    def _poisson(rnd: random.Random, lam: float) -> int:
        if lam <= 0.0:
            return 0
        if lam > 64.0:
            # normal approximation; exact Knuth would loop O(lam) times
            return max(0, int(round(lam + math.sqrt(lam) * rnd.gauss(0, 1))))
        threshold = math.exp(-lam)
        count, product = 0, rnd.random()
        while product > threshold:
            count += 1
            product *= rnd.random()
        return count

    def in_neighbors(self, user: int) -> Tuple[int, ...]:
        """Sampled users ``w > user`` that befriended *user* on arrival.

        Count is Poisson with the analytic mean; each neighbour is drawn
        by inverse transform from the ``1/sqrt(w)`` density on
        ``(user, N)``: ``w = floor((sqrt(user+1) + U·(sqrt(N) -
        sqrt(user+1)))²)``.
        """
        rnd = self._rng_for(user, "in")
        count = self._poisson(rnd, self._expected_in_degree(user))
        low = math.sqrt(user + 1)
        span = self._sqrt_n - low
        if span <= 0.0 or count == 0:
            return ()
        neighbors: List[int] = []
        seen = set()
        attempts = 0
        limit = 4 * count + 16
        while len(neighbors) < count and attempts < limit:
            attempts += 1
            w = int((low + rnd.random() * span) ** 2)
            if user < w < self.num_users and w not in seen:
                seen.add(w)
                neighbors.append(w)
        return tuple(neighbors)

    # -- the public friend list ---------------------------------------------

    def friends(self, user: int) -> Tuple[int, ...]:
        """Deterministic sorted friend list of *user* (memoized)."""
        self._check(user)
        cached = self._friends.get(user)
        if cached is None:
            merged = set(self.out_neighbors(user))
            merged.update(self.in_neighbors(user))
            merged.discard(user)
            cached = tuple(sorted(merged))
            self._friends[user] = cached
        return cached

    def degree(self, user: int) -> int:
        return len(self.friends(user))

    def touched_users(self) -> int:
        """Users whose friend list has been materialized so far."""
        return len(self._friends)

    def _check(self, user: int) -> None:
        if not 0 <= user < self.num_users:
            raise ValueError(f"user {user} out of range [0, {self.num_users})")


class IncrementalPartitioner:
    """Lazy SPAR-like master placement with the greedy balance cap.

    Mirrors :func:`repro.workloads.partitioning.assign_masters`: a user
    goes where most of its already-placed friends are, unless that
    datacenter is at capacity (``num_users/len(datacenters) ·
    balance_slack + 1``), in which case the least-loaded datacenter under
    the cap wins.  Votes come from the user's *out*-neighbours (strictly
    smaller ids), so placement recursion terminates at the seed clique;
    each answer is memoized permanently, making the whole assignment a
    deterministic function of the (deterministic) query sequence.
    """

    def __init__(self, graph: StreamingSocialGraph,
                 datacenters: Sequence[str],
                 balance_slack: float = 1.10) -> None:
        if not datacenters:
            raise ValueError("need at least one datacenter")
        self.graph = graph
        self.datacenters = list(datacenters)
        self.capacity = int(graph.num_users / len(datacenters)
                            * balance_slack) + 1
        self._load = {dc: 0 for dc in self.datacenters}
        self._masters: Dict[int, str] = {}

    def master_of(self, user: int) -> str:
        cached = self._masters.get(user)
        if cached is not None:
            return cached
        # iterative DFS over the out-edge closure (strictly decreasing ids
        # outside the seed clique), so a million-user chain cannot hit the
        # recursion limit.  The seed clique is cyclic, hence the
        # in-progress set: a node already on the stack is not re-pushed,
        # and its vote simply isn't placed yet when a clique-mate is
        # assigned — same tie-breaking as the materialized partitioner,
        # which also assigns the seed users in discovery order.
        stack = [user]
        visiting = {user}
        while stack:
            top = stack[-1]
            if top in self._masters:
                stack.pop()
                continue
            pending = [v for v in self.graph.out_neighbors(top)
                       if v not in self._masters and v not in visiting]
            if pending:
                stack.extend(pending)
                visiting.update(pending)
                continue
            stack.pop()
            self._assign(top)
        return self._masters[user]

    def _assign(self, user: int) -> None:
        votes: Dict[str, int] = {}
        for friend in self.graph.out_neighbors(user):
            master = self._masters.get(friend)
            if master is not None:
                votes[master] = votes.get(master, 0) + 1
        best = None
        best_key = None
        for dc in self.datacenters:
            if self._load[dc] >= self.capacity:
                continue
            key = (-votes.get(dc, 0), self._load[dc], dc)
            if best_key is None or key < best_key:
                best_key = key
                best = dc
        if best is None:  # every datacenter at cap: pick least loaded
            best = min(self._load, key=lambda dc: (self._load[dc], dc))
        self._masters[user] = best
        self._load[best] += 1

    def load(self) -> Dict[str, int]:
        return dict(self._load)

    def assigned_users(self) -> int:
        return len(self._masters)


class StreamingReplicationMap(ReplicationMap):
    """Replica sets computed on first lookup (lazy ``gu<user>`` groups).

    Same policy as
    :func:`~repro.workloads.partitioning.build_social_replication`:
    master first, then the friends' masters ranked by friend count
    (nearest-first tie-break), capped at ``max_replicas`` and padded to
    ``min_replicas`` with the geographically nearest datacenters.
    Results go straight into the inherited ``_group_replicas`` memo —
    *not* through :meth:`set_group`, which would clear the shared
    interest cache on every new user — safe because a group's answer is
    deterministic and never changes.
    """

    def __init__(self, datacenters: Sequence[str],
                 graph: StreamingSocialGraph,
                 partitioner: IncrementalPartitioner,
                 latency: Callable[[str, str], float],
                 min_replicas: int = 2, max_replicas: int = 5) -> None:
        super().__init__(datacenters)
        if min_replicas < 1:
            raise ValueError("min_replicas must be >= 1")
        if max_replicas < min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        self.graph = graph
        self.partitioner = partitioner
        self.latency = latency
        self.min_replicas = min_replicas
        self.max_replicas = min(max_replicas, len(self.datacenters))

    def replicas_of_group(self, group):
        cached = self._group_replicas.get(group)
        if cached is not None:
            return cached
        user = self._parse_user(group)
        if user is None:
            return self._default
        replicas = frozenset(self._replicas_for_user(user))
        self._group_replicas[group] = replicas
        return replicas

    def _parse_user(self, group: str) -> Optional[int]:
        if not group.startswith("gu"):
            return None
        try:
            user = int(group[2:])
        except ValueError:
            return None
        return user if 0 <= user < self.graph.num_users else None

    def _replicas_for_user(self, user: int) -> List[str]:
        home = self.partitioner.master_of(user)
        votes: Dict[str, int] = {}
        for friend in self.graph.friends(user):
            master = self.partitioner.master_of(friend)
            if master != home:
                votes[master] = votes.get(master, 0) + 1
        latency = self.latency
        ranked = sorted(votes, key=lambda dc: (-votes[dc],
                                               latency(home, dc), dc))
        replicas = [home] + ranked[:self.max_replicas - 1]
        if len(replicas) < self.min_replicas:
            for dc in sorted(self.datacenters,
                             key=lambda d: (latency(home, d), d)):
                if dc not in replicas:
                    replicas.append(dc)
                if len(replicas) >= self.min_replicas:
                    break
        return replicas


@dataclass
class StreamingFacebookWorkload:
    """The §7.4 social workload at streaming scale (millions of users).

    Same knobs and operation mix as
    :class:`~repro.workloads.facebook.FacebookWorkload`; the difference
    is purely representational — graph, partitioning, and replication are
    all computed lazily, so booting a 10⁶-user workload touches O(clients
    × degree) users, not O(num_users).
    """

    num_users: int = 1_000_000
    attachment: int = 7
    min_replicas: int = 2
    max_replicas: int = 5
    value_size: int = 64
    keys_per_user: int = 4
    balance_slack: float = 1.10

    def __post_init__(self) -> None:
        self._graph: Optional[StreamingSocialGraph] = None
        self._partitioner: Optional[IncrementalPartitioner] = None
        self._replication: Optional[StreamingReplicationMap] = None

    # ------------------------------------------------------------------

    def replication_map(self, datacenters: Sequence[str],
                        latency: Callable[[str, str], float],
                        rng: RngRegistry) -> ReplicationMap:
        self._graph = StreamingSocialGraph(self.num_users, self.attachment,
                                           seed=rng.seed)
        self._partitioner = IncrementalPartitioner(
            self._graph, datacenters, balance_slack=self.balance_slack)
        self._replication = StreamingReplicationMap(
            datacenters, self._graph, self._partitioner, latency,
            min_replicas=self.min_replicas, max_replicas=self.max_replicas)
        return self._replication

    @property
    def graph(self) -> StreamingSocialGraph:
        if self._graph is None:
            raise RuntimeError("replication_map() must run first")
        return self._graph

    @property
    def partitioner(self) -> IncrementalPartitioner:
        if self._partitioner is None:
            raise RuntimeError("replication_map() must run first")
        return self._partitioner

    # ------------------------------------------------------------------

    def _pick_local_user(self, dc_name: str, stream: random.Random) -> int:
        """A user mastered at *dc_name*, found by seeded rejection
        sampling (acceptance ≈ 1/len(datacenters) per probe)."""
        partitioner = self.partitioner
        if dc_name not in partitioner.datacenters:
            return stream.randrange(self.num_users)
        for _ in range(64 * len(partitioner.datacenters)):
            candidate = stream.randrange(self.num_users)
            if partitioner.master_of(candidate) == dc_name:
                return candidate
        return stream.randrange(self.num_users)  # pragma: no cover

    def client_generator(self, dc_name: str, replication: ReplicationMap,
                         rng: RngRegistry,
                         latency: Callable[[str, str], float],
                         stream_name: str) -> Callable[[object], object]:
        if self._replication is None:
            raise RuntimeError("replication_map() must run first")
        stream = rng.stream(stream_name)
        me = self._pick_local_user(dc_name, stream)
        my_friends = self.graph.friends(me)
        all_users = self.num_users

        def _key(user: int) -> str:
            return f"{user_group(user)}:{stream.randrange(self.keys_per_user)}"

        def _read(user: int) -> object:
            group = user_group(user)
            replicas = replication.replicas_of_group(group)
            if dc_name in replicas:
                return ReadOp(key=_key(user))
            target = min(replicas, key=lambda dc: (latency(dc_name, dc), dc))
            return RemoteReadOp(key=_key(user), target_dc=target)

        def _local_write(user: int) -> object:
            group = user_group(user)
            if dc_name in replication.replicas_of_group(group):
                return UpdateOp(key=_key(user), value_size=self.value_size)
            return _read(user)

        def _next(client: object) -> object:
            roll = stream.random()
            cumulative = 0.0
            for name, share, _ in OPERATION_MIX:
                cumulative += share
                if roll < cumulative:
                    break
            else:
                name = OPERATION_MIX[-1][0]
            if name == "browse_own":
                return ReadOp(key=_key(me))
            if name == "browse_friend" and my_friends:
                return _read(stream.choice(my_friends))
            if name == "search_random":
                return _read(stream.randrange(all_users))
            if name == "edit_own":
                return UpdateOp(key=_key(me), value_size=self.value_size)
            if name == "write_friend" and my_friends:
                return _local_write(stream.choice(my_friends))
            return ReadOp(key=_key(me))

        return _next
