"""Synthetic workload generator (§7.3.2).

Reproduces the paper's dynamic-workload knobs, with the paper's defaults in
parentheses: value size (2 B), read:write ratio (9:1), correlation among
datacenters (exponential), and percentage of remote reads (0%).

Each client belongs to a preferred datacenter and issues, with zero think
time: local reads, local updates, or remote reads (the §4.4 migration
dance) of keys not replicated at its datacenter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.replication import ReplicationMap
from repro.sim.rng import RngRegistry
from repro.workloads.correlation import build_replication
from repro.workloads.ops import ReadOp, RemoteReadOp, UpdateOp

__all__ = ["SyntheticWorkload"]


@dataclass
class SyntheticWorkload:
    """Parameterized synthetic workload.

    ``remote_read_fraction`` is the fraction of *reads* that target data not
    replicated at the client's preferred datacenter (the paper varies it
    from 0% to 40%).
    """

    value_size: int = 2
    read_ratio: float = 0.9
    correlation: str = "exponential"
    remote_read_fraction: float = 0.0
    groups_per_dc: int = 4
    keys_per_group: int = 64
    degree: Optional[int] = None
    #: skewed access: with probability ``hot_fraction`` an operation touches
    #: one of the group's first ``hot_keys`` keys (social workloads are
    #: zipfian; hot keys keep client causal pasts fresh)
    hot_fraction: float = 0.5
    hot_keys: int = 4

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_ratio <= 1.0:
            raise ValueError("read_ratio must be in [0, 1]")
        if not 0.0 <= self.remote_read_fraction <= 1.0:
            raise ValueError("remote_read_fraction must be in [0, 1]")
        if self.value_size < 0:
            raise ValueError("value_size must be non-negative")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")

    # ------------------------------------------------------------------

    def replication_map(self, datacenters: Sequence[str],
                        latency: Callable[[str, str], float],
                        rng: RngRegistry) -> ReplicationMap:
        return build_replication(datacenters, self.correlation, latency, rng,
                                 groups_per_dc=self.groups_per_dc,
                                 degree=self.degree)

    # ------------------------------------------------------------------

    def client_generator(self, dc_name: str, replication: ReplicationMap,
                         rng: RngRegistry,
                         latency: Callable[[str, str], float],
                         stream_name: str) -> Callable[[object], object]:
        """Build the per-client ``workload(client) -> op`` closure."""
        stream = rng.stream(stream_name)
        local_groups = replication.groups_at(dc_name)
        if not local_groups:
            raise ValueError(f"no groups replicated at {dc_name}")
        remote_groups = [g for g in sorted(replication.groups())
                         if dc_name not in replication.replicas_of_group(g)]
        # interest is distance-biased: clients mostly reach for data whose
        # nearest replica is close (1/d^2 weighting), like real read
        # traffic; this also matches the §5.1 migration example (dc3->dc4)
        remote_weights = []
        for group in remote_groups:
            nearest = min(latency(dc_name, dc)
                          for dc in replication.replicas_of_group(group))
            remote_weights.append(1.0 / (1.0 + nearest) ** 2)
        total_weight = sum(remote_weights)

        def _pick_remote_group() -> str:
            roll = stream.random() * total_weight
            cumulative = 0.0
            for group, weight in zip(remote_groups, remote_weights):
                cumulative += weight
                if roll < cumulative:
                    return group
            return remote_groups[-1]

        def _key(group: str) -> str:
            if stream.random() < self.hot_fraction:
                index = stream.randrange(min(self.hot_keys,
                                             self.keys_per_group))
            else:
                index = stream.randrange(self.keys_per_group)
            return f"{group}:{index}"

        def _nearest_replica(group: str) -> str:
            replicas = replication.replicas_of_group(group)
            return min(replicas, key=lambda dc: (latency(dc_name, dc), dc))

        def _next(client: object) -> object:
            if stream.random() < self.read_ratio:
                if (remote_groups
                        and stream.random() < self.remote_read_fraction):
                    group = _pick_remote_group()
                    return RemoteReadOp(key=_key(group),
                                        target_dc=_nearest_replica(group))
                return ReadOp(key=_key(stream.choice(local_groups)))
            return UpdateOp(key=_key(stream.choice(local_groups)),
                            value_size=self.value_size)

        return _next
