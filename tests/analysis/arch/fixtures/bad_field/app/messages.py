"""Wire vocabulary with one unserializable payload field."""

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class StateMsg:
    origin: str
    ts: float
    entries: Dict[str, float]  # shared-mutable reference: not wire-safe
