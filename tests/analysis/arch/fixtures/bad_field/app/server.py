"""Handles StateMsg; never constructs it (the defect is the field)."""

from app.messages import StateMsg


class Server:
    def receive(self, sender: str, message) -> None:
        if isinstance(message, StateMsg):
            self.entries = message.entries
