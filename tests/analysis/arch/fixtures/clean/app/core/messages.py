"""Wire vocabulary: frozen plain data only."""

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class UpdateMsg:
    key: str
    ts: float
    deps: Tuple[Tuple[str, float], ...] = ()


@dataclass(frozen=True)
class AckMsg:
    key: str
    ts: Optional[float] = None
