"""Protocol entry point: pure, layered, and wire-conformant."""

from app.core.messages import AckMsg, UpdateMsg
from app.kern.clock import SimClock


class Server:
    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self.store = {}

    def receive(self, sender: str, message) -> None:
        if isinstance(message, UpdateMsg):
            self.store[message.key] = message.ts
            self.reply(sender, AckMsg(key=message.key,
                                      ts=self.clock.timestamp()))
        elif isinstance(message, AckMsg):
            self.store.pop(message.key, None)

    def reply(self, target: str, message) -> None:
        pass
