"""Sanctioned kernel seam: the simulated clock."""


class SimClock:
    def __init__(self) -> None:
        self.now = 0.0

    def timestamp(self) -> float:
        return self.now
