"""Harness layer: may reach down into everything, including the kernel."""

import random

from app.core.messages import UpdateMsg
from app.core.server import Server
from app.kern.clock import SimClock


def drive(steps: int) -> Server:
    clock = SimClock()
    server = Server(clock)
    rng = random.Random(7)
    for step in range(steps):
        clock.now += rng.random()
        server.receive("driver", UpdateMsg(key=f"k{step}", ts=clock.now))
    return server
