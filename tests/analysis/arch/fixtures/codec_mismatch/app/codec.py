"""Wire codec of the fixture app: StateMsg is missing from the registry."""

from app.messages import AckMsg

_REGISTRY = {}


def register(cls):
    _REGISTRY[cls.__name__] = cls


register(AckMsg)
