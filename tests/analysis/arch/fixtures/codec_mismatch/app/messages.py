"""Wire vocabulary of the fixture app."""

from dataclasses import dataclass


@dataclass(frozen=True)
class AckMsg:
    seq: int


@dataclass(frozen=True)
class StateMsg:
    entries: str
