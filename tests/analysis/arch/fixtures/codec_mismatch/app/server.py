"""Constructs and dispatches both messages; only AckMsg is in the codec."""

from app.messages import AckMsg, StateMsg


class Server:
    def push(self, send) -> None:
        send(AckMsg(seq=1))
        send(StateMsg(entries="a=1"))

    def receive(self, sender: str, message) -> None:
        if isinstance(message, AckMsg):
            self.last_seq = message.seq
        elif isinstance(message, StateMsg):
            self.state = message.entries
