"""One half of a deliberate import cycle (ARCH002)."""

from app.core.beta import bump


def tick(x: int) -> int:
    return bump(x) + 1
