"""The other half of the deliberate import cycle (ARCH002)."""

from app.core.alpha import tick


def bump(x: int) -> int:
    if x > 10:
        return tick(0)
    return x + 1
