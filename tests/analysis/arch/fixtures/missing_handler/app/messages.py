"""Wire vocabulary of the fixture app."""

from dataclasses import dataclass


@dataclass(frozen=True)
class PingMsg:
    seq: int


@dataclass(frozen=True)
class PongMsg:
    seq: int
