"""Constructs PingMsg; the handler only dispatches PongMsg."""

from app.messages import PingMsg, PongMsg


class Server:
    def probe(self, send) -> None:
        send(PingMsg(seq=1))

    def receive(self, sender: str, message) -> None:
        if isinstance(message, PongMsg):
            self.last_seq = message.seq
