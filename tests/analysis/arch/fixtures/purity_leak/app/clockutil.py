"""Hop 3: the leak — a wall-clock read hidden two calls deep."""

import time


def stamp() -> float:
    return time.time()
