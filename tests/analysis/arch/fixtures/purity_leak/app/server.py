"""Protocol entry point whose handler is pure... on the surface."""

from app.store import apply_update


class Server:
    def receive(self, sender: str, message) -> None:
        apply_update(message)
