"""Hop 2: storage helper that defers stamping to the clock module."""

from app.clockutil import stamp


def apply_update(message) -> float:
    return stamp()
