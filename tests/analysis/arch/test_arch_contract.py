"""Contract loading and the layer-assignment rules it feeds the passes."""

from pathlib import Path

import pytest

from repro.analysis.arch.contract import (ContractError, load_contract)
from repro.analysis.arch.rules import ALL_ARCH_RULES, ARCH_RULES_BY_CODE

REPO_ROOT = Path(__file__).resolve().parents[3]


def repo_contract():
    return load_contract(REPO_ROOT / "arch_contract.toml")


def test_rule_catalogue_is_complete():
    assert [rule.code for rule in ALL_ARCH_RULES] == [
        "ARCH001", "ARCH002", "ARCH003", "ARCH004",
        "ARCH101", "ARCH201", "ARCH202", "ARCH203", "ARCH204",
        "ARCH205"]
    for rule in ALL_ARCH_RULES:
        assert rule.title and rule.rationale
    assert set(ARCH_RULES_BY_CODE) == {r.code for r in ALL_ARCH_RULES}


def test_repo_contract_loads_and_layers_are_ordered():
    contract = repo_contract()
    assert contract.root_package == "repro"
    names = [layer.name for layer in contract.layers]
    assert names.index("kernel") < names.index("core") < \
        names.index("datacenter") < names.index("baselines")


def test_module_override_beats_package_prefix():
    contract = repo_contract()
    # messages.py lives in the datacenter package but belongs to core
    assert contract.layer_of("repro.datacenter.messages").name == "core"
    assert contract.layer_of("repro.datacenter.gear").name == "datacenter"
    # the op vocabulary lives in workloads but is datacenter-level
    assert contract.layer_of("repro.workloads.ops").name == "datacenter"
    assert contract.layer_of("repro.workloads.generators").name == "services"


def test_unassigned_module_maps_to_none():
    contract = repo_contract()
    assert contract.layer_of("somewhere.else") is None


def test_restricted_vs_unrestricted_layers():
    contract = repo_contract()
    by_name = {layer.name: layer for layer in contract.layers}
    assert contract.is_restricted(by_name["core"])
    assert contract.is_restricted(by_name["baselines"])
    assert not contract.is_restricted(by_name["tools"])


def test_missing_contract_file_raises():
    with pytest.raises(ContractError):
        load_contract(REPO_ROOT / "no_such_contract.toml")


def test_malformed_contract_raises(tmp_path):
    bad = tmp_path / "arch_contract.toml"
    bad.write_text("[meta]\n# no root_package\n", encoding="utf-8")
    with pytest.raises(ContractError):
        load_contract(bad)
    bad.write_text('[meta]\nroot_package = "x"\n', encoding="utf-8")
    with pytest.raises(ContractError):
        load_contract(bad)  # no layers


def test_duplicate_layer_name_raises(tmp_path):
    bad = tmp_path / "arch_contract.toml"
    bad.write_text(
        '[meta]\nroot_package = "x"\n'
        '[[layers]]\nname = "a"\npackages = ["x.a"]\n'
        '[[layers]]\nname = "a"\npackages = ["x.b"]\n',
        encoding="utf-8")
    with pytest.raises(ContractError):
        load_contract(bad)


def test_unknown_unrestricted_layer_raises(tmp_path):
    bad = tmp_path / "arch_contract.toml"
    bad.write_text(
        '[meta]\nroot_package = "x"\n'
        '[[layers]]\nname = "a"\npackages = ["x.a"]\n'
        '[kernel_seams]\nunrestricted_layers = ["ghost"]\n',
        encoding="utf-8")
    with pytest.raises(ContractError):
        load_contract(bad)


def test_components_are_parsed():
    contract = repo_contract()
    assert "repro.baselines.explicit:DepContext" in contract.components
    assert "repro.baselines.explicit:DepContext" not in contract.extra_messages
