"""The architecture auditor: each seeded-violation fixture trips exactly
one finding with the expected ARCH code, and the conforming fixture is
clean under all three passes."""

from pathlib import Path

import pytest

from repro.analysis.arch import load_contract, run_audit

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture directory -> (expected code, substring the message must contain)
SEEDED = {
    "layer_cycle": ("ARCH002", "app.core.alpha"),
    "purity_leak": ("ARCH101", "time.time"),
    "missing_handler": ("ARCH201", "PingMsg"),
    "bad_field": ("ARCH203", "StateMsg.entries"),
    "codec_mismatch": ("ARCH205", "StateMsg"),
}


def audit(name):
    contract = load_contract(FIXTURES / name / "arch_contract.toml")
    return run_audit(FIXTURES / name / "app", contract)


@pytest.mark.parametrize("name", sorted(SEEDED))
def test_seeded_fixture_trips_exactly_one_finding(name):
    code, fragment = SEEDED[name]
    report = audit(name)
    assert len(report.findings) == 1, report.format_human()
    finding = report.findings[0]
    assert finding.code == code
    assert fragment in finding.message


def test_clean_fixture_is_clean():
    report = audit("clean")
    assert report.ok, report.format_human()
    assert report.passes_run == ("layers", "purity", "wire")


def test_purity_witness_reports_the_full_call_chain():
    report = audit("purity_leak")
    (finding,) = report.findings
    witness = "\n".join(finding.witness)
    # entry point, both intermediate hops, and the offending call site —
    # in that order
    entry = witness.index("Server.receive")
    hop2 = witness.index("app.store:apply_update")
    hop3 = witness.index("app.clockutil:stamp")
    leak = witness.index("calls time.time")
    assert entry < hop2 < hop3 < leak


def test_cycle_finding_names_both_modules():
    report = audit("layer_cycle")
    (finding,) = report.findings
    assert "app.core.alpha" in finding.message
    assert "app.core.beta" in finding.message


def test_passes_can_run_individually():
    contract = load_contract(FIXTURES / "bad_field" / "arch_contract.toml")
    root = FIXTURES / "bad_field" / "app"
    assert run_audit(root, contract, passes=("layers",)).ok
    assert run_audit(root, contract, passes=("purity",)).ok
    wire_only = run_audit(root, contract, passes=("wire",))
    assert [f.code for f in wire_only.findings] == ["ARCH203"]
    with pytest.raises(ValueError):
        run_audit(root, contract, passes=("nonsense",))


def test_noqa_suppresses_a_seeded_finding(tmp_path):
    src = FIXTURES / "bad_field"
    dst = tmp_path / "bad_field"
    (dst / "app").mkdir(parents=True)
    for item in (src / "app").iterdir():
        text = item.read_text(encoding="utf-8")
        if item.name == "messages.py":
            text = text.replace(
                "entries: Dict[str, float]",
                "entries: Dict[str, float]  # noqa: ARCH203")
        (dst / "app" / item.name).write_text(text, encoding="utf-8")
    contract = load_contract(src / "arch_contract.toml")
    assert run_audit(dst / "app", contract).ok
