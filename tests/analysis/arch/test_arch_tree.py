"""Tree-wide audit gate plus pinned regressions for the findings it
surfaced when first run (upward imports, kernel-scheduler wrapping, and
non-plain wire payloads)."""

import dataclasses
import os
import subprocess
import sys
import typing
from pathlib import Path

import pytest

from repro.analysis.arch import find_contract, load_contract, run_audit

REPO_ROOT = Path(__file__).resolve().parents[3]
SRC_ROOT = REPO_ROOT / "src" / "repro"


# ---------------------------------------------------------------------------
# the audit itself is the pin: any regression of a fixed finding fails here
# ---------------------------------------------------------------------------

def test_tree_wide_audit_is_clean():
    contract = load_contract(REPO_ROOT / "arch_contract.toml")
    report = run_audit(SRC_ROOT, contract)
    assert report.ok, report.format_human()
    assert report.modules_checked > 80


def test_find_contract_walks_up():
    assert find_contract(SRC_ROOT) == REPO_ROOT / "arch_contract.toml"


# ---------------------------------------------------------------------------
# pinned regressions for the individual fixes
# ---------------------------------------------------------------------------

def test_reconfig_does_not_import_datacenter_at_runtime():
    # ARCH001 fix: core.reconfig needed SaturnDatacenter only for type
    # hints; the import must stay behind TYPE_CHECKING
    from repro.analysis.arch.imports import build_graph, discover_modules
    graph = build_graph(discover_modules(SRC_ROOT, "repro"))
    upward = [edge for edge in graph.runtime_edges()
              if edge.importer == "repro.core.reconfig"
              and edge.target.startswith("repro.datacenter")]
    assert upward == [], upward


def test_manager_does_not_wrap_the_kernel_scheduler():
    # ARCH004 fix: schedule_reconfiguration bound protocol code to the
    # kernel's absolute clock; scripted epoch changes now schedule from
    # the harness layer
    from repro.core.reconfig import ReconfigurationManager
    assert not hasattr(ReconfigurationManager, "schedule_reconfiguration")


def test_dc_process_name_lives_in_core_naming():
    # ARCH001 fix: serializers address datacenters, so the naming scheme
    # must live at or below core; datacenter re-exports it for callers
    from repro.core.naming import dc_process_name
    from repro.datacenter.datacenter import dc_process_name as reexported
    assert reexported is dc_process_name
    assert dc_process_name("I") == "dc:I"


def test_wire_messages_are_frozen_and_slotted():
    # SAT008 / ARCH203 fix: every wire message must reject both field
    # mutation and ad-hoc attribute growth
    from repro.datacenter import messages

    ping = messages.Ping(seq=1, origin="dc:I")
    with pytest.raises(dataclasses.FrozenInstanceError):
        ping.seq = 2
    with pytest.raises((AttributeError, TypeError)):
        object.__setattr__(ping, "extra", 1)  # no __dict__ to sneak into
    for name in messages.__all__:
        obj = getattr(messages, name)
        if dataclasses.is_dataclass(obj):
            assert hasattr(obj, "__slots__"), f"{name} lacks __slots__"
            assert obj.__dataclass_params__.frozen, f"{name} not frozen"


def test_stabilization_msg_carries_a_scalar():
    # ARCH203 fix: the stabilization value was annotated `object` (with a
    # docstring claiming Cure ships vectors); both baselines broadcast a
    # scalar clock floor and the vector is assembled receiver-side
    from repro.datacenter.messages import StabilizationMsg
    hints = typing.get_type_hints(StabilizationMsg)
    assert hints["value"] == typing.Optional[float]


def test_baseline_payload_stamp_is_a_plain_union():
    # ARCH203 fix: BaselinePayload.stamp was `object`
    from repro.baselines import base
    hints = typing.get_type_hints(base.BaselinePayload)
    assert hints["stamp"] == base.BaselineStamp
    assert type(None) not in typing.get_args(base.BaselineStamp)
    assert dict not in typing.get_args(base.BaselineStamp)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _run_cli(*args):
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis.arch", *args],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT)


def test_cli_exits_zero_on_clean_tree():
    proc = _run_cli()
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 finding(s)" in proc.stdout


def test_cli_exits_one_on_findings_and_emits_json():
    fixture = Path("tests/analysis/arch/fixtures/bad_field")
    proc = _run_cli(str(fixture / "app"),
                    "--contract", str(fixture / "arch_contract.toml"),
                    "--json")
    assert proc.returncode == 1
    import json
    payload = json.loads(proc.stdout)
    assert payload["ok"] is False
    assert [f["code"] for f in payload["findings"]] == ["ARCH203"]


def test_cli_lists_rules():
    proc = _run_cli("--list-rules")
    assert proc.returncode == 0
    for code in ("ARCH001", "ARCH101", "ARCH203"):
        assert code in proc.stdout
