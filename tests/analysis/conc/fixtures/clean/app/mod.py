"""Clean fixture: the correct counterpart of every seeded violation.

Every pattern a CONCxxx rule bans appears here in its fixed form, so a
false positive in any pass fails the clean-fixture test.
"""

import asyncio


def prepare():
    return "ready"  # no blocking work on the async path (CONC001)


class Service:
    def __init__(self, lock_a, lock_b):
        self.lock_a = lock_a
        self.lock_b = lock_b
        self.value = 0
        self._task = None

    async def start(self):
        prepare()
        # retained on self and cancelled in stop() (CONC002 / CONC006)
        self._task = asyncio.create_task(self.run_forever())

    async def run_forever(self):
        while True:
            await asyncio.sleep(1)

    async def bump(self):
        # the read-modify-write holds the lock across the await (CONC003)
        async with self.lock_a:
            current = self.value
            await asyncio.sleep(0)
            self.value = current + 1

    async def nested(self):
        # same order as bump's callers everywhere (CONC004)
        async with self.lock_a:
            async with self.lock_b:
                self.value += 1

    async def also_nested(self):
        async with self.lock_a:
            async with self.lock_b:
                return self.value

    async def wait_quietly(self):
        try:
            await asyncio.sleep(0)
        except asyncio.CancelledError:
            raise  # cancellation propagates after cleanup (CONC005)

    async def stop(self):
        task, self._task = self._task, None
        if task is None:
            return
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            if not task.cancelled():
                raise


async def main(service):
    await service.start()
    await service.bump()
    await service.stop()
