"""Seeded CONC001: a blocking sleep two hops below a coroutine."""

import time


def prepare():
    time.sleep(0.01)


async def handle():
    prepare()
    return "handled"
