"""Seeded CONC002: a coroutine called but never awaited."""


async def work():
    return None


async def main():
    work()
    return "done"
