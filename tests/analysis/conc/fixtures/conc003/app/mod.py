"""Seeded CONC003: read-modify-write of self state spanning an await."""

import asyncio


class Counter:
    def __init__(self):
        self.value = 0

    async def bump(self):
        current = self.value
        await asyncio.sleep(0)
        self.value = current + 1
