"""Seeded CONC004: the same two locks acquired in opposite orders."""


class Shared:
    def __init__(self, lock_a, lock_b):
        self.lock_a = lock_a
        self.lock_b = lock_b
        self.hits = 0

    async def forward(self):
        async with self.lock_a:
            async with self.lock_b:
                self.hits += 1

    async def backward(self):
        async with self.lock_b:
            async with self.lock_a:
                self.hits += 1
