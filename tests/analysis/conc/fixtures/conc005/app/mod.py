"""Seeded CONC005: CancelledError swallowed around an await."""

import asyncio


async def pump():
    try:
        await asyncio.sleep(0)
    except asyncio.CancelledError:
        pass
