"""Seeded CONC006: a task spawned onto self with no closer touching it."""

import asyncio


class Pump:
    def __init__(self):
        self._task = None

    async def run_forever(self):
        while True:
            await asyncio.sleep(1)

    def start(self):
        self._task = asyncio.create_task(self.run_forever())
