"""The concurrency auditor: each seeded-violation fixture trips exactly
one finding with the expected CONC code, and the clean fixture (which
exercises the *correct* form of every banned pattern) stays clean."""

from pathlib import Path

import pytest

from repro.analysis.conc import RULE_NAMES, run_conc_audit

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture directory == expected code; plus a message fragment to pin
SEEDED = {
    "conc001": "time.sleep",
    "conc002": "app.mod:work",
    "conc003": "self.value",
    "conc004": "self.lock_a",
    "conc005": "except asyncio.CancelledError",
    "conc006": "Pump._task",
}


def audit(name, **kwargs):
    return run_conc_audit(FIXTURES / name / "app", **kwargs)


@pytest.mark.parametrize("name", sorted(SEEDED))
def test_seeded_fixture_trips_exactly_one_finding(name):
    report = audit(name)
    assert len(report.findings) == 1, report.format_human()
    finding = report.findings[0]
    assert finding.code == name.upper()
    assert SEEDED[name] in finding.message


def test_clean_fixture_is_clean():
    report = audit("clean")
    assert report.ok, report.format_human()
    assert report.rules_run == RULE_NAMES
    assert report.async_functions >= 7


def test_blocking_witness_reports_the_full_call_chain():
    report = audit("conc001")
    (finding,) = report.findings
    witness = "\n".join(finding.witness)
    entry = witness.index("app.mod:handle")
    hop = witness.index("app.mod:prepare")
    leak = witness.index("calls time.sleep")
    assert entry < hop < leak


def test_atomicity_witness_orders_read_await_write():
    report = audit("conc003")
    (finding,) = report.findings
    assert len(finding.witness) == 3
    read, suspend, write = finding.witness
    assert "reads self.value" in read
    assert "suspends" in suspend
    assert "writes self.value" in write


def test_lock_order_witness_names_both_sites():
    report = audit("conc004")
    (finding,) = report.findings
    assert len(finding.witness) == 2
    assert "while holding self.lock_a" in finding.witness[0]
    assert "while holding self.lock_b" in finding.witness[1]


def test_rules_can_run_individually():
    root = FIXTURES / "conc005" / "app"
    assert run_conc_audit(root, rules=("CONC001",)).ok
    only = run_conc_audit(root, rules=("CONC005",))
    assert [f.code for f in only.findings] == ["CONC005"]
    assert only.rules_run == ("CONC005",)
    with pytest.raises(ValueError):
        run_conc_audit(root, rules=("CONC999",))


@pytest.mark.parametrize("name", sorted(SEEDED))
def test_noqa_suppresses_each_seeded_finding(name, tmp_path):
    src_dir = FIXTURES / name / "app"
    report = audit(name)
    (finding,) = report.findings
    bad_line = finding.line
    dst_dir = tmp_path / "app"
    dst_dir.mkdir()
    for item in src_dir.iterdir():
        text = item.read_text(encoding="utf-8")
        if item.name == "mod.py":
            lines = text.splitlines()
            lines[bad_line - 1] += f"  # noqa: {name.upper()}"
            text = "\n".join(lines) + "\n"
        (dst_dir / item.name).write_text(text, encoding="utf-8")
    assert run_conc_audit(dst_dir).ok
