"""Edge cases of the individual concurrency passes: the guards that keep
each rule from false-positiving on correct idioms."""

from pathlib import Path

from repro.analysis.conc import run_conc_audit


def audit_source(tmp_path: Path, source: str, rules=None):
    pkg = tmp_path / "app"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "mod.py").write_text(source, encoding="utf-8")
    if rules is None:
        return run_conc_audit(pkg)
    return run_conc_audit(pkg, rules=rules)


def codes(report):
    return [f.code for f in report.findings]


# -- CONC001 -----------------------------------------------------------------

def test_asyncio_sleep_is_not_a_blocking_call(tmp_path):
    report = audit_source(tmp_path, (
        "import asyncio\n"
        "async def nap():\n"
        "    await asyncio.sleep(1)\n"))
    assert report.ok, report.format_human()


def test_blocking_call_in_pure_sync_code_is_fine(tmp_path):
    # time.sleep in a function no coroutine reaches: the driver's business
    report = audit_source(tmp_path, (
        "import time\n"
        "def wait():\n"
        "    time.sleep(1)\n"))
    assert report.ok, report.format_human()


def test_one_site_reached_by_two_coroutines_reports_once(tmp_path):
    report = audit_source(tmp_path, (
        "import time\n"
        "def slow():\n"
        "    time.sleep(1)\n"
        "async def a():\n"
        "    slow()\n"
        "async def b():\n"
        "    slow()\n"), rules=("CONC001",))
    assert codes(report) == ["CONC001"]


# -- CONC002 -----------------------------------------------------------------

def test_asyncio_run_of_a_coroutine_call_is_not_fire_and_forget(tmp_path):
    report = audit_source(tmp_path, (
        "import asyncio\n"
        "async def main():\n"
        "    return 0\n"
        "def entry():\n"
        "    asyncio.run(main())\n"))
    assert report.ok, report.format_human()


def test_awaited_coroutine_is_not_flagged(tmp_path):
    report = audit_source(tmp_path, (
        "async def work():\n"
        "    return 0\n"
        "async def main():\n"
        "    await work()\n"))
    assert report.ok, report.format_human()


def test_discarded_create_task_is_flagged_even_unresolved(tmp_path):
    report = audit_source(tmp_path, (
        "import asyncio\n"
        "async def main(coro):\n"
        "    asyncio.create_task(coro)\n"), rules=("CONC002",))
    assert codes(report) == ["CONC002"]


# -- CONC003 -----------------------------------------------------------------

def test_augassign_on_both_sides_of_await_is_not_a_lost_update(tmp_path):
    # += is atomic per event-loop step; without an explicit read before
    # the await there is no stale value to write back
    report = audit_source(tmp_path, (
        "import asyncio\n"
        "class C:\n"
        "    async def tick(self):\n"
        "        self.count += 1\n"
        "        await asyncio.sleep(0)\n"
        "        self.count += 1\n"))
    assert report.ok, report.format_human()


def test_lock_held_across_the_window_is_exempt(tmp_path):
    report = audit_source(tmp_path, (
        "import asyncio\n"
        "class C:\n"
        "    async def bump(self):\n"
        "        async with self.lock:\n"
        "            v = self.value\n"
        "            await asyncio.sleep(0)\n"
        "            self.value = v + 1\n"))
    assert report.ok, report.format_human()


def test_write_before_the_await_is_not_flagged(tmp_path):
    report = audit_source(tmp_path, (
        "import asyncio\n"
        "class C:\n"
        "    async def set_then_wait(self):\n"
        "        v = self.value\n"
        "        self.value = v + 1\n"
        "        await asyncio.sleep(0)\n"))
    assert report.ok, report.format_human()


# -- CONC004 -----------------------------------------------------------------

def test_consistent_lock_order_is_fine(tmp_path):
    report = audit_source(tmp_path, (
        "class C:\n"
        "    async def one(self):\n"
        "        async with self.lock_a:\n"
        "            async with self.lock_b:\n"
        "                pass\n"
        "    async def two(self):\n"
        "        async with self.lock_a:\n"
        "            async with self.lock_b:\n"
        "                pass\n"))
    assert report.ok, report.format_human()


# -- CONC005 -----------------------------------------------------------------

def test_except_exception_does_not_swallow_cancellation(tmp_path):
    # CancelledError derives from BaseException since 3.8
    report = audit_source(tmp_path, (
        "import asyncio\n"
        "async def robust():\n"
        "    try:\n"
        "        await asyncio.sleep(0)\n"
        "    except Exception:\n"
        "        pass\n"))
    assert report.ok, report.format_human()


def test_reraising_handler_is_exempt(tmp_path):
    report = audit_source(tmp_path, (
        "import asyncio\n"
        "async def cleanup():\n"
        "    try:\n"
        "        await asyncio.sleep(0)\n"
        "    except asyncio.CancelledError:\n"
        "        print('bye')\n"
        "        raise\n"))
    assert report.ok, report.format_human()


def test_bare_except_without_await_in_body_is_out_of_scope(tmp_path):
    report = audit_source(tmp_path, (
        "def parse(text):\n"
        "    try:\n"
        "        return int(text)\n"
        "    except:\n"
        "        return None\n"), rules=("CONC005",))
    assert report.ok, report.format_human()


# -- CONC006 -----------------------------------------------------------------

def test_closer_in_a_base_class_counts(tmp_path):
    report = audit_source(tmp_path, (
        "import asyncio\n"
        "class Base:\n"
        "    async def stop(self):\n"
        "        self._task.cancel()\n"
        "class Child(Base):\n"
        "    def start(self):\n"
        "        self._task = asyncio.create_task(self.run())\n"
        "    async def run(self):\n"
        "        await asyncio.sleep(0)\n"), rules=("CONC006",))
    assert report.ok, report.format_human()


def test_local_task_variable_is_not_an_ownership_leak(tmp_path):
    # only self-attached spawns are lifecycle-audited; locals are the
    # await-it-yourself pattern
    report = audit_source(tmp_path, (
        "import asyncio\n"
        "class C:\n"
        "    async def run_one(self):\n"
        "        task = asyncio.create_task(self.helper())\n"
        "        await task\n"
        "    async def helper(self):\n"
        "        return 0\n"), rules=("CONC006",))
    assert report.ok, report.format_human()


# -- aggregate behaviour -----------------------------------------------------

def test_parse_error_surfaces_as_conc000(tmp_path):
    report = audit_source(tmp_path, "def broken(:\n")
    assert codes(report) == ["CONC000"]
