"""Tier-1 pin: the repro tree itself is concurrency-clean, and the CLI
contract (exit codes, JSON shape, rule listing) holds."""

import json
import subprocess
import sys
from pathlib import Path

import repro
from repro.analysis.conc import ALL_CONC_RULES, RULE_NAMES, run_conc_audit
from repro.analysis.conc.__main__ import main

REPRO_ROOT = Path(repro.__file__).resolve().parent


def test_repro_tree_has_no_concurrency_findings():
    report = run_conc_audit(REPRO_ROOT, package="repro")
    assert report.ok, report.format_human()
    assert report.modules_checked > 100
    # the net stack alone guarantees a population of coroutines to audit
    assert report.async_functions >= 10


def test_rule_catalogue_is_complete():
    assert tuple(rule.code for rule in ALL_CONC_RULES) == RULE_NAMES == (
        "CONC001", "CONC002", "CONC003", "CONC004", "CONC005", "CONC006")
    for rule in ALL_CONC_RULES:
        assert rule.title and rule.rationale


def test_cli_clean_tree_exits_zero(capsys):
    assert main([]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_cli_json_output_is_machine_readable(capsys):
    assert main(["--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["rules"] == list(RULE_NAMES)
    assert payload["findings"] == []


def test_cli_dirty_fixture_exits_one(capsys):
    fixture = Path(__file__).parent / "fixtures" / "conc001" / "app"
    assert main([str(fixture)]) == 1
    assert "CONC001" in capsys.readouterr().out


def test_cli_rejects_unknown_rules(capsys):
    assert main(["--rules", "CONC042"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in RULE_NAMES:
        assert code in out


def test_module_is_invocable_as_a_script():
    fixture = Path(__file__).parent / "fixtures" / "conc005" / "app"
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis.conc", str(fixture)],
        capture_output=True, text=True)
    assert proc.returncode == 1
    assert "CONC005" in proc.stdout
