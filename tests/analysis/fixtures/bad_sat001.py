"""Known-bad fixture: wall-clock reads inside simulation code (SAT001)."""

import time
from datetime import date, datetime


def stamp_with_host_clock():
    started = time.time()
    nanos = time.time_ns()
    return started, nanos


def timestamp_label():
    created = datetime.now()
    day = date.today()
    return created, day, datetime.utcnow()
