"""Known-bad fixture: global random module instead of seeded streams (SAT002)."""

import random


def jitter():
    random.seed(42)
    return random.uniform(0.0, 1.0)


def pick_replica(replicas):
    return random.choice(list(replicas))
