"""Known-bad fixture: hash-ordered iteration feeding emission (SAT003)."""


def schedule_all(sim, processes):
    for process in set(processes):
        sim.schedule(0.0, process.tick)


def forward_labels(serializer, interested, batch):
    targets = [dc for dc in interested | {"dc-extra"}]
    for dc in frozenset(targets):
        serializer.send(dc, batch)
    return targets


def materialize(replicas):
    return list(set(replicas))


def keys_in_hash_order(watermarks):
    for origin in watermarks.keys():
        yield origin
