"""Known-bad fixture: float-timestamp equality (SAT004)."""


def same_instant(label, other):
    return label.ts == other.ts


def deadline_reached(now, deadline):
    return now != deadline


def visible_exactly_at(record):
    return record.visible_at == 12.5
