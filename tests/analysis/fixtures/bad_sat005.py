"""Known-bad fixture: mutable default arguments (SAT005)."""


def collect(item, bucket=[]):
    bucket.append(item)
    return bucket


def tally(key, counts={}):
    counts[key] = counts.get(key, 0) + 1
    return counts


def dedupe(items, seen=set()):
    fresh = [item for item in items if item not in seen]
    seen.update(fresh)
    return fresh
