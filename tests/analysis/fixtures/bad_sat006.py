"""Known-bad fixture: mutating another process's state (SAT006)."""

from repro.sim.process import Process


class Pusher(Process):
    def receive(self, sender, message):
        message.acked = True


class Poker(Pusher):
    def poke(self, peer, amount):
        peer.balance += amount
        peer.stats.pokes = 1
