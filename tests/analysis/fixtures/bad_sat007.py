"""Fixture: heap entries without a deterministic tie-breaker (SAT007)."""

import heapq


def lone_priority(heap, arrival):
    heapq.heappush(heap, (arrival,))


def payload_as_tiebreak(heap, arrival, message):
    heapq.heappush(heap, (arrival, message))


def opaque_entry(heap, entry):
    heapq.heappush(heap, entry)


def pushpop_without_tiebreak(heap, deadline, event):
    return heapq.heappushpop(heap, (deadline, event))


def good_counter(heap, arrival, seq, message):
    heapq.heappush(heap, (arrival, seq, message))


def good_label_key(heap, payload):
    heapq.heappush(heap, (payload.label.ts, payload.label.src, payload))


def good_subscript_key(heap, key, payload):
    heapq.heappush(heap, (key[0], key[1], payload))


def suppressed(heap, entry):
    heapq.heappush(heap, entry)  # noqa: SAT007
