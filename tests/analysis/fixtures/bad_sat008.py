"""Known-bad fixture: wire message dataclasses that are not frozen,
slotted plain data (SAT008)."""

from dataclasses import dataclass
from typing import Any, Dict, List, Optional


@dataclass
class MutablePayload:        # not frozen, no slots
    key: str
    value_size: int


@dataclass(frozen=True)
class UnslottedMsg:          # frozen but instances can grow attributes
    origin_dc: str
    ts: float


@dataclass(frozen=True, slots=True)
class SharedStatePayload:
    key: str
    deps: Dict[str, float]   # mutable container aliases sender state
    tags: List[str]          # same
    blob: Any                # escape hatch defeats the wire contract
    stamp: object            # same


@dataclass(frozen=True, slots=True)
class CleanMsg:              # conforming: must produce no finding
    origin_dc: str
    ts: float
    version: Optional[float] = None


class NotADataclassPayload:  # out of scope: plain class
    def __init__(self) -> None:
        self.cache = {}
