"""Fixture: event-loop acquisition outside the kernel seam (SAT009)."""

import asyncio


def ambient_loop():
    return asyncio.get_event_loop()


def naked_spawn(coro):
    return asyncio.ensure_future(coro)


async def good_running_loop():
    return asyncio.get_running_loop()


def good_kernel_seam(kernel, coro):
    return kernel.create_task(coro)


def suppressed():
    return asyncio.get_event_loop()  # noqa: SAT009
