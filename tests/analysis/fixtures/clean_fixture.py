"""Known-clean fixture: the disciplined way to do each flagged thing."""

from repro.sim.process import Process
from repro.sim.rng import RngRegistry


def schedule_all(sim, processes):
    for process in sorted(set(processes), key=lambda p: p.name):
        sim.schedule(0.0, process.tick)


def jitter(registry: RngRegistry):
    return registry.stream("jitter").uniform(0.0, 1.0)


def nearest(replicas, distance):
    return min(replicas, key=lambda dc: (distance(dc), dc))


def membership_only(interested, dc):
    return dc in interested and bool(interested & {"a", "b"})


def deadline_reached(now, deadline):
    return now >= deadline


def collect(item, bucket=None):
    bucket = bucket if bucket is not None else []
    bucket.append(item)
    return bucket


class Sender(Process):
    def receive(self, sender, message):
        self.send(sender, ("ack", message))
