"""Model checking the stabilization baselines.

The baseline chain3 scenarios (gentlerain / cure / eunomia / okapi) run
under the same schedule controller and oracles as Saturn's; these tests
sweep their tie and delay spaces and unit-test the replication oracle
that replaces Saturn's label-routing one.
"""

import pytest

from repro.analysis.mc.checker import ModelChecker
from repro.analysis.mc.oracles import BaselineReplicationOracle
from repro.analysis.mc.strategies import FifoStrategy
from repro.baselines.base import BaselinePayload
from repro.baselines.eunomia import EunomiaBatch
from repro.core.label import Label, LabelType
from repro.core.replication import ReplicationMap

BASELINE_SCENARIOS = ("gentlerain-chain3", "cure-chain3",
                      "eunomia-chain3", "okapi-chain3")


@pytest.mark.parametrize("name", BASELINE_SCENARIOS)
def test_fifo_run_is_clean_and_has_choice_points(name):
    outcome = ModelChecker(name).run_once(FifoStrategy())
    assert outcome.ok, outcome.violations
    assert outcome.decisions, "a run with zero choice points proves nothing"


@pytest.mark.slow
@pytest.mark.parametrize("name", ("eunomia-chain3", "okapi-chain3"))
def test_exhaustive_sweep_is_clean(name):
    result = ModelChecker(name).sweep_exhaustive(depth=3)
    assert result.ok, [o.violations for o in result.counterexamples]
    assert result.runs > 1


@pytest.mark.slow
@pytest.mark.parametrize("name", ("eunomia-chain3", "okapi-chain3"))
def test_delay_sweep_is_clean(name):
    result = ModelChecker(name).sweep_delay(budget=6, seed=11)
    assert result.ok, [o.violations for o in result.counterexamples]
    assert len(result.digests) > 1


# ---------------------------------------------------------------------------
# BaselineReplicationOracle
# ---------------------------------------------------------------------------

def _payload(key, origin="I"):
    label = Label(LabelType.UPDATE, src=f"{origin}/g", ts=1.0, target=key,
                  origin_dc=origin)
    return BaselinePayload(label=label, key=key, value_size=8,
                           created_at=1.0, stamp=1.0)


def _oracle():
    replication = ReplicationMap(["I", "F", "T"])
    replication.set_group("g0", ("I", "F", "T"))
    replication.set_group("g1", ("I", "F"))
    return BaselineReplicationOracle(replication)


def test_oracle_accepts_legal_payload_delivery():
    oracle = _oracle()
    oracle.on_deliver("dc:I", "dc:F", 0, _payload("g1:k"))
    assert oracle.violations == []


def test_oracle_flags_delivery_back_to_origin():
    oracle = _oracle()
    oracle.on_deliver("seq:I", "dc:I", 0, _payload("g0:k"))
    assert len(oracle.violations) == 1
    assert "origin" in oracle.violations[0]


def test_oracle_flags_delivery_to_non_replica():
    oracle = _oracle()
    oracle.on_deliver("dc:I", "dc:T", 0, _payload("g1:k"))
    assert len(oracle.violations) == 1
    assert "non-replica" in oracle.violations[0]


def test_oracle_checks_inside_eunomia_batches():
    oracle = _oracle()
    batch = EunomiaBatch(origin_dc="I",
                         payloads=(_payload("g0:k"), _payload("g1:k")),
                         stable_ts=1.0)
    oracle.on_deliver("seq:I", "dc:T", 0, batch)
    assert len(oracle.violations) == 1  # g0:k fine, g1:k leaked


def test_oracle_ignores_sequencer_ingress_and_other_messages():
    oracle = _oracle()
    # datacenter -> its own sequencer is origin-side routing, not delivery
    oracle.on_deliver("dc:I", "seq:I", 0, _payload("g1:k", origin="I"))
    oracle.on_deliver("dc:I", "dc:F", 0, object())
    assert oracle.violations == []
