"""ScheduleController: decision recording, scripting, and kernel parity."""

import pytest

from repro.analysis.mc.controller import (DELAY, ScheduleController, TIE,
                                          decisions_hash, nondefault_count)
from repro.analysis.mc.scenario import build_scenario
from repro.analysis.mc.strategies import FifoStrategy
from repro.sim.engine import Simulator


def test_controlled_fifo_run_matches_uncontrolled_run():
    """An all-default controller must not change the execution at all."""
    plain = build_scenario("chain3")
    plain.run()

    controlled = build_scenario("chain3")
    controller = ScheduleController(FifoStrategy())
    controller.install(controlled.sim, controlled.network)
    controlled.run()

    assert controlled.digest() == plain.digest()
    # every recorded decision was the FIFO default
    assert nondefault_count(controller.trace) == 0
    assert len(controller.trace) > 0


def test_scripted_tie_choice_flips_event_order():
    sim = Simulator()
    order = []
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(1.0, lambda: order.append("b"))
    controller = ScheduleController(FifoStrategy(), script=[[TIE, 2, 1]])
    controller.install(sim)
    sim.run()
    assert order == ["b", "a"]
    assert controller.trace == [[TIE, 2, 1]]


def test_out_of_range_scripted_choice_falls_back_to_fifo():
    sim = Simulator()
    order = []
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(1.0, lambda: order.append("b"))
    controller = ScheduleController(FifoStrategy(), script=[[TIE, 2, 9]])
    controller.install(sim)
    sim.run()
    assert order == ["a", "b"]
    assert controller.trace == [[TIE, 2, 0]]


def test_single_candidate_is_not_a_decision_point():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    controller = ScheduleController(FifoStrategy())
    controller.install(sim)
    sim.run()
    assert controller.trace == []


def test_install_refuses_second_controller():
    sim = Simulator()
    ScheduleController(FifoStrategy()).install(sim)
    with pytest.raises(RuntimeError):
        ScheduleController(FifoStrategy()).install(sim)


def test_untargeted_links_are_not_decision_points():
    controller = ScheduleController(
        FifoStrategy(), delay_links=frozenset({("a", "b")}))
    assert controller._perturb("x", "y") == 0.0
    assert controller.trace == []
    assert controller._perturb("a", "b") == 0.0
    assert controller.trace == [[DELAY, 0.0]]


def test_decisions_hash_is_stable_and_sensitive():
    d1 = [[TIE, 2, 1], [DELAY, 1.5]]
    h = decisions_hash("chain3", None, d1)
    assert h == decisions_hash("chain3", None, [list(x) for x in d1])
    assert h != decisions_hash("chain3", None, [[TIE, 2, 0], [DELAY, 1.5]])
    assert h != decisions_hash("chain3", "drop-fifo", d1)
    assert h != decisions_hash("reconfig-chain3", None, d1)
