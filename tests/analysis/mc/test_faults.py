"""Fault timing as a schedulable decision (``["fault", k, choice]``)."""

import pytest

from repro.analysis.mc.checker import ModelChecker
from repro.analysis.mc.controller import (FAULT, ScheduleController, TIE,
                                          nondefault_count)
from repro.analysis.mc.shrink import shrink_decisions
from repro.analysis.mc.strategies import FifoStrategy, PctStrategy


# ---------------------------------------------------------------------------
# controller
# ---------------------------------------------------------------------------

def test_choose_fault_records_the_default():
    controller = ScheduleController(FifoStrategy())
    assert controller.choose_fault("plan[0]:crash-serializer", 4) == 0
    assert controller.trace == [[FAULT, 4, 0]]


def test_scripted_fault_choice_is_replayed():
    controller = ScheduleController(FifoStrategy(), script=[[FAULT, 4, 2]])
    assert controller.choose_fault("plan[0]:crash-serializer", 4) == 2
    assert controller.trace == [[FAULT, 4, 2]]


def test_out_of_range_fault_choice_clamps_to_default():
    controller = ScheduleController(FifoStrategy(), script=[[FAULT, 4, 9]])
    assert controller.choose_fault("plan[0]:crash-serializer", 4) == 0
    assert controller.trace == [[FAULT, 4, 0]]


def test_pct_strategy_draws_fault_timing_from_its_rng():
    strategy = PctStrategy(seed=7)
    picks = {strategy.choose_fault("x", 4) for _ in range(32)}
    assert picks <= {0, 1, 2, 3}
    assert len(picks) > 1


def test_nondefault_count_sees_fault_decisions():
    assert nondefault_count([[FAULT, 4, 0], [TIE, 2, 0]]) == 0
    assert nondefault_count([[FAULT, 4, 3], [TIE, 2, 1]]) == 2


def test_shrinker_reduces_fault_decisions_toward_the_default():
    base = [[TIE, 2, 1], [FAULT, 4, 3], [TIE, 3, 2]]

    def test_fn(candidate):
        # failure depends only on the fault timing
        fault = [d for d in candidate if d[0] == FAULT]
        return ["boom"] if fault and fault[0][2] == 3 else None

    result = shrink_decisions(base, test_fn)
    assert result is not None
    decisions, violations = result
    assert violations == ["boom"]
    assert nondefault_count(decisions) == 1
    assert decisions[1] == [FAULT, 4, 3]


# ---------------------------------------------------------------------------
# the crash-chain3 scenario under the checker
# ---------------------------------------------------------------------------

def test_crash_chain3_is_clean_and_exposes_the_fault_decision():
    outcome = ModelChecker("crash-chain3").run_once(FifoStrategy())
    assert outcome.ok, outcome.violations
    faults = [d for d in outcome.decisions if d[0] == FAULT]
    assert faults == [[FAULT, 4, 0]]


@pytest.mark.parametrize("choice", [1, 2, 3])
def test_every_crash_instant_survives_the_oracles(choice):
    outcome = ModelChecker("crash-chain3").replay([[FAULT, 4, choice]])
    assert outcome.ok, (choice, outcome.violations)


def test_forced_fault_timing_replays_bit_identically():
    checker = ModelChecker("crash-chain3")
    first = checker.replay([[FAULT, 4, 2]])
    second = checker.replay([[FAULT, 4, 2]])
    assert first.digest == second.digest
    assert [d for d in first.decisions if d[0] == FAULT] == [[FAULT, 4, 2]]
