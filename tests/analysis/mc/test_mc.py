"""End-to-end model checking: sweeps are clean on the real protocol, every
seeded mutation is caught and shrinks to a tiny replayable counterexample."""

import json

import pytest

from repro.analysis.mc.__main__ import main
from repro.analysis.mc.checker import ModelChecker
from repro.analysis.mc.controller import nondefault_count
from repro.analysis.mc.scenario import MUTATIONS, SCENARIOS
from repro.analysis.mc.strategies import FifoStrategy


def test_baseline_chain3_has_no_violations():
    outcome = ModelChecker("chain3").run_once(FifoStrategy())
    assert outcome.ok, outcome.violations
    assert outcome.decisions, "a run with zero choice points proves nothing"


def test_exhaustive_sweep_is_clean_and_covers_permutations():
    result = ModelChecker("chain3").sweep_exhaustive(depth=3)
    assert result.ok, [o.violations for o in result.counterexamples]
    assert not result.truncated
    assert result.runs > 1  # the first ties really do branch


def test_pct_sweep_is_clean():
    result = ModelChecker("chain3").sweep_pct(budget=8, seed=11)
    assert result.ok, [o.violations for o in result.counterexamples]
    assert len(result.digests) > 1  # priorities genuinely reorder events


def test_delay_sweep_is_clean():
    result = ModelChecker("chain3").sweep_delay(budget=8, seed=11)
    assert result.ok, [o.violations for o in result.counterexamples]
    assert len(result.digests) > 1


@pytest.mark.parametrize("mutation", sorted(MUTATIONS))
def test_mutation_is_caught_and_shrinks_small(mutation):
    checker = ModelChecker("chain3", mutation=mutation)
    outcome = checker.run_once(FifoStrategy())
    assert not outcome.ok, f"checker failed to catch {mutation}"
    ce = checker.shrink(outcome)
    assert ce.violations
    assert len(ce.decisions) <= 10
    assert nondefault_count(ce.decisions) <= 10


@pytest.mark.parametrize("mutation", sorted(MUTATIONS))
def test_mutation_counterexample_replays_bit_identically(mutation):
    checker = ModelChecker("chain3", mutation=mutation)
    ce = checker.shrink(checker.run_once(FifoStrategy()))
    first = checker.replay(ce.decisions)
    second = checker.replay(ce.decisions)
    assert first.digest == second.digest == ce.digest
    assert first.violations == second.violations == ce.violations


def test_expected_oracle_fires_per_mutation():
    kinds = {
        "drop-fifo": "causality:",
        "drop-label": "completeness:",
        "leak-routing": "partial-replication:",
    }
    for mutation, prefix in kinds.items():
        outcome = ModelChecker("chain3", mutation=mutation).run_once(
            FifoStrategy())
        assert any(v.startswith(prefix) for v in outcome.violations), (
            f"{mutation} should trip the {prefix} oracle; "
            f"got {outcome.violations}")


def test_every_scenario_baseline_is_clean():
    for name in sorted(SCENARIOS):
        outcome = ModelChecker(name).run_once(FifoStrategy())
        assert outcome.ok, (name, outcome.violations)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_list_exits_zero(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in SCENARIOS:
        assert name in out
    for name in MUTATIONS:
        assert name in out


def test_cli_clean_sweep_exits_zero(capsys):
    assert main(["--scenario", "chain3", "--strategy", "exhaustive",
                 "--depth", "2", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["counterexamples"] == 0


def test_cli_mutation_writes_counterexample_and_replays(tmp_path, capsys):
    out = tmp_path / "ce.json"
    code = main(["--scenario", "chain3", "--strategy", "fifo",
                 "--mutate", "drop-fifo", "--out", str(out)])
    capsys.readouterr()
    assert code == 2
    assert out.exists()
    assert main(["--replay", str(out)]) == 0
    text = capsys.readouterr().out
    assert "deterministic: yes" in text


def test_cli_unknown_scenario_is_an_error(capsys):
    assert main(["--scenario", "nope"]) == 1
