"""ddmin shrinker and counterexample serialization (no simulator needed)."""

import pytest

from repro.analysis.mc.controller import DELAY, TIE, nondefault_count
from repro.analysis.mc.shrink import Counterexample, shrink_decisions


def _decisions(choices):
    return [[TIE, 4, c] for c in choices]


def test_single_culprit_is_isolated():
    """Failure iff decision #7 is non-default: everything else shrinks."""
    base = _decisions([1, 2, 0, 3, 1, 0, 2, 3, 1, 2])

    def test_fn(candidate):
        if len(candidate) > 7 and candidate[7][2] == 3:
            return ["boom"]
        return None

    result = shrink_decisions(base, test_fn)
    assert result is not None
    decisions, violations = result
    assert violations == ["boom"]
    # placeholders up to index 7 survive (alignment), nothing after
    assert len(decisions) == 8
    assert nondefault_count(decisions) == 1
    assert decisions[7] == [TIE, 4, 3]


def test_schedule_independent_failure_shrinks_to_empty():
    base = _decisions([1, 2, 3, 1, 2])
    result = shrink_decisions(base, lambda candidate: ["always"])
    assert result == ([], ["always"])


def test_unreproducible_failure_returns_none():
    base = _decisions([1, 2])

    def test_fn(candidate):
        return None

    assert shrink_decisions(base, test_fn) is None


def test_two_culprits_both_survive():
    base = _decisions([1, 0, 2, 0, 3, 0, 1, 2])

    def test_fn(candidate):
        ok = (len(candidate) > 4 and candidate[2][2] == 2
              and candidate[4][2] == 3)
        return ["pair"] if ok else None

    result = shrink_decisions(base, test_fn)
    assert result is not None
    decisions, _ = result
    assert nondefault_count(decisions) == 2
    assert decisions[2] == [TIE, 4, 2]
    assert decisions[4] == [TIE, 4, 3]


def test_counterexample_json_roundtrip():
    ce = Counterexample(
        scenario="chain3", mutation="drop-fifo", strategy="pct",
        decisions=[[TIE, 3, 1], [DELAY, 1.5]],
        violations=["causality: x before y"],
        digest="ab" * 32, seed=7, shrunk=True, original_decision_count=100)
    loaded = Counterexample.from_json(ce.to_json())
    assert loaded == ce
    assert loaded.schedule_hash == ce.schedule_hash
    assert loaded.uses_delays is True


def test_counterexample_hash_mismatch_rejected():
    ce = Counterexample(
        scenario="chain3", mutation=None, strategy="fifo",
        decisions=[[TIE, 3, 1]], violations=[], digest="")
    tampered = ce.to_json().replace('"chain3"', '"chain3x"', 1)
    # scenario is hashed: editing it invalidates the stored schedule hash
    with pytest.raises(ValueError):
        Counterexample.from_json(tampered)


def test_counterexample_format_version_enforced():
    ce = Counterexample(
        scenario="chain3", mutation=None, strategy="fifo",
        decisions=[], violations=[], digest="")
    old = ce.to_json().replace('"format_version": 1', '"format_version": 0')
    with pytest.raises(ValueError):
        Counterexample.from_json(old)
