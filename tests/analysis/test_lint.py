"""The SAT lint: each rule fires on its known-bad fixture, the clean
fixture passes, noqa suppresses, and the current tree is clean (tier-1)."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.lint import lint_paths, lint_source
from repro.analysis.rules import ALL_RULES, RULES_BY_CODE

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def codes_in(findings):
    return {finding.code for finding in findings}


# ---------------------------------------------------------------------------
# rule catalogue sanity
# ---------------------------------------------------------------------------

def test_rule_catalogue_is_complete():
    assert [rule.code for rule in ALL_RULES] == [
        "SAT001", "SAT002", "SAT003", "SAT004", "SAT005", "SAT006",
        "SAT007", "SAT008", "SAT009"]
    for rule in ALL_RULES:
        assert rule.title and rule.rationale


# ---------------------------------------------------------------------------
# each rule is demonstrated by a failing fixture
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("code", sorted(RULES_BY_CODE))
def test_bad_fixture_trips_rule(code):
    fixture = FIXTURES / f"bad_{code.lower()}.py"
    report = lint_paths([fixture])
    assert code in codes_in(report.findings), (
        f"{fixture.name} must trip {code}; got {codes_in(report.findings)}")


def test_bad_sat001_finds_every_wall_clock_read():
    report = lint_paths([FIXTURES / "bad_sat001.py"])
    sat001 = [f for f in report.findings if f.code == "SAT001"]
    assert len(sat001) >= 5  # time.time, time_ns, now, today, utcnow


def test_bad_sat003_finds_loop_listcomp_and_materializer():
    report = lint_paths([FIXTURES / "bad_sat003.py"])
    lines = {f.line for f in report.findings if f.code == "SAT003"}
    assert len(lines) >= 4  # for-set, listcomp, for-frozenset, list(set), keys


def test_bad_sat006_fires_in_subclass_of_subclass():
    report = lint_paths([FIXTURES / "bad_sat006.py"])
    sat006 = [f for f in report.findings if f.code == "SAT006"]
    assert len(sat006) == 3


def test_bad_sat007_flags_each_bad_push_and_accepts_good_ones():
    report = lint_paths([FIXTURES / "bad_sat007.py"])
    sat007 = [f for f in report.findings if f.code == "SAT007"]
    # lone priority, payload tie-break, opaque entry, heappushpop — but
    # not the counter/label-key/subscript pushes nor the noqa'd one
    assert len(sat007) == 4
    flagged_lines = {f.line for f in sat007}
    good_lines = {23, 27, 31, 35}
    assert not flagged_lines & good_lines


def test_sat007_inline_variants():
    assert codes_in(lint_source(
        "import heapq\nheapq.heappush(h, (t, event))\n")) == {"SAT007"}
    assert lint_source(
        "import heapq\nheapq.heappush(h, (t, self._seq, event))\n") == []
    assert lint_source(
        "import heapq\nheapq.heappush(h, (label.ts, label.src))\n") == []


def test_bad_sat008_flags_each_defect_and_spares_conforming_class():
    report = lint_paths([FIXTURES / "bad_sat008.py"])
    sat008 = [f for f in report.findings if f.code == "SAT008"]
    # not-frozen + no-slots, no-slots, and four non-plain annotations;
    # CleanMsg and the non-dataclass contribute nothing
    assert len(sat008) == 7
    assert not any("CleanMsg" in f.message for f in sat008)


def test_sat008_only_applies_to_wire_message_classes():
    # same defects, but neither a messages.py module nor a *Payload/*Msg
    # class name: out of scope
    source = ("from dataclasses import dataclass\n"
              "@dataclass\n"
              "class Config:\n"
              "    values: dict\n")
    assert lint_source(source, filename="config.py") == []
    assert codes_in(lint_source(source, filename="messages.py")) == {"SAT008"}


def test_bad_sat009_finds_both_misuses_and_respects_noqa():
    report = lint_paths([FIXTURES / "bad_sat009.py"])
    sat009 = [f for f in report.findings if f.code == "SAT009"]
    assert len(sat009) == 2  # get_event_loop + ensure_future, noqa'd one out
    assert report.findings == sat009  # the good patterns stay silent


def test_sat009_flags_the_import_form():
    source = "from asyncio import get_event_loop\n"
    assert codes_in(lint_source(source)) == {"SAT009"}
    assert lint_source("from asyncio import get_running_loop\n") == []


def test_clean_fixture_has_no_findings():
    report = lint_paths([FIXTURES / "clean_fixture.py"])
    assert report.ok, report.format_human()


# ---------------------------------------------------------------------------
# suppression and filtering
# ---------------------------------------------------------------------------

def test_noqa_with_code_suppresses_only_that_rule():
    source = "import time\nt = time.time()  # noqa: SAT001\n"
    assert lint_source(source) == []
    source_wrong_code = "import time\nt = time.time()  # noqa: SAT002\n"
    assert codes_in(lint_source(source_wrong_code)) == {"SAT001"}


def test_bare_noqa_suppresses_everything():
    source = "import random\nx = random.random()  # noqa\n"
    assert lint_source(source) == []


def test_select_and_ignore():
    fixture = FIXTURES / "bad_sat005.py"
    assert codes_in(lint_paths([fixture], select={"SAT005"}).findings) == {"SAT005"}
    assert lint_paths([fixture], ignore={"SAT005"}).ok


def test_unknown_code_rejected():
    with pytest.raises(ValueError):
        lint_paths([FIXTURES], select={"SAT999"})


# ---------------------------------------------------------------------------
# targeted detection details (inline sources)
# ---------------------------------------------------------------------------

def test_order_insensitive_consumers_are_allowed():
    source = (
        "total = sum(x for x in set(items))\n"
        "first = min(frozenset(items))\n"
        "ordered = sorted(set(items))\n"
        "unique = {x for x in set(items)}\n"
    )
    assert lint_source(source) == []


def test_dictcomp_over_set_is_flagged():
    assert codes_in(lint_source("d = {x: 0 for x in set(items)}\n")) == {"SAT003"}


def test_known_set_returning_apis_are_tracked():
    source = "for dc in replication.replicas(key):\n    send(dc)\n"
    assert codes_in(lint_source(source)) == {"SAT003"}


def test_random_class_constructors_are_allowed():
    assert lint_source("import random\nrng = random.Random(7)\n") == []


def test_timestampish_comparison_requires_eq():
    assert lint_source("ready = now >= deadline\n") == []
    assert codes_in(lint_source("ready = now == deadline\n")) == {"SAT004"}


def test_self_attribute_writes_are_fine():
    source = (
        "from repro.sim.process import Process\n"
        "class A(Process):\n"
        "    def receive(self, sender, message):\n"
        "        self.last = message\n"
    )
    assert lint_source(source) == []


# ---------------------------------------------------------------------------
# the tree itself must be clean — this is the tier-1 regression gate
# ---------------------------------------------------------------------------

def test_src_repro_is_lint_clean_in_process():
    report = lint_paths([REPO_ROOT / "src" / "repro"])
    assert report.files_checked > 50
    assert report.ok, report.format_human()


def test_obs_package_is_lint_clean():
    # the observability layer must obey the same determinism discipline it
    # exists to verify (no wall clocks, no unsorted iteration in exports)
    report = lint_paths([REPO_ROOT / "src" / "repro" / "obs"])
    assert report.files_checked >= 6
    assert report.ok, report.format_human()


def test_cli_on_src_repro_exits_zero_with_json():
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO_ROOT / "src")
                         + os.pathsep + env.get("PYTHONPATH", ""))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "src/repro", "--json"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["ok"] is True
    assert payload["findings"] == []
    assert payload["files_checked"] > 50


def test_cli_nonzero_exit_on_findings(capsys):
    from repro.analysis.__main__ import main
    assert main([str(FIXTURES / "bad_sat001.py")]) == 1
    out = capsys.readouterr().out
    assert "SAT001" in out


def test_cli_list_rules(capsys):
    from repro.analysis.__main__ import main
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ALL_RULES:
        assert rule.code in out


def test_cli_missing_path_is_a_usage_error():
    from repro.analysis.__main__ import main
    with pytest.raises(SystemExit) as excinfo:
        main(["/no/such/path"])
    assert excinfo.value.code == 2


def test_unparseable_file_reported_not_crashed(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    report = lint_paths([bad])
    assert not report.ok
    assert report.findings[0].code == "SAT000"
    assert "could not be parsed" in report.findings[0].message
    # a parse error must survive --select: coverage loss always surfaces
    selected = lint_paths([bad], select={"SAT003"})
    assert not selected.ok
