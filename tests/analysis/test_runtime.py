"""The runtime hazard checker: FIFO auditing, tie detection, digesting,
and the causality cross-check, on both toy networks and a real cluster."""

import pytest

from repro.analysis.runtime import HazardMonitor
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.process import Process
from repro.verify.checker import ExecutionLog
from repro.workloads.synthetic import SyntheticWorkload


class Recorder(Process):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.inbox = []

    def receive(self, sender, message):
        self.inbox.append((sender, message))


def toy_pair():
    sim = Simulator()
    network = Network(sim, default_latency=1.0)
    a, b = Recorder(sim, "a"), Recorder(sim, "b")
    a.attach_network(network)
    b.attach_network(network)
    return sim, network, a, b


# ---------------------------------------------------------------------------
# FIFO auditing
# ---------------------------------------------------------------------------

def test_clean_link_has_no_fifo_violations():
    sim, network, a, b = toy_pair()
    monitor = HazardMonitor.install(sim, network)
    for i in range(20):
        a.send("b", i)
    sim.run()
    report = monitor.report()
    assert report.ok
    assert report.messages_delivered == 20
    assert b.inbox == [("a", i) for i in range(20)]


def test_fifo_holds_even_when_latency_drops_mid_stream():
    """A later message on a faster link must still arrive after the
    earlier, slower one — the network clamps, the monitor confirms."""
    sim, network, a, b = toy_pair()
    monitor = HazardMonitor.install(sim, network)
    network.inject_extra_delay("a", "b", 50.0)
    a.send("b", "slow")
    network.inject_extra_delay("a", "b", 0.0)
    a.send("b", "fast")
    sim.run()
    assert [m for _, m in b.inbox] == ["slow", "fast"]
    assert monitor.report().ok


def test_out_of_order_delivery_is_reported():
    """Drive the trace protocol directly with a reordered link."""
    monitor = HazardMonitor()
    monitor.on_send("a", "b", "m1", arrival=1.0)
    monitor.on_send("a", "b", "m2", arrival=2.0)
    monitor.on_deliver("a", "b", seq=2, message="m2")
    monitor.on_deliver("a", "b", seq=1, message="m1")
    report = monitor.report()
    assert not report.ok
    assert len(report.fifo_violations) >= 1
    violation = report.fifo_violations[0]
    assert (violation.src, violation.dst) == ("a", "b")
    assert "FIFO violation" in violation.describe()


def test_arrival_regression_at_send_time_is_reported():
    monitor = HazardMonitor()
    monitor.on_send("a", "b", "m1", arrival=5.0)
    monitor.on_send("a", "b", "m2", arrival=3.0)  # would overtake
    assert not monitor.report().ok


def test_partitioned_links_hold_without_violation():
    sim, network, a, b = toy_pair()
    monitor = HazardMonitor.install(sim, network)
    network.partition("a", "b")
    a.send("b", "held")
    network.heal("a", "b")
    a.send("b", "arrives")
    sim.run()
    # the reliable link releases the held message at heal time, keeping
    # its FIFO slot ahead of traffic sent after the heal
    assert [m for _, m in b.inbox] == ["held", "arrives"]
    assert monitor.report().ok


# ---------------------------------------------------------------------------
# tie detection
# ---------------------------------------------------------------------------

def test_same_time_events_are_flagged_as_ties():
    sim = Simulator()
    monitor = HazardMonitor()
    monitor.attach_sim(sim)
    sim.schedule(5.0, lambda: None)
    sim.schedule(5.0, lambda: None)
    sim.schedule(7.0, lambda: None)
    sim.run()
    report = monitor.report()
    assert report.ties_total == 1
    assert report.tie_hazards[0].time == 5.0
    assert "pop order" in report.tie_hazards[0].describe()


def test_distinct_times_produce_no_ties():
    sim = Simulator()
    monitor = HazardMonitor()
    monitor.attach_sim(sim)
    for i in range(10):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert monitor.report().ties_total == 0


def test_double_attach_is_rejected():
    sim, network, _, _ = toy_pair()
    HazardMonitor.install(sim, network)
    with pytest.raises(RuntimeError):
        HazardMonitor().attach_sim(sim)
    with pytest.raises(RuntimeError):
        HazardMonitor().attach_network(network)


def test_detach_restores_uninstrumented_operation():
    sim, network, a, b = toy_pair()
    monitor = HazardMonitor.install(sim, network)
    monitor.detach()
    assert sim.observer is None and network.trace is None
    a.send("b", "plain")
    sim.run()
    assert monitor.report().messages_delivered == 0
    assert [m for _, m in b.inbox] == ["plain"]


# ---------------------------------------------------------------------------
# full-cluster integration: FIFO + causality cross-check
# ---------------------------------------------------------------------------

def checked_cluster_run(seed=11, duration=400.0):
    from repro.harness.runner import Cluster, ClusterConfig
    workload = SyntheticWorkload(correlation="full", read_ratio=0.7,
                                 value_size=8, keys_per_group=4,
                                 groups_per_dc=2)
    cluster = Cluster(ClusterConfig(system="saturn", sites=("I", "F", "T"),
                                    clients_per_dc=2, seed=seed,
                                    hazard_monitor=True), workload)
    log = ExecutionLog(cluster.replication)
    cluster.attach_execution_log(log)
    cluster.run(duration=duration, warmup=50.0)
    return cluster, log


def test_saturn_run_is_fifo_clean_and_causally_consistent():
    cluster, log = checked_cluster_run()
    monitor = cluster.hazard_monitor
    assert monitor.crosscheck(log) == []
    report = monitor.report()
    assert report.ok, report.summary()
    assert report.labels_delivered > 0
    assert len(monitor.label_stream("I")) > 0
    assert len(report.trace_digest) == 64


def test_crosscheck_catches_fabricated_visibility_reordering():
    """Feed the monitor a label stream the log says became visible in the
    opposite order; the cross-check must object."""
    from repro.core.label import Label, LabelType
    from repro.core.replication import ReplicationMap
    from repro.datacenter.messages import LabelBatch

    replication = ReplicationMap(["A", "B"])
    log = ExecutionLog(replication)
    first = Label(LabelType.UPDATE, src="gA", ts=1.0, target="k1",
                  origin_dc="A")
    second = Label(LabelType.UPDATE, src="gA", ts=2.0, target="k2",
                   origin_dc="A")
    # at datacenter B the log records: second visible, then first
    log.record_update(first, origin_dc="A", created_at=1.0)
    log.record_update(second, origin_dc="A", created_at=2.0)
    log.record_visible(second, dc="B", at=5.0)
    log.record_visible(first, dc="B", at=6.0)

    monitor = HazardMonitor()
    batch = LabelBatch((first, second), epoch=0)
    seq = monitor.on_send("ser", "dc:B", batch, arrival=4.0)
    monitor.on_deliver("ser", "dc:B", seq, batch)
    violations = monitor.crosscheck(log)
    assert violations, "reordered visibility must be reported"
    assert not monitor.report().ok
