"""Cross-baseline causal-conformance harness.

Every causally consistent system in the five-way comparison — Saturn and
the four stabilization/sequencer baselines — must pass the *same*
oracles on the *same* deployments: causal visibility order, session
monotonicity, genuine partial replication (items are visible only where
replicated), and bit-identical double-run delivery digests.  The
property tests then drive randomized workload shapes through each
protocol and check, with an oracle written independently from
``repro.verify.checker``, that every datacenter's visibility sequence is
a linear extension of the happens-before order.
"""

import bisect

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.harness.runner import Cluster, ClusterConfig
from repro.verify.checker import ExecutionLog
from repro.workloads.synthetic import SyntheticWorkload

FIVE_WAY = ("saturn", "gentlerain", "cure", "eunomia", "okapi")

#: the two conformance deployments: the 3-site chain the model checker
#: uses, and a 5-site spread across both EC2 coasts plus Europe/Asia
CHAIN3 = ("I", "F", "T")
TREE5 = ("NV", "I", "F", "T", "S")
TOPOLOGIES = {"chain3": CHAIN3, "tree5": TREE5}
#: tree5 runs are ~2x the chain3 cost: keep them out of the default lane
TOPO_PARAMS = ["chain3", pytest.param("tree5", marks=pytest.mark.slow)]


def run_cluster(system, sites=CHAIN3, workload=None, duration=600.0,
                seed=1, clients_per_dc=4, **overrides):
    workload = workload or SyntheticWorkload(
        correlation="full", read_ratio=0.7, value_size=8,
        keys_per_group=4, groups_per_dc=2)
    cluster = Cluster(ClusterConfig(system=system, sites=sites,
                                    clients_per_dc=clients_per_dc,
                                    seed=seed, **overrides),
                      workload)
    log = ExecutionLog(cluster.replication)
    cluster.attach_execution_log(log)
    results = cluster.run(duration=duration, warmup=100.0)
    return results, log, cluster


# one full run per (system, topology), shared by the oracle tests below
_RUNS = {}


def checked_run(system, topo_name):
    key = (system, topo_name)
    if key not in _RUNS:
        _RUNS[key] = run_cluster(system, sites=TOPOLOGIES[topo_name])
    return _RUNS[key]


def assert_linear_extension(log, replication):
    """Independent oracle: at every datacenter the visibility order must
    linearly extend happens-before, restricted to the keys that
    datacenter replicates.  A dependency counts as satisfied when it —
    or, with last-writer-wins registers, a newer version of its key —
    became visible earlier (the causal+ convergence rule)."""
    for dc in replication.datacenters:
        positions = log.visibility_positions(dc)
        by_key = {}
        for version, pos in positions.items():
            record = log.updates.get(version)
            if record is not None and record.key:
                by_key.setdefault(record.key, []).append((pos, version))
        # per key: visibility positions (sorted) + prefix-max version, so
        # each dependency check is a binary search instead of a scan
        prepared = {}
        for key, entries in by_key.items():
            entries.sort()
            best, prefix_max = None, []
            for _, v in entries:
                best = v if best is None or v > best else best
                prefix_max.append(best)
            prepared[key] = ([p for p, _ in entries], prefix_max)
        for version, pos in positions.items():
            record = log.updates.get(version)
            if record is None:
                continue
            for dep in record.deps:
                dep_record = log.updates.get(dep)
                if dep_record is None:
                    continue
                if not replication.is_replicated_at(dep_record.key, dc):
                    continue  # genuine partial replication
                poss, prefix_max = prepared.get(dep_record.key, ([], []))
                before = bisect.bisect_left(poss, pos)
                assert before > 0 and prefix_max[before - 1] >= dep, (
                    f"{dc}: {version} visible before dependency {dep}")


# ---------------------------------------------------------------------------
# shared oracles, all five systems x both topologies
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("topo", TOPO_PARAMS)
@pytest.mark.parametrize("system", FIVE_WAY)
def test_causal_visibility_and_sessions(system, topo):
    results, log, _ = checked_run(system, topo)
    assert results.ops_completed > 500
    assert log.check() == []


@pytest.mark.parametrize("topo", TOPO_PARAMS)
@pytest.mark.parametrize("system", FIVE_WAY)
def test_visibility_is_linear_extension_of_happens_before(system, topo):
    _, log, cluster = checked_run(system, topo)
    assert len(log.updates) > 100
    assert_linear_extension(log, cluster.replication)


@pytest.mark.parametrize("system", FIVE_WAY)
def test_genuine_partial_replication(system):
    """Degree-2 replication: every version a datacenter reveals must be
    of a key that datacenter actually replicates, and remote groups must
    still converge (no liveness loss from the partial topology)."""
    workload = SyntheticWorkload(correlation="degree", degree=2,
                                 read_ratio=0.7, remote_read_fraction=0.2,
                                 keys_per_group=4)
    results, log, cluster = run_cluster(system, workload=workload,
                                        duration=800.0)
    assert results.ops_completed > 200
    assert log.check() == []
    replication = cluster.replication
    leaked = []
    for dc in CHAIN3:
        for version in log.visibility_positions(dc):
            record = log.updates.get(version)
            if record is None or not record.key:
                continue
            if not replication.is_replicated_at(record.key, dc):
                leaked.append((dc, record.key, version))
    assert leaked == []
    # liveness: at least one remote group's updates became visible
    remote = [version for dc in CHAIN3
              for version in log.visibility_positions(dc)
              if (record := log.updates.get(version)) is not None
              and record.origin and record.origin != dc]
    assert remote


@pytest.mark.parametrize("system", FIVE_WAY)
def test_double_run_digest_determinism(system):
    digests = []
    for _ in range(2):
        _, _, cluster = run_cluster(system, duration=400.0,
                                    hazard_monitor=True)
        assert cluster.hazard_monitor.report().ok
        digests.append(cluster.hazard_monitor.trace_digest())
    assert digests[0] == digests[1]


# ---------------------------------------------------------------------------
# property tests: randomized workload shapes
# ---------------------------------------------------------------------------

@pytest.mark.slow
@pytest.mark.parametrize("system", FIVE_WAY)
@settings(max_examples=3, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
@given(seed=st.integers(min_value=1, max_value=10_000),
       read_ratio=st.floats(min_value=0.3, max_value=0.9),
       keys=st.integers(min_value=2, max_value=6))
def test_conformance_under_random_workloads(system, seed, read_ratio, keys):
    workload = SyntheticWorkload(correlation="full", read_ratio=read_ratio,
                                 value_size=8, keys_per_group=keys,
                                 groups_per_dc=1)
    _, log, cluster = run_cluster(system, workload=workload, seed=seed,
                                  duration=300.0, clients_per_dc=2)
    assert log.check() == []
    assert_linear_extension(log, cluster.replication)
