"""Cure baseline: vector stamps and per-origin stability."""

import dataclasses

import pytest

from repro.baselines.base import BaselinePayload
from repro.baselines.cure import CureDatacenter, cure_merge, freeze_vector
from repro.core.label import Label, LabelType
from repro.core.replication import ReplicationMap
from repro.harness.runner import MetricsHub
from repro.sim.clock import PhysicalClock
from repro.sim.cpu import CostModel
from repro.sim.engine import Simulator
from repro.sim.network import LatencyModel, Network
from repro.sim.rng import RngRegistry


def make_cluster():
    sim = Simulator()
    model = LatencyModel(local_latency=0.25)
    model.set("I", "F", 10.0)
    model.set("I", "T", 100.0)
    model.set("F", "T", 110.0)
    network = Network(sim, latency_model=model, rng=RngRegistry(seed=2))
    replication = ReplicationMap(["I", "F", "T"])
    metrics = MetricsHub(sim)
    dcs = {}
    for site in ("I", "F", "T"):
        dc = CureDatacenter(sim, site, site, replication, CostModel(),
                            PhysicalClock(sim), metrics=metrics)
        dc.attach_network(network)
        network.place(dc.name, site)
        dcs[site] = dc
    for dc in dcs.values():
        dc.start()
    return sim, dcs, metrics


def payload(ts, origin="I", key="k", deps=None):
    label = Label(LabelType.UPDATE, src=f"{origin}/g0", ts=ts, target=key,
                  origin_dc=origin)
    stamp = dict(deps or {})
    stamp[origin] = ts
    return BaselinePayload(label=label, key=key, value_size=8,
                           created_at=ts, stamp=freeze_vector(stamp))


def test_merge_vectors():
    v_i = freeze_vector({"I": 1.0})
    assert cure_merge(None, v_i) == v_i
    assert cure_merge(v_i, None) == v_i
    merged = cure_merge(freeze_vector({"I": 1.0, "F": 5.0}),
                        freeze_vector({"I": 3.0, "T": 2.0}))
    assert dict(merged) == {"I": 3.0, "F": 5.0, "T": 2.0}


def test_merge_result_is_canonical():
    # Same entries, same wire form — regardless of merge order.
    a = freeze_vector({"T": 2.0, "I": 1.0})
    b = freeze_vector({"F": 5.0})
    assert cure_merge(a, b) == cure_merge(b, a)
    assert cure_merge(a, b) == freeze_vector({"I": 1.0, "F": 5.0, "T": 2.0})


def test_wire_stamps_are_immutable():
    """Regression: stamps used to be dicts, aliased between the sender's
    payload and the receiver's _key_vectors — one side could silently
    rewrite the other's dependency metadata."""
    merged = cure_merge(freeze_vector({"I": 1.0}), freeze_vector({"F": 2.0}))
    assert isinstance(merged, tuple)
    with pytest.raises(TypeError):
        merged[0] = ("I", 99.0)
    p = payload(5.0)
    assert isinstance(p.stamp, tuple)
    with pytest.raises(dataclasses.FrozenInstanceError):
        p.stamp = freeze_vector({"I": 99.0})


def test_stored_vector_is_the_wire_stamp_unchanged():
    sim, dcs, _ = make_cluster()
    sim.run(until=200.0)
    p = payload(sim.now - 50.0, origin="I", deps={"T": 1.0})
    dcs["F"]._on_payload(p)
    sim.run(until=sim.now + 100.0)
    assert dcs["F"]._key_vectors["k"] == p.stamp
    assert isinstance(dcs["F"]._key_vectors["k"], tuple)


def test_vector_entries_matches_datacenters():
    sim, dcs, _ = make_cluster()
    assert dcs["I"].vector_entries() == 3


def test_visibility_bound_is_origin_latency():
    """Cure's key property: I->F visibility tracks the I-F link (10 ms),
    not the furthest datacenter."""
    sim, dcs, metrics = make_cluster()
    from repro.datacenter.messages import ClientUpdate
    from repro.sim.process import Process

    class Rec(Process):
        def __init__(self):
            super().__init__(sim, "probe")

        def receive(self, sender, message):
            pass

    Rec().attach_network(dcs["I"].network)
    sim.schedule(200.0, lambda: dcs["I"]._client_update(
        "probe", ClientUpdate("c", "k", 8, None)))
    sim.run(until=400.0)
    samples = metrics.visibility.samples("I", "F")
    assert samples
    assert samples[0] < 40.0  # ~10 ms link + stabilization rounds


def test_update_without_deps_visible_after_origin_stability():
    sim, dcs, _ = make_cluster()
    sim.run(until=200.0)
    p = payload(sim.now - 30.0, origin="I")
    dcs["F"]._on_payload(p)
    sim.run(until=sim.now + 50.0)
    assert dcs["F"].store.get("k") is not None


def test_update_blocked_by_unseen_dependency():
    """u from I depends on d from T; u must wait for d even when I's
    entry is already stable at F."""
    sim, dcs, _ = make_cluster()
    sim.run(until=400.0)
    now = sim.now
    d = payload(now - 50.0, origin="T", key="dep")
    u = payload(now - 20.0, origin="I", key="k",
                deps={"T": now - 50.0})
    # u's payload arrives first (I is close); d's later (T is far)
    dcs["F"]._on_payload(u)
    sim.run(until=sim.now + 40.0)
    assert dcs["F"].store.get("k") is None  # blocked: d not yet revealed
    dcs["F"]._on_payload(d)
    sim.run(until=sim.now + 200.0)
    assert dcs["F"].store.get("dep") is not None
    assert dcs["F"].store.get("k") is not None


def test_read_stamp_returns_dependency_vector():
    sim, dcs, _ = make_cluster()
    sim.run(until=200.0)
    p = payload(sim.now - 50.0, origin="I", deps={"T": 1.0})
    dcs["F"]._on_payload(p)
    sim.run(until=sim.now + 100.0)
    stored = dcs["F"].store.get("k")
    stamp = dict(dcs["F"].read_stamp("k", stored))
    assert stamp["I"] == p.label.ts
    assert stamp["T"] == 1.0


def test_stable_entry_own_dc_is_infinite():
    sim, dcs, _ = make_cluster()
    assert dcs["I"].stable_entry("I") == float("inf")
    assert dcs["I"].stable_entry("T") == float("-inf")


def test_is_stable_vector():
    sim, dcs, _ = make_cluster()
    sim.run(until=300.0)
    assert dcs["F"].is_stable(freeze_vector({"F": 1e9}))  # own entry stable
    assert dcs["F"].is_stable(freeze_vector({"I": 1.0, "T": 1.0}))
    assert not dcs["F"].is_stable(freeze_vector({"I": sim.now + 1e6}))
