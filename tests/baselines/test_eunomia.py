"""Eunomia baseline: site sequencer, deferred stabilization, batching."""

from repro.baselines.base import BaselinePayload
from repro.baselines.eunomia import (EunomiaBatch, EunomiaDatacenter,
                                     EunomiaTick, eunomia_merge)
from repro.core.replication import ReplicationMap
from repro.datacenter.messages import ClientUpdate
from repro.harness.runner import MetricsHub
from repro.sim.clock import PhysicalClock
from repro.sim.cpu import CostModel
from repro.sim.engine import Simulator
from repro.sim.network import LatencyModel, Network
from repro.sim.process import Process
from repro.sim.rng import RngRegistry


def make_cluster(batch_period=2.0):
    sim = Simulator()
    model = LatencyModel(local_latency=0.25)
    model.set("I", "F", 10.0)
    model.set("I", "T", 100.0)
    model.set("F", "T", 110.0)
    network = Network(sim, latency_model=model, rng=RngRegistry(seed=2))
    replication = ReplicationMap(["I", "F", "T"])
    metrics = MetricsHub(sim)
    dcs = {}
    for site in ("I", "F", "T"):
        dc = EunomiaDatacenter(sim, site, site, replication, CostModel(),
                               PhysicalClock(sim), metrics=metrics,
                               batch_period=batch_period)
        dc.attach_network(network)
        network.place(dc.name, site)
        dcs[site] = dc
    for dc in dcs.values():
        dc.start()
    return sim, dcs, metrics


class Probe(Process):
    """Swallows client replies so _client_update can be driven directly."""

    def __init__(self, sim, network):
        super().__init__(sim, "probe")
        self.attach_network(network)

    def receive(self, sender, message):
        pass


def write(sim, dc, key="k", at=None):
    probe = Probe(sim, dc.network)
    sim.schedule_at(at if at is not None else sim.now, lambda: dc._client_update(
        probe.name, ClientUpdate("c", key, 8, None)))


class TraceRecorder:
    def __init__(self):
        self.delivered = []

    def on_send(self, src, dst, message, arrival):
        return 0

    def on_deliver(self, src, dst, seq, message):
        self.delivered.append((src, dst, message))

    def on_drop(self, src, dst, message):
        pass


def test_merge_is_scalar_max():
    assert eunomia_merge(None, 3.0) == 3.0
    assert eunomia_merge(3.0, None) == 3.0
    assert eunomia_merge(2.0, 5.0) == 5.0
    assert eunomia_merge(5.0, 2.0) == 5.0


def test_sequencer_is_colocated_and_started():
    sim, dcs, _ = make_cluster()
    assert dcs["I"].sequencer.name == "seq:I"
    sim.run(until=30.0)
    # batch ticks fire from the start: heartbeats flow even with no updates
    assert dcs["I"].sequencer.batches_sent > 0


def test_updates_route_via_sequencer_not_directly():
    sim, dcs, _ = make_cluster()
    trace = TraceRecorder()
    sim.run(until=200.0)
    dcs["I"].network.trace = trace
    write(sim, dcs["I"])
    sim.run(until=sim.now + 150.0)  # the I-T link alone is 100 ms
    payload_hops = [(src, dst) for src, dst, m in trace.delivered
                    if isinstance(m, BaselinePayload)]
    assert payload_hops == [("dc:I", "seq:I")]
    batch_hops = {(src, dst) for src, dst, m in trace.delivered
                  if isinstance(m, EunomiaBatch) and m.payloads}
    assert batch_hops == {("seq:I", "dc:F"), ("seq:I", "dc:T")}
    assert dcs["I"].sequencer.updates_sequenced == 1


def test_no_all_to_all_stabilization_broadcast():
    """The 5 ms round sends one tick to the co-located sequencer; no
    StabilizationMsg ever crosses the network (the unobtrusive claim)."""
    sim, dcs, _ = make_cluster()
    trace = TraceRecorder()
    dcs["I"].network.trace = trace
    sim.run(until=60.0)
    kinds = {type(m).__name__ for _, _, m in trace.delivered}
    assert "StabilizationMsg" not in kinds
    tick_hops = {(src, dst) for src, dst, m in trace.delivered
                 if isinstance(m, EunomiaTick)}
    assert tick_hops == {("dc:I", "seq:I"), ("dc:F", "seq:F"),
                         ("dc:T", "seq:T")}


def test_remote_floors_come_from_batches():
    sim, dcs, _ = make_cluster()
    sim.run(until=300.0)
    # heartbeat batches alone must advance every remote floor
    assert set(dcs["F"]._remote_info) == {"I", "T"}
    assert dcs["F"]._remote_info["I"] > 0.0
    assert dcs["F"].gst() > 0.0


def test_visibility_waits_for_the_slowest_floor():
    """Global-cut semantics: I's update is visible at F (10 ms away) only
    once T's floor (>=110 ms away) has passed its timestamp too."""
    sim, dcs, _ = make_cluster()
    sim.run(until=300.0)
    write(sim, dcs["I"])
    sim.run(until=sim.now + 60.0)
    # payload + I's floor arrived long ago, but T's floor lags the write
    assert dcs["F"].store.get("k") is None
    sim.run(until=sim.now + 100.0)
    assert dcs["F"].store.get("k") is not None


def test_batch_period_trades_staleness_for_batches():
    sim_fast, dcs_fast, _ = make_cluster(batch_period=2.0)
    sim_fast.run(until=100.0)
    sim_slow, dcs_slow, _ = make_cluster(batch_period=20.0)
    sim_slow.run(until=100.0)
    assert (dcs_slow["I"].sequencer.batches_sent
            < dcs_fast["I"].sequencer.batches_sent / 4)


def test_isolated_sequencer_freezes_remote_visibility():
    sim, dcs, _ = make_cluster()
    sim.run(until=300.0)
    dcs["I"].network.isolate("seq:I")
    write(sim, dcs["I"])
    sim.run(until=sim.now + 200.0)
    assert dcs["I"].store.get("k") is not None   # local write unaffected
    assert dcs["F"].store.get("k") is None       # floor + payload held
    dcs["I"].network.rejoin("seq:I")
    sim.run(until=sim.now + 200.0)
    assert dcs["F"].store.get("k") is not None


def test_scalar_metadata_off_the_client_path():
    sim, dcs, _ = make_cluster()
    assert dcs["I"].vector_entries() == 0
    assert dcs["I"].read_metadata_entries() == 0
    assert dcs["I"].write_metadata_entries() == 0
