"""Explicit dependency checking (COPS-style): correctness under full
replication, unbounded metadata without the prune, and the paper's §7.3.1
claim — the transitivity prune is *unsafe* under partial geo-replication."""

import pytest

from repro.baselines.explicit import DepContext, explicit_merge
from repro.core.replication import ReplicationMap
from repro.datacenter.messages import ClientUpdate, UpdateReply
from repro.harness.runner import Cluster, ClusterConfig
from repro.sim.process import Process
from repro.verify.checker import ExecutionLog
from repro.workloads.synthetic import SyntheticWorkload


def run_checked(system, correlation="full", **workload_kwargs):
    workload = SyntheticWorkload(read_ratio=0.7, keys_per_group=4,
                                 groups_per_dc=2, correlation=correlation,
                                 **workload_kwargs)
    cluster = Cluster(ClusterConfig(system=system, sites=("I", "F", "T"),
                                    clients_per_dc=4), workload)
    log = ExecutionLog(cluster.replication)
    cluster.attach_execution_log(log)
    results = cluster.run(duration=600.0, warmup=100.0)
    return cluster, results, log


# -- context merge -------------------------------------------------------------

def test_merge_union():
    a = DepContext(deps=frozenset({("k1", (1.0, "A/g0"))}))
    b = DepContext(deps=frozenset({("k2", (2.0, "B/g0"))}))
    merged = explicit_merge(a, b)
    assert len(merged) == 2
    assert not merged.replace


def test_merge_replace_collapses():
    a = DepContext(deps=frozenset({("k1", (1.0, "A/g0")),
                                   ("k2", (2.0, "B/g0"))}))
    b = DepContext(deps=frozenset({("k3", (3.0, "A/g0"))}), replace=True)
    merged = explicit_merge(a, b)
    assert merged.deps == b.deps
    assert not merged.replace  # replace is one-shot


def test_merge_none_handling():
    a = DepContext(deps=frozenset({("k1", (1.0, "A/g0"))}))
    assert explicit_merge(None, a).deps == a.deps
    assert explicit_merge(a, None) is a
    assert explicit_merge(None, None) is None


# -- system behaviour -----------------------------------------------------------

def test_cops_causal_under_full_replication():
    _, results, log = run_checked("cops")
    assert results.ops_completed > 500
    assert log.check() == []


def test_cops_noprune_causal_everywhere():
    for correlation in ("full", "degree"):
        kwargs = {"degree": 2} if correlation == "degree" else {}
        _, results, log = run_checked("cops-noprune", correlation,
                                      **kwargs)
        assert log.check() == []


def test_prune_keeps_dependency_lists_small():
    cluster, _, _ = run_checked("cops")
    sizes = [dc.mean_dep_list_size() for dc in cluster.datacenters.values()]
    assert max(sizes) < 10


def test_noprune_dependency_lists_grow_unboundedly():
    """The paper: without the prune, client dependency lists can grow to
    the entire database — here they dwarf the pruned case."""
    pruned, _, _ = run_checked("cops")
    unpruned, _, _ = run_checked("cops-noprune")
    pruned_mean = sum(dc.mean_dep_list_size()
                      for dc in pruned.datacenters.values()) / 3
    unpruned_mean = sum(dc.mean_dep_list_size()
                        for dc in unpruned.datacenters.values()) / 3
    assert unpruned_mean > 10 * pruned_mean


def test_noprune_metadata_costs_throughput():
    _, pruned_results, _ = run_checked("cops")
    _, unpruned_results, _ = run_checked("cops-noprune")
    assert unpruned_results.throughput < 0.7 * pruned_results.throughput


def test_visibility_near_optimal():
    """No stabilization rounds: dependency checks happen at arrival."""
    _, results, _ = run_checked("cops")
    assert results.visibility.mean("I", "F") < 30.0


# -- the §7.3.1 unsafety scenario -------------------------------------------------

class Driver(Process):
    """Issues a scripted sequence of updates, carrying the context along."""

    def __init__(self, sim, name="driver"):
        super().__init__(sim, name)
        self.context = None
        self.versions = []

    def receive(self, sender, message):
        if isinstance(message, UpdateReply):
            self.context = explicit_merge(self.context, message.label)
            self.versions.append(message.version)


def _unsafety_cluster(system):
    """kW lives on {A, C}; kX on {A, B}; kY on {B, C}.  A client writes
    w0(kW)@A, w1(kX)@B, w2(kY)@B.  With the prune, w2's explicit deps are
    just {w1}; C does not replicate kX, so w2 becomes visible at C over
    the fast B->C link long before w0 arrives over the slow A->C link —
    a causal violation the full dependency list would have prevented."""
    from repro.core.replication import ReplicationMap
    from repro.harness.runner import MetricsHub
    from repro.sim.clock import ClockFactory
    from repro.sim.cpu import CostModel
    from repro.sim.engine import Simulator
    from repro.sim.network import LatencyModel, Network
    from repro.sim.rng import RngRegistry
    from repro.baselines.explicit import ExplicitDatacenter

    sim = Simulator()
    model = LatencyModel(local_latency=0.25)
    model.set("A", "B", 10.0)
    model.set("B", "C", 5.0)       # fast
    model.set("A", "C", 120.0)     # slow
    network = Network(sim, latency_model=model, rng=RngRegistry(seed=2))
    replication = ReplicationMap(["A", "B", "C"])
    replication.set_group("gW", ["A", "C"])
    replication.set_group("gX", ["A", "B"])
    replication.set_group("gY", ["B", "C"])
    clocks = ClockFactory(sim, RngRegistry(seed=2), max_skew=0.1)
    log = ExecutionLog(replication)
    dcs = {}
    for site in ("A", "B", "C"):
        dc = ExplicitDatacenter(sim, site, site, replication, CostModel(),
                                clocks.create(),
                                prune_on_write=(system == "cops"),
                                execution_log=log)
        dc.attach_network(network)
        network.place(dc.name, site)
        dcs[site] = dc
    driver = Driver(sim)
    driver.attach_network(network)
    network.place(driver.name, "A")
    return sim, dcs, driver, log


@pytest.mark.parametrize("system,expect_violation", [
    ("cops", True),          # prune drops the w0 dependency at C
    ("cops-noprune", False), # full list blocks w2 until w0 arrives
])
def test_transitivity_prune_unsafe_under_partial_replication(
        system, expect_violation):
    sim, dcs, driver, log = _unsafety_cluster(system)

    def write(dc, key, at):
        def _go():
            dcs[dc].receive(driver.name,
                            ClientUpdate("driver", key, 8, driver.context))
        sim.schedule_at(at, _go)

    write("A", "gW:0", 1.0)    # w0
    write("B", "gX:0", 30.0)   # w1 (client hopped to B; deps include w0)
    write("B", "gY:0", 60.0)   # w2 (deps pruned to {w1} under COPS)
    sim.run(until=400.0)

    # register the client's true causal pasts with the checker
    w0, w1, w2 = driver.versions
    log.record_update_deps(w1, frozenset({w0}))
    log.record_update_deps(w2, frozenset({w0, w1}))
    violations = [v for v in log.check() if v.kind == "causal-order"]
    if expect_violation:
        assert violations, "the pruned chain must break causality at C"
        assert violations[0].dc == "C"
        # and indeed w2 surfaced at C long before w0 could arrive
        assert dcs["C"].store.get("gY:0") is not None
    else:
        assert violations == []
        # w2 was blocked at C until w0's slow payload arrived
        assert dcs["C"].store.get("gW:0") is not None
